//! Causal tracing: trace identifiers, a flight-recorder ring buffer and
//! a JSONL trace sink.
//!
//! The metrics registry answers *how often* and *how long* each tier
//! ticks; this module answers *which* budgeter decision caused which MSR
//! write and which epoch sample closed the loop. Every rebalance decision
//! mints a [`CauseId`]; the id rides the wire inside `SetPowerCap`, is
//! carried through the GEOPM policy mailbox down to the simulated MSR
//! write, and comes back up stamped on epoch samples and model retrains.
//! The offline `anor-trace` analyzer joins these events into per-decision
//! causal chains.
//!
//! Recording is always cheap: a [`Tracer`] keeps a bounded ring of the
//! most recent [`TraceEvent`]s (the **flight recorder**) behind one short
//! mutex hold, and optionally streams every event to `trace.jsonl` when
//! built with [`Tracer::to_dir`]. On an endpoint disconnect or protocol
//! error the owner calls [`Tracer::dump_postmortem`], which snapshots the
//! ring to a `postmortem-*.jsonl` file so failures come with the last few
//! thousand events of context.

use crate::sink::{parse_line, Event, Value};
use parking_lot::Mutex;
use std::fmt;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifies one tracing session (one `Tracer`); all events it records
/// carry the same trace id so files from different runs can be told
/// apart after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

/// Identifies one recorded event within a trace (monotonically
/// assigned; also the total-order sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// Links an effect back to the budgeter rebalance decision that caused
/// it. `CauseId::NONE` (zero) means "cause unknown" — what pre-trace
/// wire frames decode to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CauseId(pub u64);

impl CauseId {
    /// The absent cause: samples taken before any cap arrived, or frames
    /// from a peer speaking the pre-trace codec.
    pub const NONE: CauseId = CauseId(0);

    /// Whether this is a real (non-zero) cause.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace-{:016x}", self.0)
    }
}

impl fmt::Display for CauseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cause-{}", self.0)
    }
}

/// Where in the control loop an event was recorded. The stages map
/// one-to-one onto the paper's Fig. 2 data flow: decisions and caps flow
/// down the left column, samples and models flow back up the right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceStage {
    /// Budgeter computed a new budget split (one per rebalance pass).
    Decision,
    /// `SetPowerCap` frame queued onto the wire for one job.
    CapTx,
    /// Endpoint received the `SetPowerCap` frame.
    CapRx,
    /// Endpoint wrote an `AgentPolicy` into the GEOPM mailbox.
    PolicyWrite,
    /// A tree agent actually programmed `PKG_POWER_LIMIT` (the MSR
    /// actuation point).
    MsrWrite,
    /// Endpoint forwarded an `EpochSample` up the wire.
    SampleTx,
    /// Budgeter ingested an `EpochSample`.
    SampleRx,
    /// The job-tier power modeler retrained on samples taken under this
    /// cause's cap.
    Retrain,
    /// Budgeter ingested a retrained model.
    ModelRx,
    /// A transport-layer protocol error (malformed frame, oversized
    /// length prefix).
    TransportError,
    /// A peer connection closed or died.
    Disconnect,
    /// An endpoint re-established its budgeter connection.
    Reconnect,
    /// A session resumed: the endpoint re-registered (`Resume`) or the
    /// budgeter acknowledged one (`ResumeAck`).
    Resume,
    /// The budgeter's power lease on a disconnected job ran out and its
    /// watts were reclaimed into the pool.
    LeaseExpired,
    /// A reclaimed lease was handed back to a resuming job.
    LeaseRestored,
    /// The continuous invariant auditor caught a broken budgeter
    /// invariant (watts conservation, lease double-count, session-state
    /// consistency); the detail names the invariant and the observed
    /// values.
    InvariantViolation,
}

impl TraceStage {
    /// Stable string used in the JSONL `stage` field.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceStage::Decision => "decision",
            TraceStage::CapTx => "cap_tx",
            TraceStage::CapRx => "cap_rx",
            TraceStage::PolicyWrite => "policy_write",
            TraceStage::MsrWrite => "msr_write",
            TraceStage::SampleTx => "sample_tx",
            TraceStage::SampleRx => "sample_rx",
            TraceStage::Retrain => "retrain",
            TraceStage::ModelRx => "model_rx",
            TraceStage::TransportError => "transport_error",
            TraceStage::Disconnect => "disconnect",
            TraceStage::Reconnect => "reconnect",
            TraceStage::Resume => "resume",
            TraceStage::LeaseExpired => "lease_expired",
            TraceStage::LeaseRestored => "lease_restored",
            TraceStage::InvariantViolation => "invariant_violation",
        }
    }

    /// Inverse of [`TraceStage::as_str`].
    pub fn parse(s: &str) -> Option<TraceStage> {
        Some(match s {
            "decision" => TraceStage::Decision,
            "cap_tx" => TraceStage::CapTx,
            "cap_rx" => TraceStage::CapRx,
            "policy_write" => TraceStage::PolicyWrite,
            "msr_write" => TraceStage::MsrWrite,
            "sample_tx" => TraceStage::SampleTx,
            "sample_rx" => TraceStage::SampleRx,
            "retrain" => TraceStage::Retrain,
            "model_rx" => TraceStage::ModelRx,
            "transport_error" => TraceStage::TransportError,
            "disconnect" => TraceStage::Disconnect,
            "reconnect" => TraceStage::Reconnect,
            "resume" => TraceStage::Resume,
            "lease_expired" => TraceStage::LeaseExpired,
            "lease_restored" => TraceStage::LeaseRestored,
            "invariant_violation" => TraceStage::InvariantViolation,
            _ => return None,
        })
    }
}

impl fmt::Display for TraceStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Sequence number / span id within the trace.
    pub span: SpanId,
    /// Seconds since the tracer was created (wall clock).
    pub ts: f64,
    /// Control-loop stage.
    pub stage: TraceStage,
    /// Causal link back to a budgeter decision (`CauseId::NONE` when
    /// unknown).
    pub cause: CauseId,
    /// Job the event concerns, when job-scoped.
    pub job: Option<u64>,
    /// A watts value when the stage carries one (cap or power).
    pub watts: Option<f64>,
    /// Free-form annotation (error text, stage-specific notes).
    pub detail: Option<String>,
}

impl TraceEvent {
    /// Serialize as one flat-JSON trace line (no trailing newline).
    /// The shape is parseable by [`crate::parse_line`].
    pub fn render(&self, trace: TraceId) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"ts\":{:.6},\"event\":\"trace\",\"trace\":{},\"span\":{},\"stage\":\"{}\",\"cause\":{}",
            self.ts, trace.0, self.span.0, self.stage, self.cause.0
        );
        if let Some(job) = self.job {
            let _ = write!(out, ",\"job\":{job}");
        }
        if let Some(w) = self.watts {
            if w.is_finite() {
                let _ = write!(out, ",\"watts\":{w}");
            }
        }
        if let Some(d) = &self.detail {
            out.push_str(",\"detail\":");
            crate::sink::append_json_string(&mut out, d);
        }
        out.push('}');
        out
    }

    /// Build a trace event back out of a parsed JSONL [`Event`]. Returns
    /// `None` when the line is not a trace event or lacks the required
    /// fields.
    pub fn from_event(ev: &Event) -> Option<TraceEvent> {
        if ev.event != "trace" {
            return None;
        }
        let stage = TraceStage::parse(ev.str("stage")?)?;
        let span = SpanId(ev.num("span")? as u64);
        let cause = CauseId(ev.num("cause")? as u64);
        Some(TraceEvent {
            span,
            ts: ev.ts,
            stage,
            cause,
            job: ev.num("job").map(|j| j as u64),
            watts: ev.num("watts"),
            detail: ev.str("detail").map(str::to_string),
        })
    }
}

/// Default flight-recorder depth. At the emulator's ~1 Hz budgeter tick
/// with two jobs, a full decision chain is ~10 events, so 4096 events is
/// several minutes of history — enough context around a failure while
/// bounding the recorder at a few hundred KiB.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    /// Total events ever pushed (so overwrites are countable).
    pushed: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(capacity.max(1)),
            head: 0,
            pushed: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        let cap = self.buf.capacity();
        if self.buf.len() < cap {
            self.buf.push(ev);
        } else if let Some(slot) = self.buf.get_mut(self.head) {
            *slot = ev;
            self.head = (self.head + 1) % cap;
        }
        self.pushed += 1;
    }

    /// Oldest-to-newest copy of the ring contents.
    fn snapshot(&self) -> Vec<TraceEvent> {
        // `head` is always within bounds; clamp anyway so the flight
        // recorder can never panic while dumping a postmortem.
        let (newest, oldest) = self.buf.split_at(self.head.min(self.buf.len()));
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(oldest);
        out.extend_from_slice(newest);
        out
    }
}

#[derive(Debug)]
struct TracerInner {
    trace_id: TraceId,
    start: Instant,
    epoch: f64,
    span_seq: AtomicU64,
    cause_seq: AtomicU64,
    ring: Mutex<Ring>,
    sink: Mutex<Option<BufWriter<File>>>,
    dir: Option<PathBuf>,
    postmortems: AtomicU64,
    sink_errors: AtomicU64,
}

/// The shared tracing handle. Cloning is an `Arc` bump; the default
/// in-memory tracer keeps only the flight-recorder ring so every
/// component can record unconditionally.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// In-memory tracer: flight recorder only, no file sink.
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// In-memory tracer with an explicit ring depth.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                trace_id: TraceId(seed_id()),
                start: Instant::now(),
                epoch: unix_now(),
                span_seq: AtomicU64::new(0),
                cause_seq: AtomicU64::new(0),
                ring: Mutex::new(Ring::new(capacity)),
                sink: Mutex::new(None),
                dir: None,
                postmortems: AtomicU64::new(0),
                sink_errors: AtomicU64::new(0),
            }),
        }
    }

    /// Tracer streaming every event to `<dir>/trace.jsonl` (created if
    /// absent) in addition to the flight recorder; postmortem dumps land
    /// in the same directory.
    pub fn to_dir(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let file = File::create(dir.join("trace.jsonl"))?;
        Ok(Tracer {
            inner: Arc::new(TracerInner {
                trace_id: TraceId(seed_id()),
                start: Instant::now(),
                epoch: unix_now(),
                span_seq: AtomicU64::new(0),
                cause_seq: AtomicU64::new(0),
                ring: Mutex::new(Ring::new(DEFAULT_RING_CAPACITY)),
                sink: Mutex::new(Some(BufWriter::new(file))),
                dir: Some(dir),
                postmortems: AtomicU64::new(0),
                sink_errors: AtomicU64::new(0),
            }),
        })
    }

    /// The trace directory, when configured via [`Tracer::to_dir`].
    pub fn dir(&self) -> Option<&Path> {
        self.inner.dir.as_deref()
    }

    /// This tracer's session id.
    pub fn trace_id(&self) -> TraceId {
        self.inner.trace_id
    }

    /// Seconds since the tracer was created.
    pub fn elapsed(&self) -> f64 {
        self.inner.start.elapsed().as_secs_f64()
    }

    /// The event timestamp: UNIX seconds, advanced by the monotonic
    /// clock since creation. Wall-anchored so traces written by
    /// separate processes on one host (`anord` + `anor-job`) join into
    /// meaningful cross-process latencies, monotonic so in-process
    /// deltas never go backwards on clock adjustment.
    fn now(&self) -> f64 {
        self.inner.epoch + self.inner.start.elapsed().as_secs_f64()
    }

    /// Mint the next cause id (stamped on a budgeter rebalance
    /// decision). Never returns [`CauseId::NONE`].
    pub fn next_cause(&self) -> CauseId {
        CauseId(self.inner.cause_seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Record an event with no job/watts payload.
    pub fn record(&self, stage: TraceStage, cause: CauseId) -> SpanId {
        self.record_full(stage, cause, None, None, None)
    }

    /// Record a job-scoped event carrying an optional watts value.
    pub fn record_job(
        &self,
        stage: TraceStage,
        cause: CauseId,
        job: u64,
        watts: Option<f64>,
    ) -> SpanId {
        self.record_full(stage, cause, Some(job), watts, None)
    }

    /// Record an annotated event (errors, disconnect reasons).
    pub fn record_detail(&self, stage: TraceStage, cause: CauseId, detail: &str) -> SpanId {
        self.record_full(stage, cause, None, None, Some(detail.to_string()))
    }

    /// The fully general recording entry point.
    pub fn record_full(
        &self,
        stage: TraceStage,
        cause: CauseId,
        job: Option<u64>,
        watts: Option<f64>,
        detail: Option<String>,
    ) -> SpanId {
        let span = SpanId(self.inner.span_seq.fetch_add(1, Ordering::Relaxed));
        let ev = TraceEvent {
            span,
            ts: self.now(),
            stage,
            cause,
            job,
            watts,
            detail,
        };
        if let Some(w) = &mut *self.inner.sink.lock() {
            if writeln!(w, "{}", ev.render(self.inner.trace_id)).is_err() {
                self.inner.sink_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inner.ring.lock().push(ev);
        span
    }

    /// Events recorded so far (including any the ring has overwritten).
    pub fn recorded(&self) -> u64 {
        self.inner.ring.lock().pushed
    }

    /// Lines that failed to reach the file sink.
    pub fn sink_errors(&self) -> u64 {
        self.inner.sink_errors.load(Ordering::Relaxed)
    }

    /// Oldest-to-newest copy of the flight-recorder contents.
    pub fn ring_snapshot(&self) -> Vec<TraceEvent> {
        self.inner.ring.lock().snapshot()
    }

    /// Events currently held by the flight recorder (≤ its capacity).
    /// One short lock hold and a length read — cheap enough for a
    /// status endpoint to poll.
    pub fn ring_depth(&self) -> usize {
        self.inner.ring.lock().buf.len()
    }

    /// Flush the streaming sink (no-op for in-memory tracers).
    pub fn flush(&self) -> std::io::Result<()> {
        if let Some(w) = &mut *self.inner.sink.lock() {
            w.flush()?;
        }
        Ok(())
    }

    /// Dump the flight-recorder ring to
    /// `<dir>/postmortem-<n>-<reason>.jsonl`. Called by transport owners
    /// on endpoint disconnects and protocol errors so every failure
    /// comes with its recent event history. Returns the file written, or
    /// `None` when the tracer has no directory (the dump is still
    /// counted).
    pub fn dump_postmortem(&self, reason: &str) -> Option<PathBuf> {
        let n = self.inner.postmortems.fetch_add(1, Ordering::Relaxed);
        let dir = self.inner.dir.as_ref()?;
        let safe: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("postmortem-{n}-{safe}.jsonl"));
        let snapshot = self.ring_snapshot();
        let mut out = String::with_capacity(snapshot.len() * 96);
        for ev in &snapshot {
            out.push_str(&ev.render(self.inner.trace_id));
            out.push('\n');
        }
        // Keep trace.jsonl current too, so the postmortem and the main
        // trace can be correlated immediately.
        let _ = self.flush();
        match std::fs::write(&path, out) {
            Ok(()) => Some(path),
            Err(_) => {
                self.inner.sink_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Postmortem dumps requested so far.
    pub fn postmortems(&self) -> u64 {
        self.inner.postmortems.load(Ordering::Relaxed)
    }
}

impl Drop for TracerInner {
    fn drop(&mut self) {
        if let Some(w) = &mut *self.sink.lock() {
            let _ = w.flush();
        }
    }
}

/// UNIX seconds at the time of the call (0.0 before the epoch, which
/// only a badly broken clock reports).
fn unix_now() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Derive a process-unique trace id without an RNG dependency: hash the
/// wall clock and pid through splitmix64.
fn seed_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut z = nanos ^ ((std::process::id() as u64) << 32);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Result of scanning a trace JSONL file: the parsed events plus counts
/// of lines that were malformed or not trace events (the analyzer
/// reports both instead of aborting).
#[derive(Debug, Default)]
pub struct TraceScan {
    /// Parsed trace events, in file order.
    pub events: Vec<TraceEvent>,
    /// Lines that failed to parse as flat JSON or lacked trace fields.
    pub malformed: u64,
    /// Well-formed lines that were not trace events (e.g. telemetry
    /// events sharing the file).
    pub other: u64,
}

/// Scan one JSONL file for trace events.
pub fn read_trace(path: &Path) -> std::io::Result<TraceScan> {
    let reader = BufReader::new(File::open(path)?);
    let mut scan = TraceScan::default();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line, i + 1) {
            Ok(ev) => match TraceEvent::from_event(&ev) {
                Some(t) => scan.events.push(t),
                None if ev.event == "trace" => scan.malformed += 1,
                None => scan.other += 1,
            },
            Err(_) => scan.malformed += 1,
        }
    }
    Ok(scan)
}

/// Helper for [`TraceEvent::from_event`] consumers: a `Value` view of a
/// cause for telemetry events.
impl From<CauseId> for Value {
    fn from(c: CauseId) -> Self {
        Value::U64(c.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_ids_are_unique_and_nonzero() {
        let t = Tracer::new();
        let a = t.next_cause();
        let b = t.next_cause();
        assert!(a.is_some() && b.is_some());
        assert_ne!(a, b);
        assert!(!CauseId::NONE.is_some());
    }

    #[test]
    fn stage_strings_round_trip() {
        for stage in [
            TraceStage::Decision,
            TraceStage::CapTx,
            TraceStage::CapRx,
            TraceStage::PolicyWrite,
            TraceStage::MsrWrite,
            TraceStage::SampleTx,
            TraceStage::SampleRx,
            TraceStage::Retrain,
            TraceStage::ModelRx,
            TraceStage::TransportError,
            TraceStage::Disconnect,
            TraceStage::Reconnect,
            TraceStage::Resume,
            TraceStage::LeaseExpired,
            TraceStage::LeaseRestored,
            TraceStage::InvariantViolation,
        ] {
            assert_eq!(TraceStage::parse(stage.as_str()), Some(stage));
        }
        assert_eq!(TraceStage::parse("nope"), None);
    }

    #[test]
    fn events_render_and_parse_round_trip() {
        let t = Tracer::new();
        let cause = t.next_cause();
        t.record_job(TraceStage::CapTx, cause, 3, Some(210.0));
        t.record_detail(TraceStage::TransportError, CauseId::NONE, "bad tag 9");
        let ring = t.ring_snapshot();
        assert_eq!(ring.len(), 2);
        for ev in &ring {
            let line = ev.render(t.trace_id());
            let parsed = parse_line(&line, 1).unwrap();
            let back = TraceEvent::from_event(&parsed).expect("trace event");
            // `ts` is rendered at microsecond precision; everything else
            // must survive exactly.
            assert!((back.ts - ev.ts).abs() < 1e-6);
            assert_eq!(
                (
                    back.span,
                    back.stage,
                    back.cause,
                    back.job,
                    back.watts,
                    &back.detail
                ),
                (ev.span, ev.stage, ev.cause, ev.job, ev.watts, &ev.detail)
            );
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            t.record_job(TraceStage::MsrWrite, CauseId(i + 1), i, None);
        }
        let ring = t.ring_snapshot();
        assert_eq!(ring.len(), 4);
        assert_eq!(t.recorded(), 10);
        // Oldest-to-newest: jobs 6..=9 survive.
        let jobs: Vec<u64> = ring.iter().filter_map(|e| e.job).collect();
        assert_eq!(jobs, vec![6, 7, 8, 9]);
        assert!(ring.windows(2).all(|w| w[0].span < w[1].span));
    }

    #[test]
    fn dir_tracer_streams_and_dumps_postmortem() {
        let dir = std::env::temp_dir().join(format!(
            "anor-trace-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Tracer::to_dir(&dir).unwrap();
        let cause = t.next_cause();
        t.record(TraceStage::Decision, cause);
        t.record_job(TraceStage::CapTx, cause, 0, Some(120.0));
        t.flush().unwrap();

        let scan = read_trace(&dir.join("trace.jsonl")).unwrap();
        assert_eq!(scan.events.len(), 2);
        assert_eq!(scan.malformed, 0);
        assert_eq!(scan.events[0].stage, TraceStage::Decision);

        let pm = t.dump_postmortem("peer gone").expect("postmortem path");
        assert!(pm
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("peer-gone"));
        let pm_scan = read_trace(&pm).unwrap();
        assert_eq!(pm_scan.events.len(), 2);
        assert_eq!(t.postmortems(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_tracer_postmortem_is_counted_but_unwritten() {
        let t = Tracer::new();
        t.record(TraceStage::Disconnect, CauseId::NONE);
        assert!(t.dump_postmortem("x").is_none());
        assert_eq!(t.postmortems(), 1);
    }

    #[test]
    fn read_trace_counts_malformed_and_foreign_lines() {
        let dir = std::env::temp_dir().join(format!(
            "anor-trace-scan-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.jsonl");
        std::fs::write(
            &path,
            "{\"ts\":0.1,\"event\":\"trace\",\"trace\":1,\"span\":0,\"stage\":\"decision\",\"cause\":1}\n\
             {\"ts\":0.2,\"event\":\"job_started\",\"job\":1}\n\
             not json at all\n\
             {\"ts\":0.3,\"event\":\"trace\",\"stage\":\"bogus\"}\n",
        )
        .unwrap();
        let scan = read_trace(&path).unwrap();
        assert_eq!(scan.events.len(), 1);
        assert_eq!(scan.other, 1);
        assert_eq!(scan.malformed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
