//! Renderers over registry snapshots: Prometheus-style text exposition
//! and the human-facing end-of-run summary table.

use crate::registry::{escape_label, Snapshot};
use std::fmt::Write;

/// Prometheus text exposition (counters as `_total` convention is the
/// caller's naming responsibility; histograms expand to
/// `_bucket`/`_sum`/`_count` series).
pub(crate) fn prometheus(snapshots: &[Snapshot]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for snap in snapshots {
        let id = snap.id();
        if last_name != Some(id.name.as_str()) {
            let kind = match snap {
                Snapshot::Counter { .. } => "counter",
                Snapshot::Gauge { .. } => "gauge",
                Snapshot::Histogram { .. } => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {kind}", id.name);
            last_name = Some(id.name.as_str());
        }
        match snap {
            Snapshot::Counter { value, .. } => {
                let _ = writeln!(out, "{} {value}", id.render());
            }
            Snapshot::Gauge { value, .. } => {
                let _ = writeln!(out, "{} {value}", id.render());
            }
            Snapshot::Histogram {
                count,
                sum,
                buckets,
                ..
            } => {
                for (edge, cum) in buckets {
                    let mut labels: Vec<(String, String)> = id.labels.clone();
                    let le = if edge.is_finite() {
                        format!("{edge}")
                    } else {
                        "+Inf".to_string()
                    };
                    labels.push(("le".to_string(), le));
                    let body: Vec<String> = labels
                        .iter()
                        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                        .collect();
                    let _ = writeln!(out, "{}_bucket{{{}}} {cum}", id.name, body.join(","));
                }
                let base = id.render();
                let insert = |suffix: &str| -> String {
                    match base.find('{') {
                        Some(pos) => format!("{}{}{}", &base[..pos], suffix, &base[pos..]),
                        None => format!("{base}{suffix}"),
                    }
                };
                let _ = writeln!(out, "{} {sum}", insert("_sum"));
                let _ = writeln!(out, "{} {count}", insert("_count"));
            }
        }
    }
    out
}

fn human(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if !(1e-4..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// The end-of-run summary table printed by runners.
pub(crate) fn summary(snapshots: &[Snapshot], events_written: u64, events_dropped: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== telemetry summary ==");

    let counters: Vec<_> = snapshots
        .iter()
        .filter_map(|s| match s {
            Snapshot::Counter { id, value } => Some((id, *value)),
            _ => None,
        })
        .collect();
    if !counters.is_empty() {
        let _ = writeln!(out, "-- counters --");
        for (id, value) in counters {
            let _ = writeln!(out, "  {:<58} {value:>12}", id.render());
        }
    }

    let gauges: Vec<_> = snapshots
        .iter()
        .filter_map(|s| match s {
            Snapshot::Gauge { id, value } => Some((id, *value)),
            _ => None,
        })
        .collect();
    if !gauges.is_empty() {
        let _ = writeln!(out, "-- gauges --");
        for (id, value) in gauges {
            let _ = writeln!(out, "  {:<58} {:>12}", id.render(), human(value));
        }
    }

    let hists: Vec<_> = snapshots
        .iter()
        .filter_map(|s| match s {
            Snapshot::Histogram {
                id,
                count,
                mean,
                p50,
                p90,
                p99,
                max,
                ..
            } => Some((id, *count, *mean, *p50, *p90, *p99, *max)),
            _ => None,
        })
        .collect();
    if !hists.is_empty() {
        let _ = writeln!(
            out,
            "-- histograms --\n  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "series", "count", "mean", "p50", "p90", "p99", "max"
        );
        for (id, count, mean, p50, p90, p99, max) in hists {
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                id.render(),
                count,
                human(mean),
                human(p50),
                human(p90),
                human(p99),
                human(max)
            );
        }
    }

    let _ = writeln!(
        out,
        "-- events --\n  written {events_written}, dropped {events_dropped}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("transport_frames_total", &[("dir", "rx")])
            .add(42);
        r.gauge("sim_jobs_running", &[]).set(12.0);
        let h = r.histogram_with_bounds(
            "budgeter_rebalance_seconds",
            &[],
            vec![0.001, 0.01, 0.1, 1.0],
        );
        h.observe(0.004);
        h.observe(0.02);
        h.observe(0.5);
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE transport_frames_total counter"));
        assert!(text.contains("transport_frames_total{dir=\"rx\"} 42"));
        assert!(text.contains("# TYPE sim_jobs_running gauge"));
        assert!(text.contains("sim_jobs_running 12"));
        assert!(text.contains("budgeter_rebalance_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("budgeter_rebalance_seconds_count 3"));
    }

    #[test]
    fn prometheus_escapes_hostile_label_values() {
        let r = Registry::new();
        r.counter("jobs_total", &[("type", "bt\"D\\81\nboom")])
            .inc();
        let h = r.histogram_with_bounds("lat", &[("peer", "a\"b")], vec![1.0]);
        h.observe(0.5);
        let text = prometheus(&r.snapshot());
        assert!(
            text.contains("jobs_total{type=\"bt\\\"D\\\\81\\nboom\"} 1"),
            "counter label must be escaped: {text}"
        );
        assert!(
            text.contains("lat_bucket{peer=\"a\\\"b\",le=\"1\"} 1"),
            "histogram bucket labels must be escaped: {text}"
        );
        // The raw newline never splits the series across physical lines:
        // the whole hostile value stays on the one counter line.
        let line = text
            .lines()
            .find(|l| l.contains("boom"))
            .expect("hostile series rendered");
        assert!(line.starts_with("jobs_total{") && line.ends_with("\"} 1"));
    }

    #[test]
    fn summary_lists_all_sections() {
        let text = summary(&sample_registry().snapshot(), 10, 0);
        assert!(text.contains("-- counters --"));
        assert!(text.contains("-- gauges --"));
        assert!(text.contains("-- histograms --"));
        assert!(text.contains("transport_frames_total{dir=\"rx\"}"));
        assert!(text.contains("budgeter_rebalance_seconds"));
        assert!(text.contains("written 10, dropped 0"));
    }
}
