//! Structured event sinks: the JSONL event log and its reader.
//!
//! Events are flat JSON objects, one per line:
//!
//! ```json
//! {"ts":1.042,"event":"job_started","job":"1","nodes":81}
//! ```
//!
//! `ts` is seconds since telemetry start (wall clock); emitters on a
//! virtual clock add their own `t_virtual` field. The hand-rolled
//! writer/parser below covers exactly this flat shape — no nesting, no
//! arrays — which keeps the crate dependency-free while still giving
//! experiments a machine-readable trail.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A field value in a structured event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    F64(f64),
    U64(u64),
    I64(i64),
    Bool(bool),
}

impl Value {
    /// Numeric view, when the value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A parsed event from the JSONL log.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Seconds since telemetry start.
    pub ts: f64,
    /// The event name.
    pub event: String,
    /// Remaining fields, sorted by key.
    pub fields: BTreeMap<String, Value>,
}

impl Event {
    pub fn num(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(Value::as_f64)
    }

    pub fn str(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Value::as_str)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub(crate) fn append_json_string(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => append_json_string(out, s),
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        // JSON has no NaN/Inf; encode as null.
        Value::F64(_) => out.push_str("null"),
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Serialize one event line (no trailing newline).
pub fn render_line(ts: f64, event: &str, fields: &[(&str, Value)]) -> String {
    let mut out = String::with_capacity(64);
    let _ = write!(out, "{{\"ts\":{ts:.6},\"event\":\"");
    escape_into(&mut out, event);
    out.push('"');
    for (k, v) in fields {
        out.push_str(",\"");
        escape_into(&mut out, k);
        out.push_str("\":");
        value_into(&mut out, v);
    }
    out.push('}');
    out
}

/// A size-rotated JSONL file writer. When the active file would exceed
/// `max_bytes` the writer closes it, shifts `events.jsonl.N` →
/// `events.jsonl.N+1` (dropping the oldest beyond [`ROTATE_KEEP`]) and
/// starts a fresh file, so long `anorsim` runs keep a bounded on-disk
/// footprint.
#[derive(Debug)]
pub(crate) struct RotatingFile {
    writer: BufWriter<File>,
    path: PathBuf,
    bytes: u64,
    max_bytes: u64,
}

/// How many rotated files to keep next to the active one.
pub const ROTATE_KEEP: usize = 3;

/// Default rotation threshold for file event sinks (64 MiB).
pub const DEFAULT_ROTATE_BYTES: u64 = 64 * 1024 * 1024;

impl RotatingFile {
    fn create(path: &Path, max_bytes: u64) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(RotatingFile {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            bytes: 0,
            max_bytes: max_bytes.max(1),
        })
    }

    fn rotated_path(&self, n: usize) -> PathBuf {
        let mut s = self.path.as_os_str().to_os_string();
        s.push(format!(".{n}"));
        PathBuf::from(s)
    }

    /// Flush the outgoing file, shift the rotated chain, and open a
    /// fresh active file. Buffered lines are flushed *before* any rename
    /// so a rotated file is always complete; on any failure the current
    /// writer stays usable (an open fd survives a rename on POSIX), so
    /// the caller can keep appending rather than dropping records.
    fn rotate(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        let _ = std::fs::remove_file(self.rotated_path(ROTATE_KEEP));
        for n in (1..ROTATE_KEEP).rev() {
            let _ = std::fs::rename(self.rotated_path(n), self.rotated_path(n + 1));
        }
        std::fs::rename(&self.path, self.rotated_path(1))?;
        self.writer = BufWriter::new(File::create(&self.path)?);
        self.bytes = 0;
        Ok(())
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        let len = line.len() as u64 + 1;
        if self.bytes + len > self.max_bytes && self.bytes > 0 {
            // A failed rotation (rename or create error) must never cost
            // the in-flight record: fall through and append it to the
            // writer we still hold, letting the active file exceed the
            // cap until a later rotation succeeds.
            let _ = self.rotate();
        }
        writeln!(self.writer, "{line}")?;
        self.bytes += len;
        Ok(())
    }
}

/// Where serialized event lines go.
#[derive(Debug)]
pub(crate) enum EventSink {
    /// Append to a size-rotated JSONL file.
    File(RotatingFile),
    /// Keep in memory (default; bounded by [`MEMORY_EVENT_CAP`]).
    Memory(Vec<String>),
}

/// Cap on buffered in-memory events; beyond it lines are counted but
/// dropped so an unconfigured `Telemetry` can't grow without bound.
pub const MEMORY_EVENT_CAP: usize = 65_536;

/// Shared, thread-safe event writer.
#[derive(Debug)]
pub struct EventLog {
    sink: Mutex<EventSink>,
    dropped: Mutex<u64>,
    written: Mutex<u64>,
}

impl EventLog {
    pub fn memory() -> Self {
        EventLog {
            sink: Mutex::new(EventSink::Memory(Vec::new())),
            dropped: Mutex::new(0),
            written: Mutex::new(0),
        }
    }

    pub fn file(path: &Path) -> std::io::Result<Self> {
        EventLog::file_with_rotation(path, DEFAULT_ROTATE_BYTES)
    }

    /// A file sink that rotates once the active file would exceed
    /// `max_bytes`.
    pub fn file_with_rotation(path: &Path, max_bytes: u64) -> std::io::Result<Self> {
        let file = RotatingFile::create(path, max_bytes)?;
        Ok(EventLog {
            sink: Mutex::new(EventSink::File(file)),
            dropped: Mutex::new(0),
            written: Mutex::new(0),
        })
    }

    pub fn push(&self, line: String) {
        let mut sink = self.sink.lock();
        match &mut *sink {
            EventSink::File(f) => {
                let ok = f.write_line(&line).is_ok();
                drop(sink);
                if ok {
                    *self.written.lock() += 1;
                } else {
                    *self.dropped.lock() += 1;
                }
            }
            EventSink::Memory(lines) => {
                if lines.len() < MEMORY_EVENT_CAP {
                    lines.push(line);
                    drop(sink);
                    *self.written.lock() += 1;
                } else {
                    drop(sink);
                    *self.dropped.lock() += 1;
                }
            }
        }
    }

    pub fn flush(&self) -> std::io::Result<()> {
        if let EventSink::File(f) = &mut *self.sink.lock() {
            f.writer.flush()?;
        }
        Ok(())
    }

    pub fn written(&self) -> u64 {
        *self.written.lock()
    }

    pub fn dropped(&self) -> u64 {
        *self.dropped.lock()
    }

    /// In-memory lines (empty for file sinks); for tests.
    pub fn memory_lines(&self) -> Vec<String> {
        match &*self.sink.lock() {
            EventSink::Memory(lines) => lines.clone(),
            EventSink::File(_) => Vec::new(),
        }
    }
}

impl Drop for EventLog {
    /// Buffered events must reach disk even when the owner forgets to
    /// call [`EventLog::flush`] (e.g. a runner exiting on error).
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

fn bad(line_no: usize, msg: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("events.jsonl line {line_no}: {msg}"),
    )
}

/// Parse one flat JSON object line.
pub fn parse_line(line: &str, line_no: usize) -> std::io::Result<Event> {
    let mut chars = line.char_indices().peekable();
    let mut fields: BTreeMap<String, Value> = BTreeMap::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
    }

    fn expect(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
        want: char,
        line_no: usize,
    ) -> std::io::Result<()> {
        skip_ws(chars);
        match chars.next() {
            Some((_, c)) if c == want => Ok(()),
            other => Err(bad(line_no, &format!("expected `{want}`, got {other:?}"))),
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
        line_no: usize,
    ) -> std::io::Result<String> {
        expect(chars, '"', line_no)?;
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, c) = chars
                                .next()
                                .ok_or_else(|| bad(line_no, "truncated \\u escape"))?;
                            code = code * 16
                                + c.to_digit(16)
                                    .ok_or_else(|| bad(line_no, "bad \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| bad(line_no, "bad \\u code point"))?,
                        );
                    }
                    other => return Err(bad(line_no, &format!("bad escape {other:?}"))),
                },
                Some((_, c)) => out.push(c),
                None => return Err(bad(line_no, "unterminated string")),
            }
        }
    }

    expect(&mut chars, '{', line_no)?;
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        return Err(bad(line_no, "event object is empty"));
    }
    loop {
        let key = parse_string(&mut chars, line_no)?;
        expect(&mut chars, ':', line_no)?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some((_, '"')) => Value::Str(parse_string(&mut chars, line_no)?),
            Some((_, 't')) | Some((_, 'f')) | Some((_, 'n')) => {
                let mut word = String::new();
                while let Some((_, c)) = chars.next_if(|(_, c)| c.is_ascii_alphabetic()) {
                    word.push(c);
                }
                match word.as_str() {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    "null" => Value::F64(f64::NAN),
                    other => return Err(bad(line_no, &format!("bad literal `{other}`"))),
                }
            }
            Some(_) => {
                let mut num = String::new();
                while let Some((_, c)) = chars.next_if(|(_, c)| {
                    c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                }) {
                    num.push(c);
                }
                let v: f64 = num
                    .parse()
                    .map_err(|_| bad(line_no, &format!("bad number `{num}`")))?;
                if v.fract() == 0.0 && v.abs() < 9.0e15 && !num.contains(['.', 'e', 'E']) {
                    if num.starts_with('-') {
                        Value::I64(v as i64)
                    } else {
                        Value::U64(v as u64)
                    }
                } else {
                    Value::F64(v)
                }
            }
            None => return Err(bad(line_no, "truncated object")),
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            other => {
                return Err(bad(
                    line_no,
                    &format!("expected `,` or `}}`, got {other:?}"),
                ))
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err(bad(line_no, "trailing bytes after object"));
    }

    let ts = fields
        .remove("ts")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| bad(line_no, "missing numeric `ts`"))?;
    let event = match fields.remove("event") {
        Some(Value::Str(s)) => s,
        _ => return Err(bad(line_no, "missing string `event`")),
    };
    Ok(Event { ts, event, fields })
}

/// Read every event from a JSONL file.
pub fn read_events(path: &Path) -> std::io::Result<Vec<Event>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(&line, i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let line = render_line(
            1.25,
            "job_done",
            &[
                ("job", 7u64.into()),
                ("type", "bt.D.81".into()),
                ("elapsed_s", 12.5f64.into()),
                ("ok", true.into()),
            ],
        );
        let ev = parse_line(&line, 1).unwrap();
        assert_eq!(ev.event, "job_done");
        assert!((ev.ts - 1.25).abs() < 1e-9);
        assert_eq!(ev.num("job"), Some(7.0));
        assert_eq!(ev.str("type"), Some("bt.D.81"));
        assert_eq!(ev.num("elapsed_s"), Some(12.5));
        assert_eq!(ev.fields["ok"], Value::Bool(true));
    }

    #[test]
    fn escaping_survives_round_trip() {
        let nasty = "he said \"hi\\there\"\n\tok\u{1}";
        let line = render_line(0.0, nasty, &[("k", nasty.into())]);
        let ev = parse_line(&line, 1).unwrap();
        assert_eq!(ev.event, nasty);
        assert_eq!(ev.str("k"), Some(nasty));
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for bad_line in [
            "",
            "{",
            "{}",
            "not json",
            "{\"ts\":1.0}",
            "{\"event\":\"x\"}",
            "{\"ts\":\"nope\",\"event\":\"x\"}",
            "{\"ts\":1,\"event\":\"x\"} trailing",
            "{\"ts\":1,\"event\":\"x\",\"v\":12..5}",
        ] {
            assert!(parse_line(bad_line, 1).is_err(), "accepted: {bad_line:?}");
        }
    }

    #[test]
    fn memory_sink_caps_and_counts_drops() {
        let log = EventLog::memory();
        for i in 0..(MEMORY_EVENT_CAP + 10) {
            log.push(format!("{{\"ts\":{i},\"event\":\"e\"}}"));
        }
        assert_eq!(log.written(), MEMORY_EVENT_CAP as u64);
        assert_eq!(log.dropped(), 10);
        assert_eq!(log.memory_lines().len(), MEMORY_EVENT_CAP);
    }

    #[test]
    fn file_sink_rotates_by_size() {
        let dir = std::env::temp_dir().join(format!(
            "anor-telemetry-rotate-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        // ~40-byte lines, 128-byte cap: rotation every ~3 lines.
        let log = EventLog::file_with_rotation(&path, 128).unwrap();
        for i in 0..20 {
            log.push(render_line(i as f64, "tick", &[("n", (i as u64).into())]));
        }
        log.flush().unwrap();
        assert_eq!(log.written(), 20);
        assert!(path.exists());
        let mut rotated = PathBuf::from(path.as_os_str().to_os_string());
        rotated.set_extension("jsonl.1");
        assert!(rotated.exists(), "first rotated file present");
        // Bounded: never more than ROTATE_KEEP rotated files.
        let count = std::fs::read_dir(&dir).unwrap().count();
        assert!(count <= 1 + ROTATE_KEEP, "{count} files on disk");
        // Active file respects the cap and still parses.
        assert!(std::fs::metadata(&path).unwrap().len() <= 128);
        for ev in read_events(&path).unwrap() {
            assert_eq!(ev.event, "tick");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_boundary_loses_no_records() {
        let dir = std::env::temp_dir().join(format!(
            "anor-telemetry-rotate-boundary-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let lines: Vec<String> = (0..20u64)
            .map(|i| render_line(0.0, "tick", &[("n", i.into())]))
            .collect();
        // Cap sized so exactly one rotation fires, mid-stream: the first
        // 12 records fill the file and record 13 lands on the boundary.
        let cap: u64 = lines.iter().take(12).map(|l| l.len() as u64 + 1).sum();
        let log = EventLog::file_with_rotation(&path, cap).unwrap();
        for l in &lines {
            log.push(l.clone());
        }
        log.flush().unwrap();
        assert_eq!(log.written(), 20);
        assert_eq!(log.dropped(), 0);
        // Rotated file + active file together hold every record exactly
        // once, in order: nothing dropped or duplicated at the boundary.
        let rotated = PathBuf::from(format!("{}.1", path.display()));
        let mut ns = Vec::new();
        for p in [&rotated, &path] {
            for ev in read_events(p).unwrap() {
                ns.push(ev.num("n").unwrap() as u64);
            }
        }
        assert_eq!(ns, (0..20).collect::<Vec<u64>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rotation_never_drops_the_in_flight_record() {
        let dir = std::env::temp_dir().join(format!(
            "anor-telemetry-rotate-fail-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        // Block every slot in the rotation chain with a non-empty
        // directory so each rename inside rotate() fails.
        for n in 1..=ROTATE_KEEP {
            let block = PathBuf::from(format!("{}.{n}", path.display()));
            std::fs::create_dir_all(&block).unwrap();
            std::fs::write(block.join("occupied"), "x").unwrap();
        }
        let log = EventLog::file_with_rotation(&path, 64).unwrap();
        for i in 0..10u64 {
            log.push(render_line(0.0, "tick", &[("n", i.into())]));
        }
        log.flush().unwrap();
        assert_eq!(log.written(), 10, "rotation failure must not drop records");
        assert_eq!(log.dropped(), 0);
        let events = read_events(&path).unwrap();
        assert_eq!(
            events.len(),
            10,
            "every record lands in the (oversized) active file"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_flushes_buffered_events() {
        let dir = std::env::temp_dir().join(format!(
            "anor-telemetry-dropflush-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let log = EventLog::file(&path).unwrap();
            log.push(render_line(0.0, "unflushed", &[]));
            // No explicit flush: Drop must get the line to disk.
        }
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, "unflushed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_sink_round_trips_through_reader() {
        let dir = std::env::temp_dir().join(format!(
            "anor-telemetry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let log = EventLog::file(&path).unwrap();
        log.push(render_line(0.5, "a", &[("n", 1u64.into())]));
        log.push(render_line(1.5, "b", &[("s", "x".into())]));
        log.flush().unwrap();
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, "a");
        assert_eq!(events[1].str("s"), Some("x"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
