//! Structured event sinks: the JSONL event log and its reader.
//!
//! Events are flat JSON objects, one per line:
//!
//! ```json
//! {"ts":1.042,"event":"job_started","job":"1","nodes":81}
//! ```
//!
//! `ts` is seconds since telemetry start (wall clock); emitters on a
//! virtual clock add their own `t_virtual` field. The hand-rolled
//! writer/parser below covers exactly this flat shape — no nesting, no
//! arrays — which keeps the crate dependency-free while still giving
//! experiments a machine-readable trail.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// A field value in a structured event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    F64(f64),
    U64(u64),
    I64(i64),
    Bool(bool),
}

impl Value {
    /// Numeric view, when the value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A parsed event from the JSONL log.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Seconds since telemetry start.
    pub ts: f64,
    /// The event name.
    pub event: String,
    /// Remaining fields, sorted by key.
    pub fields: BTreeMap<String, Value>,
}

impl Event {
    pub fn num(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(Value::as_f64)
    }

    pub fn str(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Value::as_str)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        // JSON has no NaN/Inf; encode as null.
        Value::F64(_) => out.push_str("null"),
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Serialize one event line (no trailing newline).
pub fn render_line(ts: f64, event: &str, fields: &[(&str, Value)]) -> String {
    let mut out = String::with_capacity(64);
    let _ = write!(out, "{{\"ts\":{ts:.6},\"event\":\"");
    escape_into(&mut out, event);
    out.push('"');
    for (k, v) in fields {
        out.push_str(",\"");
        escape_into(&mut out, k);
        out.push_str("\":");
        value_into(&mut out, v);
    }
    out.push('}');
    out
}

/// Where serialized event lines go.
#[derive(Debug)]
pub enum EventSink {
    /// Append to a JSONL file.
    File(BufWriter<File>),
    /// Keep in memory (default; bounded by [`MEMORY_EVENT_CAP`]).
    Memory(Vec<String>),
}

/// Cap on buffered in-memory events; beyond it lines are counted but
/// dropped so an unconfigured `Telemetry` can't grow without bound.
pub const MEMORY_EVENT_CAP: usize = 65_536;

/// Shared, thread-safe event writer.
#[derive(Debug)]
pub struct EventLog {
    sink: Mutex<EventSink>,
    dropped: Mutex<u64>,
    written: Mutex<u64>,
}

impl EventLog {
    pub fn memory() -> Self {
        EventLog {
            sink: Mutex::new(EventSink::Memory(Vec::new())),
            dropped: Mutex::new(0),
            written: Mutex::new(0),
        }
    }

    pub fn file(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(EventLog {
            sink: Mutex::new(EventSink::File(BufWriter::new(file))),
            dropped: Mutex::new(0),
            written: Mutex::new(0),
        })
    }

    pub fn push(&self, line: String) {
        let mut sink = self.sink.lock();
        match &mut *sink {
            EventSink::File(w) => {
                let ok = writeln!(w, "{line}").is_ok();
                drop(sink);
                if ok {
                    *self.written.lock() += 1;
                } else {
                    *self.dropped.lock() += 1;
                }
            }
            EventSink::Memory(lines) => {
                if lines.len() < MEMORY_EVENT_CAP {
                    lines.push(line);
                    drop(sink);
                    *self.written.lock() += 1;
                } else {
                    drop(sink);
                    *self.dropped.lock() += 1;
                }
            }
        }
    }

    pub fn flush(&self) -> std::io::Result<()> {
        if let EventSink::File(w) = &mut *self.sink.lock() {
            w.flush()?;
        }
        Ok(())
    }

    pub fn written(&self) -> u64 {
        *self.written.lock()
    }

    pub fn dropped(&self) -> u64 {
        *self.dropped.lock()
    }

    /// In-memory lines (empty for file sinks); for tests.
    pub fn memory_lines(&self) -> Vec<String> {
        match &*self.sink.lock() {
            EventSink::Memory(lines) => lines.clone(),
            EventSink::File(_) => Vec::new(),
        }
    }
}

fn bad(line_no: usize, msg: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("events.jsonl line {line_no}: {msg}"),
    )
}

/// Parse one flat JSON object line.
pub fn parse_line(line: &str, line_no: usize) -> std::io::Result<Event> {
    let mut chars = line.char_indices().peekable();
    let mut fields: BTreeMap<String, Value> = BTreeMap::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
    }

    fn expect(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
        want: char,
        line_no: usize,
    ) -> std::io::Result<()> {
        skip_ws(chars);
        match chars.next() {
            Some((_, c)) if c == want => Ok(()),
            other => Err(bad(line_no, &format!("expected `{want}`, got {other:?}"))),
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
        line_no: usize,
    ) -> std::io::Result<String> {
        expect(chars, '"', line_no)?;
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, c) = chars
                                .next()
                                .ok_or_else(|| bad(line_no, "truncated \\u escape"))?;
                            code = code * 16
                                + c.to_digit(16)
                                    .ok_or_else(|| bad(line_no, "bad \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| bad(line_no, "bad \\u code point"))?,
                        );
                    }
                    other => return Err(bad(line_no, &format!("bad escape {other:?}"))),
                },
                Some((_, c)) => out.push(c),
                None => return Err(bad(line_no, "unterminated string")),
            }
        }
    }

    expect(&mut chars, '{', line_no)?;
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        return Err(bad(line_no, "event object is empty"));
    }
    loop {
        let key = parse_string(&mut chars, line_no)?;
        expect(&mut chars, ':', line_no)?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some((_, '"')) => Value::Str(parse_string(&mut chars, line_no)?),
            Some((_, 't')) | Some((_, 'f')) | Some((_, 'n')) => {
                let mut word = String::new();
                while matches!(chars.peek(), Some((_, c)) if c.is_ascii_alphabetic()) {
                    word.push(chars.next().unwrap().1);
                }
                match word.as_str() {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    "null" => Value::F64(f64::NAN),
                    other => return Err(bad(line_no, &format!("bad literal `{other}`"))),
                }
            }
            Some(_) => {
                let mut num = String::new();
                while matches!(
                    chars.peek(),
                    Some((_, c)) if c.is_ascii_digit()
                        || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                ) {
                    num.push(chars.next().unwrap().1);
                }
                let v: f64 = num
                    .parse()
                    .map_err(|_| bad(line_no, &format!("bad number `{num}`")))?;
                if v.fract() == 0.0 && v.abs() < 9.0e15 && !num.contains(['.', 'e', 'E']) {
                    if num.starts_with('-') {
                        Value::I64(v as i64)
                    } else {
                        Value::U64(v as u64)
                    }
                } else {
                    Value::F64(v)
                }
            }
            None => return Err(bad(line_no, "truncated object")),
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            other => {
                return Err(bad(
                    line_no,
                    &format!("expected `,` or `}}`, got {other:?}"),
                ))
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err(bad(line_no, "trailing bytes after object"));
    }

    let ts = fields
        .remove("ts")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| bad(line_no, "missing numeric `ts`"))?;
    let event = match fields.remove("event") {
        Some(Value::Str(s)) => s,
        _ => return Err(bad(line_no, "missing string `event`")),
    };
    Ok(Event { ts, event, fields })
}

/// Read every event from a JSONL file.
pub fn read_events(path: &Path) -> std::io::Result<Vec<Event>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(&line, i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let line = render_line(
            1.25,
            "job_done",
            &[
                ("job", 7u64.into()),
                ("type", "bt.D.81".into()),
                ("elapsed_s", 12.5f64.into()),
                ("ok", true.into()),
            ],
        );
        let ev = parse_line(&line, 1).unwrap();
        assert_eq!(ev.event, "job_done");
        assert!((ev.ts - 1.25).abs() < 1e-9);
        assert_eq!(ev.num("job"), Some(7.0));
        assert_eq!(ev.str("type"), Some("bt.D.81"));
        assert_eq!(ev.num("elapsed_s"), Some(12.5));
        assert_eq!(ev.fields["ok"], Value::Bool(true));
    }

    #[test]
    fn escaping_survives_round_trip() {
        let nasty = "he said \"hi\\there\"\n\tok\u{1}";
        let line = render_line(0.0, nasty, &[("k", nasty.into())]);
        let ev = parse_line(&line, 1).unwrap();
        assert_eq!(ev.event, nasty);
        assert_eq!(ev.str("k"), Some(nasty));
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for bad_line in [
            "",
            "{",
            "{}",
            "not json",
            "{\"ts\":1.0}",
            "{\"event\":\"x\"}",
            "{\"ts\":\"nope\",\"event\":\"x\"}",
            "{\"ts\":1,\"event\":\"x\"} trailing",
            "{\"ts\":1,\"event\":\"x\",\"v\":12..5}",
        ] {
            assert!(parse_line(bad_line, 1).is_err(), "accepted: {bad_line:?}");
        }
    }

    #[test]
    fn memory_sink_caps_and_counts_drops() {
        let log = EventLog::memory();
        for i in 0..(MEMORY_EVENT_CAP + 10) {
            log.push(format!("{{\"ts\":{i},\"event\":\"e\"}}"));
        }
        assert_eq!(log.written(), MEMORY_EVENT_CAP as u64);
        assert_eq!(log.dropped(), 10);
        assert_eq!(log.memory_lines().len(), MEMORY_EVENT_CAP);
    }

    #[test]
    fn file_sink_round_trips_through_reader() {
        let dir = std::env::temp_dir().join(format!(
            "anor-telemetry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let log = EventLog::file(&path).unwrap();
        log.push(render_line(0.5, "a", &[("n", 1u64.into())]));
        log.push(render_line(1.5, "b", &[("s", "x".into())]));
        log.flush().unwrap();
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, "a");
        assert_eq!(events[1].str("s"), Some("x"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
