//! The live operations plane: a dependency-free, hand-rolled HTTP/1.1
//! responder exposing a running daemon's observability surfaces.
//!
//! Post-hoc artifacts (`events.jsonl`, `metrics.prom`, postmortems) tell
//! you what happened; this module is for *while it runs*: an
//! [`OpsServer`] accepts plain HTTP GETs on a background thread and
//! serves
//!
//! * `/metrics` — the Prometheus text exposition of the shared
//!   [`Telemetry`] registry (same bytes as `metrics.prom`);
//! * `/health` — `ok` with a 200, for liveness probes;
//! * `/status` — a JSON snapshot produced by the caller-supplied
//!   [`StatusProvider`] (the budgeter publishes its session/lease/pool
//!   state into a board and the provider renders it).
//!
//! Every read is a cheap atomic or short lock hold against state the hot
//! path already maintains — serving a scrape never blocks a control
//! pass. The protocol support is deliberately minimal (GET only, one
//! request per connection, `Connection: close`): enough for `curl`,
//! Prometheus, and `anor-top`, with zero new dependencies.

use crate::Telemetry;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Renders the `/status` JSON body on demand. Called once per request on
/// the server thread; implementations should snapshot shared state via
/// cheap locked reads, never recompute it.
pub type StatusProvider = Arc<dyn Fn() -> String + Send + Sync>;

/// Cap on the request head we are willing to buffer: method + path +
/// headers. Anything longer is a hostile or broken client.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: an idle or stalled scraper must not
/// pin the server thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

#[derive(Debug, Default)]
struct Shared {
    shutdown: AtomicBool,
    served: AtomicU64,
    errors: AtomicU64,
}

/// The background HTTP responder. Dropping the handle shuts the server
/// down (the listener thread is woken and joined).
#[derive(Debug)]
pub struct OpsServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `/metrics` from `telemetry` and `/status` from `status`
    /// on a background thread.
    pub fn bind(addr: &str, telemetry: Telemetry, status: StatusProvider) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared::default());
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("anor-ops".to_string())
            .spawn(move || serve(&listener, &telemetry, &status, &worker))?;
        Ok(OpsServer {
            addr: local,
            shared,
            handle: Some(handle),
        })
    }

    /// The address the server actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (any status code).
    pub fn requests_served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Connections dropped on I/O or parse errors so far.
    pub fn request_errors(&self) -> u64 {
        self.shared.errors.load(Ordering::Relaxed)
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection so the
        // thread observes the flag and exits.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve(listener: &TcpListener, telemetry: &Telemetry, status: &StatusProvider, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match conn {
            Ok(stream) => match handle_conn(stream, telemetry, status) {
                Ok(()) => {
                    shared.served.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(_) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn handle_conn(
    mut stream: TcpStream,
    telemetry: &Telemetry,
    status: &StatusProvider,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = read_request_head(&mut stream)?;
    let (method, target) = parse_request_line(&head)?;
    // Ignore any query string: `/status?x=1` routes like `/status`.
    let path = target.split('?').next().unwrap_or(target);
    let (code, reason, content_type, body) = if method != "GET" {
        (
            405,
            "Method Not Allowed",
            "text/plain",
            String::from("GET only\n"),
        )
    } else {
        match path {
            "/health" => (200, "OK", "text/plain", String::from("ok\n")),
            "/metrics" => (
                200,
                "OK",
                "text/plain; version=0.0.4",
                telemetry.render_prometheus(),
            ),
            "/status" => (200, "OK", "application/json", status()),
            _ => (404, "Not Found", "text/plain", String::from("not found\n")),
        }
    };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Read until the blank line ending the request head (or EOF), bounded
/// by [`MAX_REQUEST_BYTES`].
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request head exceeds 8 KiB",
            ));
        }
    }
    String::from_utf8(buf)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 request"))
}

/// Split `GET /path HTTP/1.1` into method and target.
fn parse_request_line(head: &str) -> std::io::Result<(&str, &str)> {
    let line = head.lines().next().unwrap_or_default();
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some(method), Some(target)) => Ok((method, target)),
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed request line: {line:?}"),
        )),
    }
}

/// A minimal blocking HTTP GET against an [`OpsServer`]-style responder:
/// one request, `Connection: close`, body read to EOF. Returns the
/// status code and the response body. Shared by `anor-top`, the CI
/// status smoke and the integration tests, so nothing in the workspace
/// needs `curl`.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable addr")
    })?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response without header end",
        )
    })?;
    let code = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    Ok((code, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> OpsServer {
        let t = Telemetry::new();
        t.counter("ops_probe_total", &[("kind", "unit")]).add(7);
        let provider: StatusProvider = Arc::new(|| String::from("{\"ok\":true}"));
        OpsServer::bind("127.0.0.1:0", t, provider).unwrap()
    }

    #[test]
    fn serves_health_metrics_and_status() {
        let s = server();
        let addr = s.local_addr().to_string();
        let (code, body) = http_get(&addr, "/health", IO_TIMEOUT).unwrap();
        assert_eq!((code, body.as_str()), (200, "ok\n"));
        let (code, body) = http_get(&addr, "/metrics", IO_TIMEOUT).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("ops_probe_total{kind=\"unit\"} 7"), "{body}");
        let (code, body) = http_get(&addr, "/status?verbose=1", IO_TIMEOUT).unwrap();
        assert_eq!((code, body.as_str()), (200, "{\"ok\":true}"));
        assert_eq!(s.requests_served(), 3);
    }

    #[test]
    fn unknown_path_is_404_and_post_is_405() {
        let s = server();
        let addr = s.local_addr().to_string();
        let (code, _) = http_get(&addr, "/nope", IO_TIMEOUT).unwrap();
        assert_eq!(code, 404);
        // A hand-rolled POST: the server answers 405 rather than hanging.
        let mut stream = TcpStream::connect(s.local_addr()).unwrap();
        stream
            .write_all(b"POST /status HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        // The listener is sequential by design; concurrent scrapers
        // queue in the accept backlog and every one of them still gets
        // a complete answer.
        let s = server();
        let addr = s.local_addr().to_string();
        let n = 8;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || http_get(&addr, "/metrics", Duration::from_secs(5)))
            })
            .collect();
        for h in handles {
            let (code, body) = h.join().unwrap().unwrap();
            assert_eq!(code, 200);
            assert!(body.contains("ops_probe_total"), "{body}");
        }
        // The served counter ticks after the response bytes are written,
        // so a client can observe its complete answer before the server
        // thread reaches the fetch_add: give the counter a moment rather
        // than asserting against the race.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while s.requests_served() < n && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(s.requests_served(), n);
        assert_eq!(s.request_errors(), 0);
    }

    #[test]
    fn slow_loris_times_out_without_wedging_the_listener() {
        // A client that sends the request line and then stalls must not
        // pin the single server thread forever: the 2 s read timeout
        // drops it, the error counter ticks, and the next well-behaved
        // scrape (queued behind the stall) still completes.
        let s = server();
        let addr = s.local_addr();
        let mut loris = TcpStream::connect(addr).unwrap();
        loris
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n")
            .unwrap();
        loris.flush().unwrap();
        // No terminating blank line, no further bytes: the server's
        // read blocks until IO_TIMEOUT fires. Meanwhile a legitimate
        // request queues in the backlog; a timeout comfortably above
        // IO_TIMEOUT lets it ride out the stall.
        let (code, body) = http_get(&addr.to_string(), "/health", Duration::from_secs(8)).unwrap();
        assert_eq!((code, body.as_str()), (200, "ok\n"));
        assert_eq!(s.requests_served(), 1);
        assert_eq!(s.request_errors(), 1);
        drop(loris);
    }

    #[test]
    fn drop_shuts_the_server_down() {
        let s = server();
        let addr = s.local_addr();
        drop(s);
        // The port is released: a fresh GET cannot reach a live server.
        assert!(http_get(&addr.to_string(), "/health", Duration::from_millis(200)).is_err());
    }
}
