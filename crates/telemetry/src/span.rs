//! RAII timing guards for control-loop stages.

use crate::registry::Histogram;
use crate::Telemetry;
use std::time::Instant;

/// Times a scope into a histogram on drop. Cheap: two `Instant` reads
/// and a few atomics, no events.
#[must_use = "a Timer measures until it is dropped"]
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Instant,
    stopped: bool,
}

impl Timer {
    /// Start timing into a cached histogram handle — the hot-loop
    /// variant of [`Telemetry::timer`](crate::Telemetry::timer), which
    /// avoids the registry lookup entirely.
    pub fn start(hist: Histogram) -> Self {
        Timer::new(hist)
    }

    pub(crate) fn new(hist: Histogram) -> Self {
        Timer {
            hist,
            start: Instant::now(),
            stopped: false,
        }
    }

    /// Stop early and return the elapsed seconds.
    pub fn stop(mut self) -> f64 {
        self.stopped = true;
        let dt = self.start.elapsed().as_secs_f64();
        self.hist.observe(dt);
        dt
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if !self.stopped {
            self.hist.observe(self.start.elapsed().as_secs_f64());
        }
    }
}

/// A named span: times a scope into `<name>_seconds` *and* emits a
/// `span` event with the duration and the caller's fields on drop.
#[must_use = "a Span measures until it is dropped"]
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    name: String,
    fields: Vec<(String, crate::Value)>,
    hist: Histogram,
    start: Instant,
}

impl Span {
    pub(crate) fn new(telemetry: Telemetry, name: &str, fields: &[(&str, crate::Value)]) -> Self {
        let hist = telemetry.histogram(&format!("{name}_seconds"), &[]);
        Span {
            telemetry,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            hist,
            start: Instant::now(),
        }
    }

    /// Attach another field before the span closes.
    pub fn record(&mut self, key: &str, value: impl Into<crate::Value>) {
        self.fields.push((key.to_string(), value.into()));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dt = self.start.elapsed().as_secs_f64();
        self.hist.observe(dt);
        let mut fields: Vec<(&str, crate::Value)> = Vec::with_capacity(self.fields.len() + 2);
        fields.push(("span", crate::Value::Str(self.name.clone())));
        fields.push(("dur_s", crate::Value::F64(dt)));
        for (k, v) in &self.fields {
            fields.push((k.as_str(), v.clone()));
        }
        self.telemetry.event("span", &fields);
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn timer_observes_on_drop() {
        let t = Telemetry::new();
        {
            let _timer = t.timer("stage_seconds", &[]);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = t.histogram("stage_seconds", &[]);
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 0.002, "timed {}", h.max());
    }

    #[test]
    fn timer_stop_returns_elapsed() {
        let t = Telemetry::new();
        let timer = t.timer("stage_seconds", &[]);
        let dt = timer.stop();
        assert!(dt >= 0.0);
        assert_eq!(t.histogram("stage_seconds", &[]).count(), 1);
    }

    #[test]
    fn span_emits_event_and_histogram() {
        let t = Telemetry::new();
        {
            let mut span = t.span("rebalance", &[("policy", "even-slowdown".into())]);
            span.record("jobs", 3u64);
        }
        assert_eq!(t.histogram("rebalance_seconds", &[]).count(), 1);
        let lines = t.memory_event_lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"span\":\"rebalance\""));
        assert!(lines[0].contains("\"policy\":\"even-slowdown\""));
        assert!(lines[0].contains("\"jobs\":3"));
    }
}
