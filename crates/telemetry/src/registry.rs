//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Design goals (DESIGN.md "Observability"):
//!
//! * **Lock-cheap hot path.** Handles returned by the registry are
//!   `Arc`s over atomics; incrementing a counter or observing a latency
//!   is a handful of atomic ops with no lock. The registry's
//!   `parking_lot::RwLock` is touched only at registration time, and
//!   call sites cache their handles.
//! * **Label support.** A metric is identified by `(name, labels)`;
//!   labels are sorted at registration so the same set always maps to
//!   the same series.
//! * **Histogram summaries.** Histograms use fixed upper-edge buckets
//!   and report p50/p90/p99 by linear interpolation inside the bucket
//!   that crosses the target rank, clamped to the observed min/max.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest `f64` value.
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Atomic f64 accumulator (CAS loop; contention here is negligible).
#[derive(Debug)]
struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    fn new(v: f64) -> Self {
        AtomicF64 {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn update(&self, f: impl Fn(f64) -> f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
}

/// A fixed-bucket histogram with p50/p90/p99 summaries.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper edges, strictly increasing; an implicit overflow bucket
    /// catches everything above the last edge.
    bounds: Vec<f64>,
    /// One count per edge plus the overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
}

impl Histogram {
    /// Default latency buckets: ~1 µs to ~30 s, four per decade.
    pub fn default_bounds() -> Vec<f64> {
        let mut bounds = Vec::with_capacity(32);
        let mut edge = 1e-6;
        while edge < 40.0 {
            bounds.push(edge);
            edge *= 10f64.powf(0.25);
        }
        bounds
    }

    /// Linear buckets, handy for dimensionless ratios like tracking
    /// error: `linear_bounds(0.05, 40)` covers (0, 2.0] in 0.05 steps.
    pub fn linear_bounds(step: f64, count: usize) -> Vec<f64> {
        (1..=count).map(|i| step * i as f64).collect()
    }

    fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistogramCore {
                bounds,
                counts,
                total: AtomicU64::new(0),
                sum: AtomicF64::new(0.0),
                min: AtomicF64::new(f64::INFINITY),
                max: AtomicF64::new(f64::NEG_INFINITY),
            }),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let c = &self.core;
        let idx = c.bounds.partition_point(|&edge| edge < v);
        c.counts[idx].fetch_add(1, Ordering::Relaxed);
        c.total.fetch_add(1, Ordering::Relaxed);
        c.sum.update(|s| s + v);
        c.min.update(|m| m.min(v));
        c.max.update(|m| m.max(v));
    }

    pub fn count(&self) -> u64 {
        self.core.total.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        self.core.sum.get()
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    pub fn min(&self) -> f64 {
        let m = self.core.min.get();
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    pub fn max(&self) -> f64 {
        let m = self.core.max.get();
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Estimate the q-quantile (`0.0..=1.0`) by interpolating within
    /// the bucket that crosses the target rank.
    pub fn quantile(&self, q: f64) -> f64 {
        let c = &self.core;
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * total as f64;
        let mut cum = 0u64;
        for (idx, count) in c.counts.iter().enumerate() {
            let n = count.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= target {
                let lower = if idx == 0 { 0.0 } else { c.bounds[idx - 1] };
                let upper = if idx < c.bounds.len() {
                    c.bounds[idx]
                } else {
                    // Overflow bucket: fall back on the observed max.
                    self.max().max(lower)
                };
                let frac = if n == 0 {
                    0.0
                } else {
                    ((target - cum as f64) / n as f64).clamp(0.0, 1.0)
                };
                let est = lower + (upper - lower) * frac;
                return est.clamp(self.min(), self.max());
            }
            cum = next;
        }
        self.max()
    }

    /// Cumulative `(upper_edge, count)` pairs for exposition; the final
    /// entry is the `+Inf` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let c = &self.core;
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(c.counts.len());
        for (idx, count) in c.counts.iter().enumerate() {
            cum += count.load(Ordering::Relaxed);
            let edge = if idx < c.bounds.len() {
                c.bounds[idx]
            } else {
                f64::INFINITY
            };
            out.push((edge, cum));
        }
        out
    }
}

/// One metric's identity: name plus sorted `key=value` labels.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

/// Escape a label value for the Prometheus text exposition format:
/// inside `k="v"` bodies, backslash, double-quote and line-feed must be
/// written as `\\`, `\"` and `\n` or a hostile label (a job type name
/// with a quote, an error string with a newline) corrupts the scrape.
/// Clean values (the overwhelmingly common case) are returned borrowed.
pub(crate) fn escape_label(v: &str) -> std::borrow::Cow<'_, str> {
    if !v.contains(['\\', '"', '\n']) {
        return std::borrow::Cow::Borrowed(v);
    }
    let mut out = String::with_capacity(v.len() + 8);
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{k="v",...}` (or bare name without labels), with label
    /// values escaped per the Prometheus text format.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time copy of one metric, used by the renderers.
#[derive(Clone, Debug)]
pub enum Snapshot {
    Counter {
        id: MetricId,
        value: u64,
    },
    Gauge {
        id: MetricId,
        value: f64,
    },
    Histogram {
        id: MetricId,
        count: u64,
        sum: f64,
        mean: f64,
        min: f64,
        max: f64,
        p50: f64,
        p90: f64,
        p99: f64,
        buckets: Vec<(f64, u64)>,
    },
}

impl Snapshot {
    pub fn id(&self) -> &MetricId {
        match self {
            Snapshot::Counter { id, .. } => id,
            Snapshot::Gauge { id, .. } => id,
            Snapshot::Histogram { id, .. } => id,
        }
    }
}

/// The shared registry of named series.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<HashMap<MetricId, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::new(name, labels);
        if let Some(Metric::Counter(c)) = self.metrics.read().get(&id) {
            return c.clone();
        }
        match self
            .metrics
            .write()
            .entry(id)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric type mismatch for counter: {other:?}"),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::new(name, labels);
        if let Some(Metric::Gauge(g)) = self.metrics.read().get(&id) {
            return g.clone();
        }
        match self
            .metrics
            .write()
            .entry(id)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric type mismatch for gauge: {other:?}"),
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with_bounds(name, labels, Histogram::default_bounds())
    }

    pub fn histogram_with_bounds(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Vec<f64>,
    ) -> Histogram {
        let id = MetricId::new(name, labels);
        if let Some(Metric::Histogram(h)) = self.metrics.read().get(&id) {
            return h.clone();
        }
        match self
            .metrics
            .write()
            .entry(id)
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric type mismatch for histogram: {other:?}"),
        }
    }

    /// Snapshot every series, sorted by `(name, labels)`.
    pub fn snapshot(&self) -> Vec<Snapshot> {
        let metrics = self.metrics.read();
        let mut out: Vec<Snapshot> = metrics
            .iter()
            .map(|(id, metric)| match metric {
                Metric::Counter(c) => Snapshot::Counter {
                    id: id.clone(),
                    value: c.get(),
                },
                Metric::Gauge(g) => Snapshot::Gauge {
                    id: id.clone(),
                    value: g.get(),
                },
                Metric::Histogram(h) => Snapshot::Histogram {
                    id: id.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    mean: h.mean(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                    buckets: h.cumulative_buckets(),
                },
            })
            .collect();
        out.sort_by(|a, b| a.id().cmp(b.id()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        let c = r.counter("frames_total", &[("dir", "rx")]);
        c.inc();
        c.add(4);
        // Same (name, labels) resolves to the same series.
        assert_eq!(r.counter("frames_total", &[("dir", "rx")]).get(), 5);
        assert_eq!(r.counter("frames_total", &[("dir", "tx")]).get(), 0);
        let g = r.gauge("queue_depth", &[]);
        g.set(7.5);
        assert_eq!(r.gauge("queue_depth", &[]).get(), 7.5);
    }

    #[test]
    fn hostile_label_values_are_escaped() {
        let r = Registry::new();
        r.counter("m", &[("type", "bt\".D\\81\nboom")]).inc();
        let snaps = r.snapshot();
        assert_eq!(
            snaps[0].id().render(),
            "m{type=\"bt\\\".D\\\\81\\nboom\"}",
            "quote, backslash and newline must be escaped"
        );
        // Clean labels render unchanged (no allocation-churn regression).
        assert!(matches!(
            escape_label("bt.D.81"),
            std::borrow::Cow::Borrowed("bt.D.81")
        ));
    }

    #[test]
    fn label_order_is_canonical() {
        let r = Registry::new();
        r.counter("m", &[("a", "1"), ("b", "2")]).inc();
        r.counter("m", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(r.counter("m", &[("a", "1"), ("b", "2")]).get(), 2);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn histogram_quantiles_bracket_uniform_data() {
        let r = Registry::new();
        let h = r.histogram_with_bounds("lat", &[], Histogram::linear_bounds(0.01, 100));
        for i in 0..1000 {
            h.observe((i as f64 + 0.5) / 1000.0);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 0.5).abs() < 1e-3);
        assert!(
            (h.quantile(0.5) - 0.5).abs() < 0.02,
            "p50 {}",
            h.quantile(0.5)
        );
        assert!(
            (h.quantile(0.9) - 0.9).abs() < 0.02,
            "p90 {}",
            h.quantile(0.9)
        );
        assert!((h.quantile(0.99) - 0.99).abs() < 0.02);
    }

    #[test]
    fn histogram_overflow_uses_observed_max() {
        let r = Registry::new();
        let h = r.histogram_with_bounds("lat", &[], vec![1.0]);
        h.observe(50.0);
        h.observe(90.0);
        assert!(h.quantile(0.99) <= 90.0);
        assert!(h.quantile(0.99) > 1.0);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let r = Registry::new();
        let h = r.histogram("lat", &[]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let r = Registry::new();
        let h = r.histogram("lat", &[]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }
}
