//! `anor-telemetry` — observability for every tier of the ANOR stack.
//!
//! The paper's debugging story (§7.2) leans on GEOPM's per-node trace
//! files; this crate gives the reproduction the equivalent for the
//! cluster tier and above: a lock-cheap metrics registry, RAII span
//! timing for control-loop stages, and pluggable sinks (a JSONL event
//! log, a Prometheus-style text exposition dump, and an end-of-run
//! summary table).
//!
//! # Usage
//!
//! ```
//! use anor_telemetry::Telemetry;
//!
//! let t = Telemetry::new(); // in-memory; Telemetry::to_dir(..) adds a JSONL file
//! let frames = t.counter("transport_frames_total", &[("dir", "rx")]);
//! frames.inc();
//! {
//!     let _timer = t.timer("budgeter_rebalance_seconds", &[]);
//!     // ... redistribute ...
//! }
//! t.event("job_started", &[("job", 7u64.into()), ("type", "bt.D.81".into())]);
//! let summary = t.render_summary();
//! assert!(summary.contains("transport_frames_total"));
//! ```
//!
//! `Telemetry` is an `Arc`-backed handle: clone it freely into every
//! component. Handles returned by `counter`/`gauge`/`histogram` are
//! themselves cheap atomics meant to be cached at construction time, so
//! steady-state recording takes no lock.

pub mod ops;
pub mod recorder;
mod registry;
mod render;
mod sink;
mod span;
pub mod trace;

pub use ops::{http_get, OpsServer, StatusProvider};
pub use recorder::{
    config_digest, read_recording, BuildInfo, FlightRecorder, RecEvent, RecordedEvent, Recording,
    RecordingHeader, RecordingMeta, DEFAULT_RECORDING_ROTATE_BYTES, MAX_RECORD_LEN,
    RECORDING_MAGIC, RECORDING_VERSION,
};
pub use registry::{Counter, Gauge, Histogram, MetricId, Registry, Snapshot};
pub use sink::{
    parse_line, read_events, render_line, Event, EventLog, Value, DEFAULT_ROTATE_BYTES,
    MEMORY_EVENT_CAP, ROTATE_KEEP,
};
pub use span::{Span, Timer};
pub use trace::{
    read_trace, CauseId, SpanId, TraceEvent, TraceId, TraceScan, TraceStage, Tracer,
    DEFAULT_RING_CAPACITY,
};

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    registry: Registry,
    events: EventLog,
    start: Instant,
    dir: Option<PathBuf>,
}

/// The shared telemetry handle. Cloning is an `Arc` bump.
#[derive(Clone, Debug)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// In-memory telemetry: metrics always on, events buffered (capped
    /// at [`MEMORY_EVENT_CAP`]). This is the default every component
    /// gets, so instrumentation never needs an `Option`.
    pub fn new() -> Self {
        let t = Telemetry {
            inner: Arc::new(Inner {
                registry: Registry::new(),
                events: EventLog::memory(),
                start: Instant::now(),
                dir: None,
            }),
        };
        t.register_build_info();
        t
    }

    /// Telemetry writing `events.jsonl` into `dir` (created if absent);
    /// [`Telemetry::write_artifacts`] later adds `metrics.prom` and
    /// `summary.txt` next to it.
    pub fn to_dir(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let events = EventLog::file(&dir.join("events.jsonl"))?;
        let t = Telemetry {
            inner: Arc::new(Inner {
                registry: Registry::new(),
                events,
                start: Instant::now(),
                dir: Some(dir),
            }),
        };
        t.register_build_info();
        Ok(t)
    }

    /// Every registry answers "which binary produced these numbers":
    /// `anor_build_info` is a constant-1 gauge carrying the version and
    /// git hash as labels (the standard Prometheus build-info idiom).
    fn register_build_info(&self) {
        let info = BuildInfo::current();
        self.inner
            .registry
            .gauge(
                "anor_build_info",
                &[
                    ("version", info.version.as_str()),
                    ("git_hash", info.git_hash.as_str()),
                ],
            )
            .set(1.0);
    }

    /// The artifact directory, when configured via [`Telemetry::to_dir`].
    pub fn dir(&self) -> Option<&Path> {
        self.inner.dir.as_deref()
    }

    /// Seconds since this handle was created (the `ts` of events).
    pub fn elapsed(&self) -> f64 {
        self.inner.start.elapsed().as_secs_f64()
    }

    // ---- metrics ----------------------------------------------------

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.inner.registry.counter(name, labels)
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.inner.registry.gauge(name, labels)
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.inner.registry.histogram(name, labels)
    }

    pub fn histogram_with_bounds(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Vec<f64>,
    ) -> Histogram {
        self.inner
            .registry
            .histogram_with_bounds(name, labels, bounds)
    }

    /// Snapshot every registered series.
    pub fn snapshot(&self) -> Vec<Snapshot> {
        self.inner.registry.snapshot()
    }

    // ---- timing -----------------------------------------------------

    /// Time a scope into the named histogram (no event emitted).
    pub fn timer(&self, name: &str, labels: &[(&str, &str)]) -> Timer {
        Timer::new(self.histogram(name, labels))
    }

    /// Time a scope into `<name>_seconds` *and* emit a `span` event
    /// with the duration and fields when it closes.
    pub fn span(&self, name: &str, fields: &[(&str, Value)]) -> Span {
        Span::new(self.clone(), name, fields)
    }

    // ---- events -----------------------------------------------------

    /// Emit a structured event to the JSONL sink.
    pub fn event(&self, name: &str, fields: &[(&str, Value)]) {
        let line = render_line(self.elapsed(), name, fields);
        self.inner.events.push(line);
    }

    /// Events written / dropped so far.
    pub fn event_counts(&self) -> (u64, u64) {
        (self.inner.events.written(), self.inner.events.dropped())
    }

    /// Buffered event lines when running in-memory (tests).
    pub fn memory_event_lines(&self) -> Vec<String> {
        self.inner.events.memory_lines()
    }

    // ---- sinks ------------------------------------------------------

    /// Prometheus-style text exposition of the current registry.
    pub fn render_prometheus(&self) -> String {
        render::prometheus(&self.snapshot())
    }

    /// The end-of-run summary table.
    pub fn render_summary(&self) -> String {
        let (written, dropped) = self.event_counts();
        render::summary(&self.snapshot(), written, dropped)
    }

    /// Flush the event log and, when a directory is configured, write
    /// `metrics.prom` and `summary.txt`. Returns the rendered summary
    /// (so runners can also print it).
    pub fn write_artifacts(&self) -> std::io::Result<String> {
        self.inner.events.flush()?;
        let summary = self.render_summary();
        if let Some(dir) = &self.inner.dir {
            std::fs::write(dir.join("metrics.prom"), self.render_prometheus())?;
            std::fs::write(dir.join("summary.txt"), &summary)?;
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Telemetry::new();
        let b = a.clone();
        a.counter("c", &[]).inc();
        b.counter("c", &[]).inc();
        assert_eq!(a.counter("c", &[]).get(), 2);
        b.event("e", &[]);
        assert_eq!(a.event_counts().0, 1);
    }

    #[test]
    fn build_info_gauge_is_registered_on_construction() {
        let t = Telemetry::new();
        let info = BuildInfo::current();
        let prom = t.render_prometheus();
        assert!(prom.contains("anor_build_info{"), "{prom}");
        assert!(
            prom.contains(&format!("version=\"{}\"", info.version)),
            "{prom}"
        );
        assert!(
            prom.contains(&format!("git_hash=\"{}\"", info.git_hash)),
            "{prom}"
        );
    }

    #[test]
    fn dir_mode_writes_all_artifacts() {
        let dir =
            std::env::temp_dir().join(format!("anor-telemetry-artifacts-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Telemetry::to_dir(&dir).unwrap();
        t.counter("transport_frames_total", &[("dir", "tx")]).add(3);
        t.histogram("budgeter_rebalance_seconds", &[]).observe(0.01);
        t.event("job_started", &[("job", 1u64.into())]);
        let summary = t.write_artifacts().unwrap();
        assert!(summary.contains("transport_frames_total"));

        let events = read_events(&dir.join("events.jsonl")).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, "job_started");
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("transport_frames_total{dir=\"tx\"} 3"));
        let text = std::fs::read_to_string(dir.join("summary.txt")).unwrap();
        assert!(text.contains("budgeter_rebalance_seconds"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
