//! `anor-lint` — workspace-aware static analysis for ANOR.
//!
//! A custom, dependency-free static-analysis engine enforcing the
//! project invariants the Rust compiler cannot see (DESIGN.md "Static
//! Analysis"):
//!
//! * **`ANOR-PANIC`** — designated hot-path modules (the cluster
//!   budgeter/endpoint/codec, the GEOPM agent tier, the simulator tick
//!   path, telemetry sinks) must be panic-free: the paper's feedback
//!   loop assumes the budgeter survives misclassified jobs and malformed
//!   peers.
//! * **`ANOR-CODEC`** — v1/v2 wire tags stay disjoint, every encoded tag
//!   has a decode arm, payload reads are length-guarded.
//! * **`ANOR-UNITS`** — watts/joules/seconds identifiers are never mixed
//!   additively in raw-`f64` arithmetic.
//! * **`ANOR-LOCK`** — no `parking_lot` guard held across blocking I/O;
//!   nested acquisition is collected into a whole-workspace lock graph
//!   and any cycle (in-different-order acquisition) is a finding.
//! * **`ANOR-DETERM`** — deterministic roots (sim tick, budgeter pump,
//!   replay, codec, ExecPool task bodies) must not reach nondeterminism
//!   sources: `HashMap` iteration, wall-clock reads, thread identity.
//!
//! The engine is three layers (DESIGN.md "Static Analysis"):
//!
//! 1. a hand-rolled lexer (see [`lexer`]) — no syn/proc-macro
//!    dependencies, because the build is offline — plus a lightweight
//!    item [`parser`] (fn items, impl owners, use trees, call sites);
//! 2. a per-crate symbol table and workspace call graph
//!    ([`symbols`], [`callgraph`]) with deliberately conservative call
//!    resolution (same file, then same crate, then unique-in-workspace);
//! 3. the rule passes — per-file token rules and whole-workspace
//!    call-graph rules — over those structures.
//!
//! Audited exceptions live in the workspace `anor-lint.toml`.

pub mod callgraph;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;

pub use config::Config;
pub use diag::{json_report, Diagnostic};

use std::path::{Path, PathBuf};

/// Lint a single file's source under its workspace-relative `path` (the
/// path decides which rules apply). Allowlist entries are already applied
/// to the returned diagnostics.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let toks = lexer::lex(src);
    let mask = lexer::test_mask(&toks);
    let mut diags = rules::run_all(path, &toks, &mask, cfg);
    cfg.apply_allowlist(&mut diags);
    diags
}

/// Discover the workspace's first-party Rust sources under `root`:
/// `src/` and every `crates/*/src/`. Vendored crates, build output, test
/// fixtures and integration-test directories are excluded — the panic
/// rules are about production control paths.
pub fn discover(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            roots.push(e.path().join("src"));
        }
    }
    for dir in roots {
        walk(&dir, &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Lint a set of `(workspace-relative path, source)` pairs as one
/// workspace: per-file rules over each file, then the call-graph rules
/// (`ANOR-DETERM`, panic reachability, lock-graph cycles) over the
/// whole set. Diagnostics come back sorted by `(file, line, rule)` and
/// with the allowlist applied.
pub fn lint_sources(sources: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    let ws = symbols::Workspace::parse(sources);
    let mut diags = Vec::new();
    for file in &ws.files {
        diags.extend(rules::run_all(&file.path, &file.toks, &file.mask, cfg));
    }
    let graph = callgraph::CallGraph::build(&ws);
    diags.extend(rules::run_workspace(&ws, &graph, cfg));
    diags.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    cfg.apply_allowlist(&mut diags);
    diags
}

/// Rule `ANOR-LINTS`: every workspace crate must opt into the shared
/// `[workspace.lints]` table — a crate that forgets `[lints] workspace =
/// true` silently loses `deny(unsafe_code)` and the rest of the hardened
/// set. Checked over manifest text, so it needs no TOML parser.
pub fn check_manifests(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let opted_in = |text: &str| -> bool {
        let lines: Vec<&str> = text.lines().map(str::trim).collect();
        lines.iter().enumerate().any(|(i, l)| {
            *l == "[lints]"
                && lines[i + 1..]
                    .iter()
                    .take_while(|l| !l.starts_with('['))
                    .any(|l| l.replace(' ', "") == "workspace=true")
        })
    };
    let mut manifests = vec![(root.join("Cargo.toml"), "Cargo.toml".to_string())];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            let rel = format!(
                "crates/{}/Cargo.toml",
                d.file_name().unwrap_or_default().to_string_lossy()
            );
            manifests.push((d.join("Cargo.toml"), rel));
        }
    }
    for (path, rel) in manifests {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if rel == "Cargo.toml" && !text.contains("[workspace.lints.rust]") {
            out.push(Diagnostic::new(
                "ANOR-LINTS",
                &rel,
                1,
                "workspace manifest has no `[workspace.lints.rust]` table".to_string(),
                "declare the shared hardened lint set (deny unsafe_code, \
                 unused_must_use, unreachable_pub) at the workspace root",
                "[workspace.lints.rust]".to_string(),
            ));
        }
        if text.contains("[package]") && !opted_in(&text) {
            out.push(Diagnostic::new(
                "ANOR-LINTS",
                &rel,
                1,
                "crate does not opt into the shared workspace lints".to_string(),
                "add `[lints]` with `workspace = true` so deny(unsafe_code) \
                 and the rest of the hardened set apply here too",
                "[lints] workspace = true".to_string(),
            ));
        }
    }
    out
}

/// Lint the whole workspace rooted at `root`. Returns all diagnostics
/// (allowlisted ones included, marked `allowed`).
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut sources = Vec::new();
    for file in discover(root) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        sources.push((rel, src));
    }
    let mut diags = check_manifests(root);
    diags.extend(lint_sources(&sources, cfg));
    cfg.apply_allowlist(&mut diags);
    Ok(diags)
}

/// Find the workspace root by walking up from `start` to the first
/// directory holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_hot_path_flags_unwrap_but_not_in_tests() {
        let cfg = Config::default();
        let src = "fn pump() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let diags = lint_source("crates/cluster/src/budgeter.rs", src, &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "ANOR-PANIC");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn non_hot_path_files_are_not_panic_checked() {
        let cfg = Config::default();
        let diags = lint_source("crates/anor/src/render.rs", "fn f() { x.unwrap(); }", &cfg);
        assert!(diags.iter().all(|d| d.rule != "ANOR-PANIC"));
    }

    #[test]
    fn allowlist_marks_but_keeps_diagnostics() {
        let mut cfg = Config::default();
        cfg.apply("allow ANOR-PANIC crates/cluster/src/budgeter.rs .unwrap(\n");
        let diags = lint_source(
            "crates/cluster/src/budgeter.rs",
            "fn pump() { x.unwrap(); }",
            &cfg,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].allowed);
    }
}
