//! `anor-lint` — workspace-aware static analysis for ANOR.
//!
//! A custom, dependency-free static-analysis engine enforcing the
//! project invariants the Rust compiler cannot see (DESIGN.md "Static
//! Analysis"):
//!
//! * **`ANOR-PANIC`** — designated hot-path modules (the cluster
//!   budgeter/endpoint/codec, the GEOPM agent tier, the simulator tick
//!   path, telemetry sinks) must be panic-free: the paper's feedback
//!   loop assumes the budgeter survives misclassified jobs and malformed
//!   peers.
//! * **`ANOR-CODEC`** — v1/v2 wire tags stay disjoint, every encoded tag
//!   has a decode arm, payload reads are length-guarded.
//! * **`ANOR-UNITS`** — watts/joules/seconds identifiers are never mixed
//!   additively in raw-`f64` arithmetic.
//! * **`ANOR-LOCK`** — no `parking_lot` guard held across blocking I/O;
//!   nested acquisition follows the declared lock-order table.
//!
//! The engine lexes Rust by hand (see [`lexer`]) — no syn/proc-macro
//! dependencies, because the build is offline — and walks flat token
//! streams. Audited exceptions live in the workspace `anor-lint.toml`.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use diag::{json_report, Diagnostic};

use std::path::{Path, PathBuf};

/// Lint a single file's source under its workspace-relative `path` (the
/// path decides which rules apply). Allowlist entries are already applied
/// to the returned diagnostics.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let toks = lexer::lex(src);
    let mask = lexer::test_mask(&toks);
    let mut diags = rules::run_all(path, &toks, &mask, cfg);
    cfg.apply_allowlist(&mut diags);
    diags
}

/// Discover the workspace's first-party Rust sources under `root`:
/// `src/` and every `crates/*/src/`. Vendored crates, build output, test
/// fixtures and integration-test directories are excluded — the panic
/// rules are about production control paths.
pub fn discover(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            roots.push(e.path().join("src"));
        }
    }
    for dir in roots {
        walk(&dir, &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Lint the whole workspace rooted at `root`. Returns all diagnostics
/// (allowlisted ones included, marked `allowed`).
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for file in discover(root) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        diags.extend(lint_source(&rel, &src, cfg));
    }
    Ok(diags)
}

/// Find the workspace root by walking up from `start` to the first
/// directory holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_hot_path_flags_unwrap_but_not_in_tests() {
        let cfg = Config::default();
        let src = "fn pump() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let diags = lint_source("crates/cluster/src/budgeter.rs", src, &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "ANOR-PANIC");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn non_hot_path_files_are_not_panic_checked() {
        let cfg = Config::default();
        let diags = lint_source("crates/anor/src/render.rs", "fn f() { x.unwrap(); }", &cfg);
        assert!(diags.iter().all(|d| d.rule != "ANOR-PANIC"));
    }

    #[test]
    fn allowlist_marks_but_keeps_diagnostics() {
        let mut cfg = Config::default();
        cfg.apply("allow ANOR-PANIC crates/cluster/src/budgeter.rs .unwrap(\n");
        let diags = lint_source(
            "crates/cluster/src/budgeter.rs",
            "fn pump() { x.unwrap(); }",
            &cfg,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].allowed);
    }
}
