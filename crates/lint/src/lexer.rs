//! A small hand-rolled Rust lexer.
//!
//! The lint rules need token streams, not character soup: `unwrap` inside
//! a string literal or a comment must not trip the panic-freedom rule.
//! This lexer understands exactly enough Rust to get that right — line
//! and nested block comments, regular/raw/byte string literals, char
//! literals vs. lifetimes, numeric literals with exponents, identifiers
//! (including raw `r#ident`), and single-character punctuation. It makes
//! no attempt to parse; the rules walk the flat token stream themselves.

/// The coarse classification a lint rule needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `unwrap`, `self`, ...).
    Ident,
    /// Numeric literal (`42`, `0xff`, `1.25e-5`).
    Num,
    /// String literal of any flavour (`"x"`, `r#"x"#`, `b"x"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `[`, `+`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Is this token the given punctuation character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Is this token the given identifier/keyword?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Lex `src` into a flat token stream. Unterminated literals lex as
/// best-effort tokens running to end of input; the linter never fails on
/// malformed source (rustc will complain about it soon enough).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                'r' if self.raw_string_ahead(1) => self.raw_string(line),
                'b' if self.peek_at(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek_at(1) == Some('\'') => {
                    self.bump();
                    self.char_or_lifetime(line);
                }
                'b' if self.peek_at(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string_body(line);
                }
                'c' if self.peek_at(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'c' if self.peek_at(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string_body(line);
                }
                'r' if self.peek_at(1) == Some('#')
                    && self
                        .peek_at(2)
                        .is_some_and(|c| c.is_alphanumeric() || c == '_') =>
                {
                    // Raw identifier `r#type`.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// Does `r`/`br` at the current position start a raw string? (`r"`,
    /// `r#"`, `r##"`, ...)
    fn raw_string_ahead(&self, mut off: usize) -> bool {
        while self.peek_at(off) == Some('#') {
            off += 1;
        }
        self.peek_at(off) == Some('"')
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Consume the escaped character verbatim.
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn raw_string(&mut self, line: u32) {
        self.bump(); // the `r`
        self.raw_string_body(line);
    }

    fn raw_string_body(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` hash marks.
                for i in 0..hashes {
                    if self.peek_at(i) != Some('#') {
                        text.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the `'`
                     // `'a` followed by a second `'` is a char literal; `'a` followed
                     // by anything else is a lifetime.
        let first = self.peek();
        let is_lifetime =
            first.is_some_and(|c| c.is_alphabetic() || c == '_') && self.peek_at(1) != Some('\'');
        if is_lifetime {
            let mut text = String::new();
            while let Some(c) = self.peek() {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        let mut text = String::new();
        match self.bump() {
            Some('\\') => {
                text.push('\\');
                if let Some(e) = self.bump() {
                    text.push(e);
                    // Multi-character escapes: `'\u{1F600}'`, `'\x41'`.
                    // Consuming only one escaped character here would
                    // leave the tail (`1F600}'`) in the stream and
                    // desynchronize everything after the literal.
                    if e == 'u' && self.peek() == Some('{') {
                        while let Some(c) = self.bump() {
                            text.push(c);
                            if c == '}' {
                                break;
                            }
                        }
                    } else if e == 'x' {
                        while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                            if let Some(c) = self.bump() {
                                text.push(c);
                            }
                        }
                    }
                }
                if self.peek() == Some('\'') {
                    self.bump(); // closing quote
                }
            }
            Some(c) => {
                text.push(c);
                if self.peek() == Some('\'') {
                    self.bump(); // closing quote
                }
            }
            None => {}
        }
        self.push(TokKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let alnum = |lex: &mut Self, text: &mut String| {
            while let Some(c) = lex.peek() {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    lex.bump();
                } else {
                    break;
                }
            }
        };
        alnum(self, &mut text);
        // Fraction: `.` only when followed by a digit, so `0..5` stays a
        // range and `x.0` field access stays punctuated.
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            alnum(self, &mut text);
        }
        // Signed exponent: `1.25e-5`.
        if (text.ends_with('e') || text.ends_with('E'))
            && matches!(self.peek(), Some('+') | Some('-'))
            && self.peek_at(1).is_some_and(|c| c.is_ascii_digit())
        {
            text.push(self.bump().unwrap_or('-'));
            alnum(self, &mut text);
        }
        self.push(TokKind::Num, text, line);
    }
}

/// Mark which token indices belong to test-only code: the bodies of
/// `#[cfg(test)]` items and `#[test]` functions. Returns a bool per
/// token, `true` = test code.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(attr_end) = test_attr_end(toks, i) {
            // Skip any further attributes between the cfg(test) attribute
            // and the item it gates.
            let mut j = attr_end;
            while j < toks.len() && toks[j].is_punct('#') {
                j = skip_attr(toks, j);
            }
            let item_end = skip_item(toks, j);
            for m in mask.iter_mut().take(item_end).skip(i) {
                *m = true;
            }
            i = item_end;
        } else {
            i += 1;
        }
    }
    mask
}

/// If `toks[i..]` starts a `#[cfg(test)]`, `#[cfg_attr(test, ...)]` or
/// `#[test]` attribute, return the index one past its closing `]`.
fn test_attr_end(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks.get(i)?.is_punct('#') || !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    let end = skip_attr(toks, i);
    // An unterminated `#[` at end of stream yields an inverted range.
    let inner = toks.get(i + 2..end.saturating_sub(1)).unwrap_or(&[]);
    let is_test = match inner.first() {
        Some(t) if t.is_ident("test") => inner.len() == 1,
        Some(t) if t.is_ident("cfg") || t.is_ident("cfg_attr") => {
            inner.iter().any(|t| t.is_ident("test"))
        }
        _ => false,
    };
    is_test.then_some(end)
}

/// Skip a `#[...]` attribute starting at `i` (which must be `#`). Returns
/// the index one past the matching `]`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Skip one item starting at `i`: either through its matching `{ ... }`
/// block or through the terminating `;`. Returns the index one past it.
fn skip_item(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_produce_no_spurious_tokens() {
        let toks = lex("// unwrap()\n/* panic! /* nested */ */ let s = \"unwrap()\";");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s"]);
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let toks = lex("let x = 1.25e-5; for i in 0..5 {}");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["1.25e-5", "0", "5"]);
    }

    #[test]
    fn raw_strings_swallow_their_content() {
        let toks = lex(r####"let s = r#"a "quoted" unwrap()"#; x"####);
        assert!(toks.iter().any(|t| t.is_ident("x")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn hot() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let unwraps: Vec<bool> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, m)| *m)
            .collect();
        assert_eq!(unwraps, [false, true]);
    }

    #[test]
    fn multi_char_escapes_do_not_desync_the_stream() {
        // `'\u{1F600}'` used to lex as char `\u` with `1F600}'` left in
        // the stream; the stray quote then flipped char/lifetime mode
        // and swallowed later identifiers, silently skipping rules.
        for src in [
            "let a = '\\u{1F600}'; x.unwrap();",
            "let a = '\\x41'; x.unwrap();",
            "let a = '\\n'; x.unwrap();",
            "let a = b'\\x7f'; x.unwrap();",
        ] {
            let toks = lex(src);
            assert!(
                toks.iter().any(|t| t.is_ident("unwrap")),
                "`unwrap` lost after escape in {src:?}: {toks:?}"
            );
            assert_eq!(
                toks.iter().filter(|t| t.kind == TokKind::Char).count(),
                1,
                "exactly one char literal in {src:?}: {toks:?}"
            );
        }
    }

    #[test]
    fn raw_string_hash_variants_terminate_correctly() {
        // `"#` inside a `##`-delimited raw string must not close it.
        let toks = lex("let s = r##\"a \"# b \"quoted\"\"##; tail");
        assert!(toks.iter().any(|t| t.is_ident("tail")));
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["a \"# b \"quoted\""]);
        // Zero-hash and byte-raw variants.
        let toks = lex("r\"plain\" br#\"bytes\"# after");
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        // Multi-line raw strings keep the line counter honest.
        let toks = lex("r#\"a\nb\nc\"#\nnext");
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 4);
    }

    #[test]
    fn c_string_literals_lex_as_strings() {
        let toks = lex("let s = c\"abc\"; let r = cr#\"x\"#; tail");
        assert!(toks.iter().any(|t| t.is_ident("tail")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn deeply_nested_and_unterminated_block_comments() {
        let toks = lex("/* a /* b /* c */ */ still-comment */ code");
        assert!(toks.iter().any(|t| t.is_ident("code")));
        assert!(!toks.iter().any(|t| t.is_ident("still")));
        // Unterminated: everything to EOF is comment, no panic.
        let toks = lex("/* /* never closed\nunwrap()");
        assert!(toks.is_empty());
    }

    #[test]
    fn lifetime_char_ambiguity_edge_cases() {
        // `'_'` is a char; `'_` is the anonymous lifetime.
        let toks = lex("let c = '_'; fn f(x: &'_ str) {}");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            1
        );
        // Loop labels are lifetimes, not unterminated chars.
        let toks = lex("'outer: for x in 'a'..='z' { break 'outer; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["outer", "outer"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
    }
}
