//! Structured diagnostics and report rendering.

use std::fmt::Write as _;

/// One finding from a lint rule.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule identifier (`ANOR-PANIC`, `ANOR-CODEC`, ...).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
    /// The offending construct, used for allowlist matching (usually the
    /// flagged tokens, not the whole source line).
    pub snippet: String,
    /// Whether a checked-in allowlist entry covers this finding.
    pub allowed: bool,
}

impl Diagnostic {
    pub fn new(
        rule: &'static str,
        file: &str,
        line: u32,
        message: String,
        suggestion: &str,
        snippet: String,
    ) -> Self {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message,
            suggestion: suggestion.to_string(),
            snippet,
            allowed: false,
        }
    }

    /// Human-readable one-liner (plus the suggestion on a second line).
    pub fn render(&self) -> String {
        let mark = if self.allowed { " (allowlisted)" } else { "" };
        format!(
            "{}:{} [{}]{} {}\n    help: {}",
            self.file, self.line, self.rule, mark, self.message, self.suggestion
        )
    }
}

/// Render the full machine-readable JSON report.
pub fn json_report(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 < diags.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \
             \"suggestion\": \"{}\", \"allowed\": {}}}{}",
            escape(d.rule),
            escape(&d.file),
            d.line,
            escape(&d.message),
            escape(&d.suggestion),
            d.allowed,
            comma
        );
    }
    let denied = diags.iter().filter(|d| !d.allowed).count();
    let _ = write!(
        out,
        "  ],\n  \"total\": {},\n  \"denied\": {},\n  \"allowed\": {}\n}}\n",
        diags.len(),
        denied,
        diags.len() - denied
    );
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_counts() {
        let mut d = Diagnostic::new(
            "ANOR-PANIC",
            "crates/x/src/a.rs",
            7,
            "call to `unwrap()` on a \"hot\" path".to_string(),
            "return an error",
            "x.unwrap()".to_string(),
        );
        let report = json_report(std::slice::from_ref(&d));
        assert!(report.contains("\\\"hot\\\""));
        assert!(report.contains("\"denied\": 1"));
        d.allowed = true;
        let report = json_report(&[d]);
        assert!(report.contains("\"denied\": 0"));
        assert!(report.contains("\"allowed\": 1"));
    }
}
