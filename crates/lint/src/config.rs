//! Lint configuration: rule scoping, the unit-word registry, the lock
//! order table, and the audited-exception allowlist.
//!
//! The built-in defaults encode ANOR's designated hot paths; the
//! workspace-root `anor-lint.toml` supplies the parts meant to be edited
//! in review — allowlist entries and the declared lock order. The file is
//! line-oriented (see DESIGN.md "Static Analysis"):
//!
//! ```text
//! # comment
//! lock-order registry series shared events writer
//! allow ANOR-PANIC crates/model/src/fit.rs expect("non-empty range")
//! strict-panic-file crates/foo/src/hot.rs
//! ```

use crate::diag::Diagnostic;
use std::path::Path;

/// Dimension classes for the unit-safety rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitClass {
    Watts,
    Joules,
    Seconds,
}

impl UnitClass {
    pub fn name(self) -> &'static str {
        match self {
            UnitClass::Watts => "watts",
            UnitClass::Joules => "joules",
            UnitClass::Seconds => "seconds",
        }
    }
}

/// One audited exception: a diagnostic is allowed when its rule matches
/// (or the entry says `*`), its file path ends with `path`, and the
/// flagged snippet contains `needle`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub needle: String,
}

/// One deterministic root (a "det sink"): functions here must only
/// consume deterministic inputs. `func == "*"` seeds every function in
/// the file.
#[derive(Debug, Clone)]
pub struct DetSink {
    pub path: String,
    pub func: String,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Hot-path files under the full panic-freedom rule, including the
    /// indexing check (suffix match on workspace-relative paths).
    pub strict_panic_files: Vec<String>,
    /// Files where panicking constructs are flagged but indexing is not
    /// (numeric kernels index heavily and are bounds-checked by shape).
    pub extended_panic_files: Vec<String>,
    /// Files holding wire-codec `encode`/`decode` pairs.
    pub codec_files: Vec<String>,
    /// snake_case words that classify an identifier into a unit class.
    pub unit_words: Vec<(&'static str, UnitClass)>,
    /// Method/function names treated as blocking for the lock rule.
    pub blocking_calls: Vec<String>,
    /// Declared lock acquisition order (earlier must be taken first).
    /// Optional since the lock-graph rewrite: cycle detection over the
    /// observed acquisition graph is the primary deadlock guard, and an
    /// order table (when declared) is checked on top of it.
    pub lock_order: Vec<String>,
    /// Deterministic roots for `ANOR-DETERM` (`det-sink` directives).
    pub det_sinks: Vec<DetSink>,
    /// Extra nondeterminism sources (`det-source` directives): a bare
    /// name matches any call of that name, `Qual::name` a qualified one.
    pub det_sources: Vec<String>,
    /// Path fragments where the determinism walk stops (`det-barrier`):
    /// audited observability boundaries whose internals never feed
    /// decisions (the telemetry crate records, it does not decide).
    pub det_barriers: Vec<String>,
    /// Audited exceptions.
    pub allow: Vec<AllowEntry>,
}

impl Default for Config {
    fn default() -> Self {
        let strict = [
            "crates/cluster/src/endpoint.rs",
            "crates/cluster/src/budgeter.rs",
            "crates/cluster/src/codec.rs",
            "crates/cluster/src/session.rs",
            "crates/geopm/src/agent.rs",
            "crates/geopm/src/endpoint.rs",
            "crates/geopm/src/platformio.rs",
            "crates/sim/src/sim.rs",
            "crates/telemetry/src/sink.rs",
            "crates/telemetry/src/trace.rs",
        ];
        let extended = [
            "crates/cluster/src/cli.rs",
            "crates/cluster/src/emulator.rs",
            "crates/model/src/fit.rs",
            "crates/model/src/window.rs",
            "crates/model/src/epoch_detect.rs",
            "crates/types/src/qos.rs",
            "crates/types/src/msg.rs",
            "crates/types/src/catalog.rs",
        ];
        Config {
            strict_panic_files: strict.iter().map(|s| s.to_string()).collect(),
            extended_panic_files: extended.iter().map(|s| s.to_string()).collect(),
            codec_files: vec!["crates/types/src/msg.rs".to_string()],
            unit_words: vec![
                ("watts", UnitClass::Watts),
                ("watt", UnitClass::Watts),
                ("power", UnitClass::Watts),
                ("cap", UnitClass::Watts),
                ("budget", UnitClass::Watts),
                ("headroom", UnitClass::Watts),
                ("joules", UnitClass::Joules),
                ("joule", UnitClass::Joules),
                ("energy", UnitClass::Joules),
                ("seconds", UnitClass::Seconds),
                ("second", UnitClass::Seconds),
                ("secs", UnitClass::Seconds),
                ("elapsed", UnitClass::Seconds),
                ("duration", UnitClass::Seconds),
                ("interval", UnitClass::Seconds),
                ("timestamp", UnitClass::Seconds),
            ],
            blocking_calls: [
                "send",
                "recv",
                "recv_frames",
                "recv_timeout",
                "flush_some",
                "accept",
                "connect",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            lock_order: Vec::new(),
            // The paper's headline guarantees are determinism properties:
            // byte-identical parallel grids, byte-identical chaos replay,
            // watts-conservation audits. These are the code paths that
            // carry them.
            det_sinks: [
                ("crates/sim/src/sim.rs", "step"),
                ("crates/cluster/src/budgeter.rs", "pump"),
                ("crates/cluster/src/replay.rs", "replay"),
                ("crates/cluster/src/codec.rs", "*"),
                ("crates/exec/src/lib.rs", "*"),
            ]
            .iter()
            .map(|(p, f)| DetSink {
                path: p.to_string(),
                func: f.to_string(),
            })
            .collect(),
            det_sources: Vec::new(),
            det_barriers: Vec::new(),
            allow: Vec::new(),
        }
    }
}

impl Config {
    /// Load defaults plus the workspace `anor-lint.toml` (if present).
    pub fn load(root: &Path) -> Config {
        let mut cfg = Config::default();
        let path = root.join("anor-lint.toml");
        if let Ok(text) = std::fs::read_to_string(path) {
            cfg.apply(&text);
        }
        cfg
    }

    /// Parse the line-oriented config text into `self`.
    pub fn apply(&mut self, text: &str) {
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(2, char::is_whitespace);
            let directive = parts.next().unwrap_or_default();
            let rest = parts.next().unwrap_or_default().trim();
            match directive {
                "lock-order" => {
                    self.lock_order = rest.split_whitespace().map(String::from).collect();
                }
                "allow" => {
                    let mut fields = rest.splitn(3, char::is_whitespace);
                    let (rule, path) = (fields.next(), fields.next());
                    if let (Some(rule), Some(path)) = (rule, path) {
                        self.allow.push(AllowEntry {
                            rule: rule.to_string(),
                            path: path.to_string(),
                            needle: fields.next().unwrap_or_default().trim().to_string(),
                        });
                    }
                }
                "strict-panic-file" => self.strict_panic_files.push(rest.to_string()),
                "extended-panic-file" => self.extended_panic_files.push(rest.to_string()),
                "codec-file" => self.codec_files.push(rest.to_string()),
                "blocking-call" => self.blocking_calls.push(rest.to_string()),
                "det-sink" => {
                    let mut fields = rest.split_whitespace();
                    if let Some(path) = fields.next() {
                        self.det_sinks.push(DetSink {
                            path: path.to_string(),
                            func: fields.next().unwrap_or("*").to_string(),
                        });
                    }
                }
                "det-source" => self.det_sources.push(rest.to_string()),
                "det-barrier" => self.det_barriers.push(rest.to_string()),
                _ => {} // Unknown directives are ignored for forward compat.
            }
        }
    }

    /// Does `path` fall under the strict panic-freedom scope?
    pub fn is_strict_panic(&self, path: &str) -> bool {
        self.strict_panic_files.iter().any(|f| path.ends_with(f))
    }

    /// Does `path` fall under the extended (no-indexing-check) scope?
    pub fn is_extended_panic(&self, path: &str) -> bool {
        self.extended_panic_files.iter().any(|f| path.ends_with(f))
    }

    pub fn is_codec_file(&self, path: &str) -> bool {
        self.codec_files.iter().any(|f| path.ends_with(f))
    }

    /// Classify a snake_case identifier by its last word.
    pub fn classify_ident(&self, ident: &str) -> Option<UnitClass> {
        let last = ident.rsplit('_').next().unwrap_or(ident);
        let last = last.to_ascii_lowercase();
        self.unit_words
            .iter()
            .find(|(w, _)| *w == last)
            .map(|(_, c)| *c)
    }

    /// Rank of a lock receiver in the declared order (None = undeclared).
    pub fn lock_rank(&self, receiver: &str) -> Option<usize> {
        self.lock_order.iter().position(|l| l == receiver)
    }

    /// Is `path` inside a determinism barrier (an audited observability
    /// boundary the `ANOR-DETERM` walk does not cross)?
    pub fn is_det_barrier(&self, path: &str) -> bool {
        self.det_barriers.iter().any(|b| path.contains(b.as_str()))
    }

    /// The deterministic-root functions seeded for `path` (`*` = all).
    pub fn det_sink_funcs(&self, path: &str) -> Vec<&str> {
        self.det_sinks
            .iter()
            .filter(|s| path.ends_with(&s.path))
            .map(|s| s.func.as_str())
            .collect()
    }

    /// Mark diagnostics covered by an allowlist entry.
    pub fn apply_allowlist(&self, diags: &mut [Diagnostic]) {
        for d in diags.iter_mut() {
            d.allowed = self.allow.iter().any(|a| {
                (a.rule == "*" || a.rule == d.rule)
                    && d.file.ends_with(&a.path)
                    && (a.needle.is_empty() || d.snippet.contains(&a.needle))
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_file_parses_lock_order_and_allows() {
        let mut cfg = Config::default();
        cfg.apply(
            "# header\n\
             lock-order registry shared events\n\
             allow ANOR-PANIC crates/x/src/a.rs unwrap()\n\
             allow * crates/y/src/b.rs\n",
        );
        assert_eq!(cfg.lock_order, ["registry", "shared", "events"]);
        assert_eq!(cfg.allow.len(), 2);
        assert_eq!(cfg.lock_rank("shared"), Some(1));
        assert_eq!(cfg.lock_rank("unknown"), None);

        let mut diags = vec![
            Diagnostic::new(
                "ANOR-PANIC",
                "crates/x/src/a.rs",
                1,
                "m".into(),
                "s",
                "foo.unwrap()".into(),
            ),
            Diagnostic::new(
                "ANOR-LOCK",
                "crates/y/src/b.rs",
                2,
                "m".into(),
                "s",
                "whatever".into(),
            ),
            Diagnostic::new(
                "ANOR-PANIC",
                "crates/z/src/c.rs",
                3,
                "m".into(),
                "s",
                "foo.unwrap()".into(),
            ),
        ];
        cfg.apply_allowlist(&mut diags);
        assert!(diags[0].allowed);
        assert!(diags[1].allowed);
        assert!(!diags[2].allowed);
    }

    #[test]
    fn ident_classification_uses_last_word() {
        let cfg = Config::default();
        assert_eq!(cfg.classify_ident("avg_power"), Some(UnitClass::Watts));
        assert_eq!(cfg.classify_ident("timestamp"), Some(UnitClass::Seconds));
        assert_eq!(cfg.classify_ident("energy"), Some(UnitClass::Joules));
        assert_eq!(cfg.classify_ident("power_trace"), None);
        assert_eq!(cfg.classify_ident("measured"), None);
    }
}
