//! The `anor-lint` CLI.
//!
//! ```text
//! anor-lint [--deny] [--json <path|->] [--root <dir>] [file.rs ...]
//!           [--baseline <file>] [--write-baseline <file>] [--changed]
//! ```
//!
//! With no file arguments the whole workspace is linted. `--deny` exits
//! non-zero when any non-allowlisted diagnostic remains — that is the CI
//! gate in `ci.sh`. `--json` additionally writes the machine-readable
//! report (`-` = stdout).
//!
//! ## Ratcheting a new rule in
//!
//! A new rule usually lands with pre-existing findings. Rather than
//! blocking on a big-bang cleanup, freeze the current debt and deny only
//! growth:
//!
//! ```text
//! anor-lint --write-baseline lint-baseline.txt   # freeze today's findings
//! anor-lint --deny --baseline lint-baseline.txt  # old debt passes, new fails
//! anor-lint --deny --changed                     # only files changed vs git
//! ```
//!
//! Baseline entries key on `(rule, file, snippet)` — not line numbers —
//! so unrelated edits to a file do not invalidate the baseline. Shrink
//! the file as debt is paid down; it never grows automatically.

use anor_lint::{find_root, json_report, lint_source, Config, Diagnostic};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    deny: bool,
    json: Option<String>,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    changed: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        json: None,
        root: None,
        files: Vec::new(),
        baseline: None,
        write_baseline: None,
        changed: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--json" => {
                opts.json = Some(args.next().ok_or("--json needs a path (or `-`)")?);
            }
            "--root" => {
                opts.root = Some(PathBuf::from(args.next().ok_or("--root needs a dir")?));
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?));
            }
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(
                    args.next().ok_or("--write-baseline needs a file")?,
                ));
            }
            "--changed" => opts.changed = true,
            "--help" | "-h" => {
                println!(
                    "anor-lint [--deny] [--json <path|->] [--root <dir>] [file.rs ...]\n\
                     \x20         [--baseline <file>] [--write-baseline <file>] [--changed]\n\
                     Project-invariant static analysis: ANOR-PANIC, ANOR-CODEC, ANOR-UNITS,\n\
                     ANOR-LOCK, ANOR-DETERM, ANOR-SHIM, ANOR-LINTS.\n\
                     --deny            exit 1 on any non-allowlisted finding (CI gate)\n\
                     --json            write the machine-readable report (`-` = stdout)\n\
                     --root            workspace root (default: nearest [workspace] Cargo.toml)\n\
                     --baseline        findings recorded in <file> warn instead of denying\n\
                     --write-baseline  freeze current non-allowlisted findings into <file>\n\
                     --changed         only report findings in files changed vs git HEAD"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

/// Stable identity of a finding for baseline purposes: line numbers
/// churn with every edit, `(rule, file, snippet)` does not.
fn baseline_key(d: &Diagnostic) -> String {
    format!("{}\t{}\t{}", d.rule, d.file, d.snippet)
}

/// Workspace-relative paths changed vs `HEAD`, plus untracked files —
/// the review surface of the working tree.
fn changed_files(root: &Path) -> Result<BTreeSet<String>, String> {
    let mut out = BTreeSet::new();
    for args in [
        &["diff", "--name-only", "HEAD"][..],
        &["ls-files", "--others", "--exclude-standard"][..],
    ] {
        let run = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .map_err(|e| format!("cannot run git for --changed: {e}"))?;
        if !run.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&run.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&run.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.insert(line.to_string());
            }
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("anor-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = opts.root.clone().or_else(|| find_root(&cwd)) else {
        eprintln!("anor-lint: no workspace root found (looked for [workspace] in Cargo.toml)");
        return ExitCode::from(2);
    };
    let cfg = Config::load(&root);

    let result: std::io::Result<Vec<Diagnostic>> = if opts.files.is_empty() {
        anor_lint::lint_workspace(&root, &cfg)
    } else {
        let mut diags = Vec::new();
        for f in &opts.files {
            let abs = if f.is_absolute() {
                f.clone()
            } else {
                cwd.join(f)
            };
            let rel = abs
                .strip_prefix(&root)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            match std::fs::read_to_string(&abs) {
                Ok(src) => diags.extend(lint_source(&rel, &src, &cfg)),
                Err(e) => {
                    eprintln!("anor-lint: cannot read {}: {e}", abs.display());
                    return ExitCode::from(2);
                }
            }
        }
        Ok(diags)
    };
    let mut diags = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("anor-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // `--changed`: the whole workspace is still analyzed (the call graph
    // needs every file), but only findings in touched files are surfaced.
    if opts.changed {
        let touched = match changed_files(&root) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("anor-lint: {e}");
                return ExitCode::from(2);
            }
        };
        diags.retain(|d| touched.contains(&d.file));
    }

    // `--write-baseline`: freeze the current non-allowlisted findings and
    // exit clean; the next `--baseline` run denies only what is new.
    if let Some(dest) = &opts.write_baseline {
        let keys: BTreeSet<String> = diags
            .iter()
            .filter(|d| !d.allowed)
            .map(baseline_key)
            .collect();
        let mut text = String::from(
            "# anor-lint baseline: pre-existing findings tolerated by --baseline.\n\
             # One `rule<TAB>file<TAB>snippet` per line. Shrink as debt is paid.\n",
        );
        for k in &keys {
            text.push_str(k);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(dest, text) {
            eprintln!("anor-lint: cannot write {}: {e}", dest.display());
            return ExitCode::from(2);
        }
        println!(
            "anor-lint: baseline written to {} ({} finding(s))",
            dest.display(),
            keys.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline: BTreeSet<String> = match &opts.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(String::from)
                .collect(),
            Err(e) => {
                eprintln!("anor-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => BTreeSet::new(),
    };

    // `--json -` owns stdout; the human report moves to stderr so the
    // JSON stays machine-readable.
    let json_on_stdout = opts.json.as_deref() == Some("-");
    let baselined = diags
        .iter()
        .filter(|d| !d.allowed && baseline.contains(&baseline_key(d)))
        .count();
    let denied = diags
        .iter()
        .filter(|d| !d.allowed && !baseline.contains(&baseline_key(d)))
        .count();
    let allowed = diags.len() - denied - baselined;
    let summary = format!(
        "anor-lint: {} finding(s) ({denied} denied, {allowed} allowlisted, \
         {baselined} baselined)",
        diags.len()
    );
    if json_on_stdout {
        for d in &diags {
            eprintln!("{}", d.render());
        }
        eprintln!("{summary}");
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        println!("{summary}");
    }

    if let Some(dest) = &opts.json {
        let report = json_report(&diags);
        if dest == "-" {
            print!("{report}");
        } else if let Err(e) = std::fs::write(dest, report) {
            eprintln!("anor-lint: cannot write {dest}: {e}");
            return ExitCode::from(2);
        }
    }

    if opts.deny && denied > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
