//! The `anor-lint` CLI.
//!
//! ```text
//! anor-lint [--deny] [--json <path|->] [--root <dir>] [file.rs ...]
//! ```
//!
//! With no file arguments the whole workspace is linted. `--deny` exits
//! non-zero when any non-allowlisted diagnostic remains — that is the CI
//! gate in `ci.sh`. `--json` additionally writes the machine-readable
//! report (`-` = stdout).

use anor_lint::{find_root, json_report, lint_source, Config, Diagnostic};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    deny: bool,
    json: Option<String>,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        json: None,
        root: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--json" => {
                opts.json = Some(args.next().ok_or("--json needs a path (or `-`)")?);
            }
            "--root" => {
                opts.root = Some(PathBuf::from(args.next().ok_or("--root needs a dir")?));
            }
            "--help" | "-h" => {
                println!(
                    "anor-lint [--deny] [--json <path|->] [--root <dir>] [file.rs ...]\n\
                     Project-invariant static analysis: ANOR-PANIC, ANOR-CODEC, \
                     ANOR-UNITS, ANOR-LOCK.\n\
                     --deny   exit 1 on any non-allowlisted finding (CI gate)\n\
                     --json   write the machine-readable report (`-` = stdout)\n\
                     --root   workspace root (default: nearest [workspace] Cargo.toml)"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("anor-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = opts.root.clone().or_else(|| find_root(&cwd)) else {
        eprintln!("anor-lint: no workspace root found (looked for [workspace] in Cargo.toml)");
        return ExitCode::from(2);
    };
    let cfg = Config::load(&root);

    let result: std::io::Result<Vec<Diagnostic>> = if opts.files.is_empty() {
        anor_lint::lint_workspace(&root, &cfg)
    } else {
        let mut diags = Vec::new();
        for f in &opts.files {
            let abs = if f.is_absolute() {
                f.clone()
            } else {
                cwd.join(f)
            };
            let rel = abs
                .strip_prefix(&root)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            match std::fs::read_to_string(&abs) {
                Ok(src) => diags.extend(lint_source(&rel, &src, &cfg)),
                Err(e) => {
                    eprintln!("anor-lint: cannot read {}: {e}", abs.display());
                    return ExitCode::from(2);
                }
            }
        }
        Ok(diags)
    };
    let diags = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("anor-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // `--json -` owns stdout; the human report moves to stderr so the
    // JSON stays machine-readable.
    let json_on_stdout = opts.json.as_deref() == Some("-");
    let denied = diags.iter().filter(|d| !d.allowed).count();
    let allowed = diags.len() - denied;
    let summary = format!(
        "anor-lint: {} finding(s) ({denied} denied, {allowed} allowlisted)",
        diags.len()
    );
    if json_on_stdout {
        for d in &diags {
            eprintln!("{}", d.render());
        }
        eprintln!("{summary}");
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        println!("{summary}");
    }

    if let Some(dest) = &opts.json {
        let report = json_report(&diags);
        if dest == "-" {
            print!("{report}");
        } else if let Err(e) = std::fs::write(dest, report) {
            eprintln!("anor-lint: cannot write {dest}: {e}");
            return ExitCode::from(2);
        }
    }

    if opts.deny && denied > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
