//! Per-crate symbol resolution over the parsed workspace.
//!
//! Resolution is deliberately conservative: a lint must not drown the
//! tree in false edges through common method names (`get`, `push`,
//! `send`...). A call resolves to a workspace function only when the
//! evidence is strong:
//!
//! * `qual::name(...)` — functions whose `impl` owner or defining file
//!   module matches `qual` (with `Self::` mapped to the caller's owner);
//! * `name(...)` — free functions named `name`: same file first, then
//!   same crate, then a unique workspace-wide match;
//! * `.name(...)` — methods named `name`: same file first, then same
//!   crate, then a unique workspace-wide match.
//!
//! Anything else (std, vendored crates, macros) resolves to nothing and
//! simply ends the walk on that edge. Method names that are ubiquitous
//! std vocabulary (`get`, `map`, `flush`, ...) are never resolved at all
//! — a workspace type defining `fn flush` must not capture every
//! `BufWriter::flush` in the same file.

use crate::lexer::{lex, test_mask, Tok};
use crate::parser::{self, Call, FnItem, ParsedFile};

/// Method names so common in std/core that `.name(...)` is, in
/// practice, never a call into workspace code identified by name alone.
/// Resolving them produces false edges (`writer.flush()` landing on an
/// unrelated `fn flush(&self)` in the same file), so the walk ends
/// there instead. Path calls (`Type::get`) still resolve — the
/// qualifier is the evidence.
const COMMON_METHODS: [&str; 36] = [
    "and_then",
    "as_mut",
    "as_ref",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "drain",
    "entry",
    "extend",
    "filter",
    "flush",
    "get",
    "get_mut",
    "insert",
    "into",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "lock",
    "map",
    "next",
    "pop",
    "push",
    "read",
    "remove",
    "replace",
    "take",
    "to_string",
    "try_into",
    "unwrap_or_else",
    "write",
];

/// A parsed source file plus its identity in the workspace.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Owning crate (`cluster` for `crates/cluster/src/...`, the root
    /// package name for `src/...`).
    pub krate: String,
    pub toks: Vec<Tok>,
    pub mask: Vec<bool>,
    pub parsed: ParsedFile,
}

/// Global function id: (file index, fn index within the file).
pub type FnId = (usize, usize);

/// The fully parsed workspace with its symbol index.
pub struct Workspace {
    pub files: Vec<SourceFile>,
    /// name -> every function with that bare name.
    by_name: std::collections::BTreeMap<String, Vec<FnId>>,
}

/// The crate a workspace-relative path belongs to.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((krate, _)) = rest.split_once('/') {
            return krate.to_string();
        }
    }
    "<root>".to_string()
}

impl Workspace {
    /// Lex and parse a set of `(path, source)` pairs into a workspace.
    pub fn parse(sources: &[(String, String)]) -> Workspace {
        let mut files = Vec::with_capacity(sources.len());
        for (path, src) in sources {
            let toks = lex(src);
            let mask = test_mask(&toks);
            let parsed = parser::parse(&toks, &mask);
            files.push(SourceFile {
                path: path.clone(),
                krate: crate_of(path),
                toks,
                mask,
                parsed,
            });
        }
        let mut by_name: std::collections::BTreeMap<String, Vec<FnId>> =
            std::collections::BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.parsed.fns.iter().enumerate() {
                by_name.entry(g.name.clone()).or_default().push((fi, gi));
            }
        }
        Workspace { files, by_name }
    }

    pub fn fn_item(&self, id: FnId) -> &FnItem {
        &self.files[id.0].parsed.fns[id.1]
    }

    pub fn file(&self, id: FnId) -> &SourceFile {
        &self.files[id.0]
    }

    /// `path::to::file.rs` stem (`sim` for `crates/sim/src/sim.rs`) —
    /// used to resolve module-qualified calls like `bidding::choose(...)`.
    fn file_stem(path: &str) -> &str {
        path.rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or(path)
    }

    /// All functions whose bare name is `name`.
    fn candidates(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Narrow `all` by proximity to the caller: same file, else same
    /// crate, else a unique workspace-wide candidate, else nothing.
    fn narrow(&self, all: &[FnId], caller: FnId) -> Vec<FnId> {
        let same_file: Vec<FnId> = all.iter().copied().filter(|id| id.0 == caller.0).collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let caller_crate = &self.files[caller.0].krate;
        let same_crate: Vec<FnId> = all
            .iter()
            .copied()
            .filter(|id| &self.files[id.0].krate == caller_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        if all.len() == 1 {
            return all.to_vec();
        }
        Vec::new()
    }

    /// Resolve one call made from `caller` to workspace functions.
    pub fn resolve(&self, caller: FnId, call: &Call) -> Vec<FnId> {
        match call {
            Call::Free { name, .. } => {
                let free: Vec<FnId> = self
                    .candidates(name)
                    .iter()
                    .copied()
                    .filter(|id| self.fn_item(*id).owner.is_none())
                    .collect();
                self.narrow(&free, caller)
            }
            Call::Method { name, .. } => {
                if COMMON_METHODS.contains(&name.as_str()) {
                    return Vec::new();
                }
                let methods: Vec<FnId> = self
                    .candidates(name)
                    .iter()
                    .copied()
                    .filter(|id| self.fn_item(*id).owner.is_some())
                    .collect();
                self.narrow(&methods, caller)
            }
            Call::Path { qual, name, .. } => {
                let qual = if qual == "Self" {
                    match &self.fn_item(caller).owner {
                        Some(o) => o.clone(),
                        None => return Vec::new(),
                    }
                } else {
                    qual.clone()
                };
                let matches: Vec<FnId> = self
                    .candidates(name)
                    .iter()
                    .copied()
                    .filter(|id| {
                        let item = self.fn_item(*id);
                        let file = &self.files[id.0];
                        // `Type::assoc` — impl owner matches.
                        item.owner.as_deref() == Some(qual.as_str())
                            // `module::helper` — defining file or inline
                            // module matches the qualifier.
                            || (item.owner.is_none()
                                && (Self::file_stem(&file.path) == qual
                                    || item.module.last().map(String::as_str)
                                        == Some(qual.as_str())))
                    })
                    .collect();
                // Qualified matches are already strong evidence; prefer
                // proximity only to break genuine ambiguity.
                if matches.len() > 1 {
                    self.narrow(&matches, caller)
                } else {
                    matches
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::parse(&sources)
    }

    #[test]
    fn crate_names_derive_from_paths() {
        assert_eq!(crate_of("crates/cluster/src/budgeter.rs"), "cluster");
        assert_eq!(crate_of("src/bidding.rs"), "<root>");
    }

    #[test]
    fn free_calls_prefer_same_file_then_same_crate() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn caller() { helper(); }",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let caller = (0, 1);
        let call = Call::Free {
            name: "helper".into(),
            line: 2,
        };
        assert_eq!(w.resolve(caller, &call), vec![(0, 0)]);
    }

    #[test]
    fn ambiguous_cross_crate_methods_resolve_to_nothing() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "impl A { fn get(&self) {} }"),
            ("crates/b/src/lib.rs", "impl B { fn get(&self) {} }"),
            ("crates/c/src/lib.rs", "fn caller(x: &A) { x.get(); }"),
        ]);
        let call = Call::Method {
            name: "get".into(),
            line: 1,
        };
        assert!(w.resolve((2, 0), &call).is_empty());
    }

    #[test]
    fn common_std_method_names_never_resolve() {
        // `writer.flush()` must not land on the unrelated `fn flush` in
        // the same file — but `Sink::flush` (qualified) still does.
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl Sink { fn flush(&self) {} }\n\
             fn caller(w: &mut W) { w.flush(); Sink::flush(); }",
        )]);
        let method = Call::Method {
            name: "flush".into(),
            line: 2,
        };
        assert!(w.resolve((0, 1), &method).is_empty());
        let path = Call::Path {
            qual: "Sink".into(),
            name: "flush".into(),
            line: 2,
        };
        assert_eq!(w.resolve((0, 1), &path), vec![(0, 0)]);
    }

    #[test]
    fn path_calls_match_owner_and_module() {
        let w = ws(&[
            ("crates/a/src/pool.rs", "impl Pool { fn new() {} }"),
            ("crates/a/src/bidding.rs", "fn choose() {}"),
            (
                "crates/b/src/lib.rs",
                "fn caller() { Pool::new(); bidding::choose(); }",
            ),
        ]);
        let new_call = Call::Path {
            qual: "Pool".into(),
            name: "new".into(),
            line: 1,
        };
        let choose_call = Call::Path {
            qual: "bidding".into(),
            name: "choose".into(),
            line: 1,
        };
        assert_eq!(w.resolve((2, 0), &new_call), vec![(0, 0)]);
        assert_eq!(w.resolve((2, 0), &choose_call), vec![(1, 0)]);
    }

    #[test]
    fn self_qualifier_maps_to_the_callers_owner() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl Pool { fn make() {} fn caller(&self) { Self::make(); } }",
        )]);
        let call = Call::Path {
            qual: "Self".into(),
            name: "make".into(),
            line: 1,
        };
        assert_eq!(w.resolve((0, 1), &call), vec![(0, 0)]);
    }
}
