//! A lightweight item parser on top of the lexer.
//!
//! The call-graph rules (`ANOR-DETERM`, lock-graph `ANOR-LOCK`,
//! reachability `ANOR-PANIC`) need to know *which function* a token
//! belongs to and *what it calls* — flat token walking cannot answer
//! either. This parser extracts exactly that structure and nothing more:
//! `fn` items with their body token ranges, the `impl` block (and inline
//! `mod` path) each one sits in, flattened `use` trees, and the call
//! expressions inside each body. It is resolutely not a full Rust
//! parser: generics, where-clauses, patterns and expressions are skipped
//! structurally by brace/bracket matching, and anything it cannot
//! understand it skips rather than mis-attributes.

use crate::lexer::{Tok, TokKind};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`pump`, `step`).
    pub name: String,
    /// Surrounding `impl` type (`ClusterBudgeter`) — `None` for free fns.
    pub owner: Option<String>,
    /// Inline `mod` path inside the file (e.g. `["tests"]`).
    pub module: Vec<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, exclusive of the outer braces.
    pub body: (usize, usize),
    /// Whole item (including the signature) sits in test-masked code.
    pub is_test: bool,
}

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `helper(...)` — unqualified call.
    Free { name: String, line: u32 },
    /// `Type::assoc(...)` / `module::helper(...)` — one-level qualifier
    /// (the last path segment before the called name).
    Path {
        qual: String,
        name: String,
        line: u32,
    },
    /// `.method(...)`.
    Method { name: String, line: u32 },
}

impl Call {
    pub fn name(&self) -> &str {
        match self {
            Call::Free { name, .. } | Call::Path { name, .. } | Call::Method { name, .. } => name,
        }
    }

    pub fn line(&self) -> u32 {
        match self {
            Call::Free { line, .. } | Call::Path { line, .. } | Call::Method { line, .. } => *line,
        }
    }
}

/// Parse result for one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    /// Flattened `use` paths: `use a::b::{c, d::e};` yields
    /// `["a","b","c"]` and `["a","b","d","e"]`.
    pub uses: Vec<Vec<String>>,
}

/// Scope kinds tracked through brace nesting.
#[derive(Debug)]
enum Scope {
    Mod(String),
    Impl(String),
    Fn(usize),
    Other,
}

/// Words that look like calls (`if (x)`, `match (a, b)`) but are not.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "fn"
            | "impl"
            | "dyn"
            | "where"
            | "pub"
            | "crate"
            | "super"
            | "self"
            | "Self"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "union"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "unsafe"
            | "extern"
            | "async"
            | "await"
    )
}

/// Parse one file's token stream into items.
pub fn parse(toks: &[Tok], test_mask: &[bool]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            scopes.push(Scope::Other);
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            if let Some(Scope::Fn(idx)) = scopes.last() {
                // Body end recorded when the fn scope closes.
                let idx = *idx;
                if let Some(f) = out.fns.get_mut(idx) {
                    f.body.1 = i;
                }
            }
            scopes.pop();
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod" => {
                // `mod name {` opens a module scope; `mod name;` is an
                // out-of-line module (its file is parsed separately).
                let name = toks
                    .get(i + 1)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| n.text.clone());
                if let (Some(name), Some(open)) = (name, toks.get(i + 2)) {
                    if open.is_punct('{') {
                        scopes.push(Scope::Mod(name));
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            "impl" => {
                if let Some((owner, open)) = impl_owner(toks, i) {
                    scopes.push(Scope::Impl(owner));
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "use" => {
                let end = parse_use(toks, i + 1, &mut out.uses);
                i = end;
            }
            "fn" => {
                let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                let Some(open) = body_open(toks, i + 2) else {
                    // Trait method declaration (`fn f(...);`) — no body.
                    i += 2;
                    continue;
                };
                let owner = scopes.iter().rev().find_map(|s| match s {
                    Scope::Impl(o) => Some(o.clone()),
                    _ => None,
                });
                let module = scopes
                    .iter()
                    .filter_map(|s| match s {
                        Scope::Mod(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                let idx = out.fns.len();
                out.fns.push(FnItem {
                    name: name.text.clone(),
                    owner,
                    module,
                    line: t.line,
                    body: (open + 1, usize::MAX),
                    is_test: test_mask.get(i).copied().unwrap_or(false),
                });
                scopes.push(Scope::Fn(idx));
                i = open + 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    // Unterminated bodies (malformed input) run to end of stream.
    for f in &mut out.fns {
        if f.body.1 == usize::MAX {
            f.body.1 = toks.len();
        }
    }
    out
}

/// For `impl` at `i`, find the implemented type's last path segment and
/// the index of the opening `{`. `impl<T> Foo<T> for Bar<T> { ... }`
/// yields `Bar`.
fn impl_owner(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while let Some(t) = toks.get(j) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 {
            if t.is_punct('{') {
                let owner = after_for.or(last_ident)?;
                return Some((owner, j));
            }
            if t.is_punct(';') {
                return None;
            }
            if t.is_ident("for") {
                saw_for = true;
            } else if t.is_ident("where") {
                // Type position is over; keep the current candidate.
            } else if t.kind == TokKind::Ident && !is_expr_keyword(&t.text) {
                if saw_for {
                    after_for = Some(t.text.clone());
                } else {
                    last_ident = Some(t.text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

/// Find the `{` opening a fn body, skipping the signature (parens,
/// generics, return type, where clause). Returns `None` on `;`.
fn body_open(toks: &[Tok], mut j: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut angle = 0i32;
    while let Some(t) = toks.get(j) {
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` must not decrement the generics depth.
            let is_arrow = j > 0 && toks[j - 1].is_punct('-');
            if !is_arrow && angle > 0 {
                angle -= 1;
            }
        } else if paren == 0 && angle <= 0 {
            if t.is_punct('{') {
                return Some(j);
            }
            if t.is_punct(';') {
                return None;
            }
        }
        j += 1;
    }
    None
}

/// Flatten the `use` tree starting after the `use` keyword into `out`.
/// Returns the index one past the terminating `;`.
fn parse_use(toks: &[Tok], mut j: usize, out: &mut Vec<Vec<String>>) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    let mut stack: Vec<usize> = Vec::new(); // prefix lengths at `{`
                                            // After a `{...}` group closes, the remaining prefix has already been
                                            // emitted through the group's leaves — only a fresh ident re-arms it.
    let mut just_closed = false;
    while let Some(t) = toks.get(j) {
        if t.is_punct(';') {
            if !prefix.is_empty() && !just_closed {
                out.push(prefix.clone());
            }
            return j + 1;
        }
        if t.is_punct('{') {
            stack.push(prefix.len());
            j += 1;
            continue;
        }
        if t.is_punct('}') {
            if !just_closed && prefix.len() > stack.last().copied().unwrap_or(0) {
                out.push(prefix.clone());
            }
            let base = stack.pop().unwrap_or(0);
            prefix.truncate(base);
            just_closed = true;
            j += 1;
            continue;
        }
        if t.is_punct(',') {
            let base = stack.last().copied().unwrap_or(0);
            if !just_closed && prefix.len() > base {
                out.push(prefix.clone());
            }
            prefix.truncate(base);
            just_closed = false;
            j += 1;
            continue;
        }
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            prefix.push(t.text.clone());
            just_closed = false;
        } else if t.is_ident("as") {
            // `use a::b as c;` — skip the rename, keep the real path.
            j += 2;
            continue;
        }
        j += 1;
    }
    j
}

/// Extract the call expressions inside `toks[range]`.
///
/// Recognized shapes: `name(`, `qual::name(`, `.name(`. Macro calls
/// (`name!(`), definitions (`fn name(`) and control keywords are
/// excluded. Tuple-struct constructors look like free calls and are
/// tolerated — they resolve to no function and fall out naturally.
pub fn calls_in(toks: &[Tok], range: (usize, usize)) -> Vec<Call> {
    let mut out = Vec::new();
    let (start, end) = range;
    let end = end.min(toks.len());
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || is_expr_keyword(&t.text) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        // `fn name(` is a definition; `name!(` handled below via `!`.
        if prev.is_some_and(|p| p.is_ident("fn")) {
            continue;
        }
        match prev {
            Some(p) if p.is_punct('.') => out.push(Call::Method {
                name: t.text.clone(),
                line: t.line,
            }),
            Some(p) if p.is_punct(':') => {
                // `qual::name(` — the lexer emits `:` `:` as two puncts.
                let qual = i
                    .checked_sub(3)
                    .map(|q| &toks[q])
                    .filter(|q| q.kind == TokKind::Ident && i >= 2 && toks[i - 2].is_punct(':'))
                    .map(|q| q.text.clone());
                match qual {
                    Some(qual) => out.push(Call::Path {
                        qual,
                        name: t.text.clone(),
                        line: t.line,
                    }),
                    None => out.push(Call::Free {
                        name: t.text.clone(),
                        line: t.line,
                    }),
                }
            }
            Some(p) if p.is_punct('!') => {} // macro invocation
            _ => out.push(Call::Free {
                name: t.text.clone(),
                line: t.line,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_mask};

    fn parse_src(src: &str) -> (Vec<Tok>, ParsedFile) {
        let toks = lex(src);
        let mask = test_mask(&toks);
        let parsed = parse(&toks, &mask);
        (toks, parsed)
    }

    #[test]
    fn fns_get_owners_and_modules() {
        let src = "impl Budgeter { fn pump(&mut self) { self.ingest(); } }\n\
                   fn free_helper() {}\n\
                   mod inner { fn nested() {} }\n\
                   impl Display for Watts { fn fmt(&self) -> usize { 0 } }";
        let (_, p) = parse_src(src);
        let names: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            [
                ("pump", Some("Budgeter")),
                ("free_helper", None),
                ("nested", None),
                ("fmt", Some("Watts")),
            ]
        );
        assert_eq!(p.fns[2].module, ["inner"]);
    }

    #[test]
    fn bodies_span_the_right_tokens() {
        let src = "fn a() { x(); }\nfn b() { y(); }";
        let (toks, p) = parse_src(src);
        let calls_a = calls_in(&toks, p.fns[0].body);
        let calls_b = calls_in(&toks, p.fns[1].body);
        assert_eq!(calls_a.len(), 1);
        assert_eq!(calls_a[0].name(), "x");
        assert_eq!(calls_b[0].name(), "y");
    }

    #[test]
    fn call_shapes_are_classified() {
        let src = "fn f() { helper(); Type::assoc(); obj.method(); vec![1]; assert!(x); \
                   if (a) {} }";
        let (toks, p) = parse_src(src);
        let calls = calls_in(&toks, p.fns[0].body);
        assert_eq!(
            calls,
            [
                Call::Free {
                    name: "helper".into(),
                    line: 1
                },
                Call::Path {
                    qual: "Type".into(),
                    name: "assoc".into(),
                    line: 1
                },
                Call::Method {
                    name: "method".into(),
                    line: 1
                },
            ]
        );
    }

    #[test]
    fn use_trees_flatten() {
        let src = "use a::b::{c, d::e, f as g};\nuse std::collections::HashMap;";
        let (_, p) = parse_src(src);
        assert_eq!(
            p.uses,
            [
                vec!["a", "b", "c"],
                vec!["a", "b", "d", "e"],
                vec!["a", "b", "f"],
                vec!["std", "collections", "HashMap"],
            ]
            .map(|v: Vec<&str>| v.into_iter().map(String::from).collect::<Vec<String>>())
        );
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests { fn t() {} }";
        let (_, p) = parse_src(src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        assert_eq!(p.fns[1].module, ["tests"]);
    }

    #[test]
    fn generic_signatures_and_where_clauses_parse() {
        let src = "impl<T: Clone> Pool<T> {\n\
                   fn run<F>(&self, f: F) -> Vec<T> where F: Fn() -> T { f() }\n\
                   }";
        let (toks, p) = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Pool"));
        let calls = calls_in(&toks, p.fns[0].body);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name(), "f");
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "fn f() { unclosed",
            "use ;;{}::",
            "}}}}",
            "fn f<'a>(x: &'a str) {",
        ] {
            let (_, _p) = parse_src(src);
        }
    }
}
