//! Rule `ANOR-PANIC`: the control loop must not be able to panic.
//!
//! The cluster→job→GEOPM feedback loop only keeps jobs honest while the
//! budgeter keeps running (the paper's misclassification recovery assumes
//! exactly that), so the designated hot-path modules must degrade instead
//! of panicking. This rule flags, outside test code:
//!
//! * `.unwrap()` / `.expect(...)` calls,
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` invocations,
//! * (strict files only) indexing with a non-literal index — `xs[i]`
//!   panics out-of-bounds where `xs.get(i)` forces a decision.
//!
//! `debug_assert!` is deliberately not flagged (compiled out in release),
//! and plain `assert!` is left to review — invariant checks at startup
//! are legitimate.
//!
//! Since the call-graph rewrite the rule also checks panic
//! *reachability*: a helper in a non-hot-path file that `unwrap()`s is
//! flagged when a hot-path function can reach it through the workspace
//! call graph, so the panic-freedom guarantee no longer stops at file
//! boundaries. Reachability checks the keyword constructs only
//! (`unwrap`/`expect`/`panic!`-family) — indexing stays a strict-file
//! concern, because shape-invariant indexing is idiomatic everywhere
//! else.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::symbols::{FnId, Workspace};
use std::collections::{BTreeMap, BTreeSet};

pub const RULE: &str = "ANOR-PANIC";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn check(path: &str, toks: &[Tok], test_mask: &[bool], cfg: &Config) -> Vec<Diagnostic> {
    let strict = cfg.is_strict_panic(path);
    if !strict && !cfg.is_extended_panic(path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        match t.kind {
            TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let method_call = i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if method_call {
                    out.push(Diagnostic::new(
                        RULE,
                        path,
                        t.line,
                        format!("call to `{}()` on a designated hot path", t.text),
                        "return a degraded-mode error (`Result`/`Option`) so the control \
                         loop keeps running; audited exceptions go in anor-lint.toml",
                        format!(".{}(", t.text),
                    ));
                }
            }
            TokKind::Ident if PANIC_MACROS.contains(&t.text.as_str()) => {
                let is_macro = toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    // `macro_rules! panic` or a path segment would not be
                    // preceded by `.`; a method named e.g. `todo` would.
                    && !(i > 0 && toks[i - 1].is_punct('.'));
                if is_macro {
                    out.push(Diagnostic::new(
                        RULE,
                        path,
                        t.line,
                        format!("`{}!` on a designated hot path", t.text),
                        "degrade and keep the budget loop alive: log via the tracer's \
                         postmortem dump and return an error instead of aborting",
                        format!("{}!", t.text),
                    ));
                }
            }
            TokKind::Punct if strict && t.text == "[" => {
                if let Some(d) = check_index(path, toks, i) {
                    out.push(d);
                }
            }
            _ => {}
        }
    }
    out
}

/// One keyword-panic construct inside a function body.
#[derive(Debug, Clone)]
struct PanicSite {
    line: u32,
    /// `.unwrap(`, `panic!`, ... — used in the snippet for allowlisting.
    construct: String,
}

/// Keyword panic sites (`unwrap`/`expect` method calls, `panic!`-family
/// macros) in `toks[range]`, skipping test-masked tokens.
fn keyword_sites(toks: &[Tok], mask: &[bool], range: (usize, usize)) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let (start, end) = range;
    let end = end.min(toks.len());
    for i in start..end {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(PanicSite {
                line: t.line,
                construct: format!(".{}(", t.text),
            });
        } else if PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && !(i > 0 && toks[i - 1].is_punct('.'))
        {
            out.push(PanicSite {
                line: t.line,
                construct: format!("{}!", t.text),
            });
        }
    }
    out
}

/// Call-graph panic reachability: walk from every function defined in a
/// panic-scoped (strict or extended) file and flag panic constructs in
/// reachable functions *outside* the scoped files — those sites are not
/// covered by the per-file scan and previously hid one hop away from
/// the pump.
pub fn check_workspace(ws: &Workspace, graph: &CallGraph, cfg: &Config) -> Vec<Diagnostic> {
    let in_scope =
        |path: &str| -> bool { cfg.is_strict_panic(path) || cfg.is_extended_panic(path) };

    // Panic sites per out-of-scope function.
    let mut sites: BTreeMap<FnId, Vec<PanicSite>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if in_scope(&file.path) {
            continue;
        }
        for (gi, item) in file.parsed.fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            let s = keyword_sites(&file.toks, &file.mask, item.body);
            if !s.is_empty() {
                sites.insert((fi, gi), s);
            }
        }
    }

    let mut out = Vec::new();
    let mut reported: BTreeSet<(FnId, u32)> = BTreeSet::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !in_scope(&file.path) {
            continue;
        }
        for (gi, item) in file.parsed.fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            let root = (fi, gi);
            let pred = graph.reach(root, |_| false);
            for (&id, _) in pred.iter() {
                let Some(fn_sites) = sites.get(&id) else {
                    continue;
                };
                let chain = CallGraph::chain(ws, &pred, id);
                let target = ws.fn_item(id);
                for s in fn_sites {
                    if !reported.insert((id, s.line)) {
                        continue;
                    }
                    out.push(Diagnostic::new(
                        RULE,
                        &ws.file(id).path,
                        s.line,
                        format!(
                            "`{}` in `{}` is reachable from hot-path `{}` \
                             (call chain: {chain})",
                            s.construct, target.name, item.name
                        ),
                        "the control loop can reach this panic: return a degraded-mode \
                         error up the chain, or audit it in anor-lint.toml",
                        format!("{} via {chain}", s.construct),
                    ));
                }
            }
        }
    }
    out
}

/// Flag `expr[i]` where `i` starts with an identifier: a runtime index
/// that panics when out of bounds. Literal indices (`xs[0]` guarded by a
/// length check) and range slicing (`xs[..n]`) are not flagged.
fn check_index(path: &str, toks: &[Tok], i: usize) -> Option<Diagnostic> {
    // The `[` must follow an expression: identifier, `)`, or `]`.
    let prev = toks.get(i.checked_sub(1)?)?;
    let is_expr_pos = prev.kind == TokKind::Ident || prev.is_punct(')') || prev.is_punct(']');
    if !is_expr_pos {
        return None;
    }
    // Exclude attribute heads `#[...]` — the previous token rule already
    // does, but also exclude `ident![...]` macro calls like `vec![...]`.
    if i >= 2 && toks[i - 1].kind == TokKind::Ident && toks[i - 2].is_punct('!') {
        return None;
    }
    let first = toks.get(i + 1)?;
    if first.kind != TokKind::Ident {
        return None;
    }
    // `xs[ident]`, `xs[ident + 1]`, `xs[self.idx]` all flag; keywords that
    // start non-index expressions do not appear here in practice.
    let receiver = if prev.kind == TokKind::Ident {
        prev.text.clone()
    } else {
        "<expr>".to_string()
    };
    Some(Diagnostic::new(
        RULE,
        path,
        first.line,
        format!(
            "indexing `{receiver}[{}...]` with a runtime value on a hot path",
            first.text
        ),
        "use `.get(...)`/`.get_mut(...)` and handle the miss; a wrong index \
         must not take down the budgeter",
        format!("{receiver}[{}", first.text),
    ))
}
