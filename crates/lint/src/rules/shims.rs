//! Rule `ANOR-SHIM`: deprecated compatibility shims must be pure
//! delegation.
//!
//! The builder-API migration keeps the old constructors alive for one
//! release behind `#[deprecated]`. The deal that makes that safe is
//! structural: a shim's body must be a *single delegation expression*
//! into the replacement API — no statements, no control flow, no logic
//! that could drift from the real implementation during the deprecation
//! window. This rule enforces the deal: any `#[deprecated]` function
//! whose body contains statements (`;`, `let`) or control flow
//! (`if`/`match`/`for`/`while`/`loop`/`return`) is flagged, as is a
//! deprecated function that does not call anything at all (a shim that
//! re-implements instead of delegating usually grows one of those
//! first). Audited exceptions go through the `allow ANOR-SHIM ...`
//! list in `anor-lint.toml`.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

pub const RULE: &str = "ANOR-SHIM";

pub fn check(path: &str, toks: &[Tok], test_mask: &[bool], _cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_attr_open(toks, i) || !toks[i + 2].is_ident("deprecated") {
            i += 1;
            continue;
        }
        let Some(attr_end) = close_bracket(toks, i + 1) else {
            break;
        };
        // The attribute may decorate a struct, trait method decl, etc.;
        // only `fn` items with bodies are in scope.
        let Some((fn_idx, name)) = fn_after(toks, attr_end + 1) else {
            i = attr_end + 1;
            continue;
        };
        if test_mask.get(fn_idx).copied().unwrap_or(false) {
            // Test-local shims (fixtures, harness helpers) are not part
            // of the public deprecation surface.
            i = attr_end + 1;
            continue;
        }
        let Some((body_start, body_end)) = block_after(toks, fn_idx) else {
            i = attr_end + 1;
            continue;
        };
        check_body(path, &name, &toks[body_start..body_end], &mut out);
        i = body_end;
    }
    out
}

fn check_body(path: &str, name: &str, body: &[Tok], out: &mut Vec<Diagnostic>) {
    let line = body.first().map(|t| t.line).unwrap_or(0);
    let offender = body.iter().find(|t| {
        t.is_punct(';')
            || (t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "let" | "if" | "match" | "for" | "while" | "loop" | "return" | "unsafe"
                ))
    });
    if let Some(tok) = offender {
        out.push(Diagnostic::new(
            RULE,
            path,
            tok.line,
            format!(
                "deprecated shim `{name}` contains `{}`: shims must be a single \
                 delegation expression",
                tok.text
            ),
            "make the body one expression that forwards to the replacement API \
             (e.g. `Self::builder(..).connect()`); logic in a shim drifts from the \
             real implementation during the deprecation window",
            format!("fn {name}"),
        ));
        return;
    }
    if !body.iter().any(|t| t.is_punct('(')) {
        out.push(Diagnostic::new(
            RULE,
            path,
            line,
            format!("deprecated shim `{name}` delegates to nothing"),
            "a deprecated function must forward to its replacement, not carry its \
             own implementation",
            format!("fn {name}"),
        ));
    }
}

/// Is `toks[i..]` the start of an attribute, `# [ ident`?
fn is_attr_open(toks: &[Tok], i: usize) -> bool {
    toks[i].is_punct('#')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
        && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
}

/// Index of the `]` matching the `[` at `open`.
fn close_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Find the `fn` this attribute decorates, skipping further attributes
/// and modifiers (`pub`, `pub(crate)`, `const`, `async`, `extern`).
/// Returns the `fn` token index and the function name.
fn fn_after(toks: &[Tok], mut i: usize) -> Option<(usize, String)> {
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#') && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            i = close_bracket(toks, i + 1)? + 1;
            continue;
        }
        if t.is_ident("fn") {
            let name = toks
                .get(i + 1)
                .filter(|n| n.kind == TokKind::Ident)
                .map(|n| n.text.clone())?;
            return Some((i, name));
        }
        let modifier = matches!(
            t.text.as_str(),
            "pub" | "crate" | "super" | "in" | "const" | "async" | "unsafe" | "extern"
        ) || t.is_punct('(')
            || t.is_punct(')')
            || t.kind == TokKind::Str; // `extern "C"`
        if !modifier {
            return None; // Decorates a non-fn item.
        }
        i += 1;
    }
    None
}

/// The `{ ... }` block following position `i` (range strictly inside the
/// braces), bailing at a `;` first (trait method declarations).
fn block_after(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    while j < toks.len() && !toks[j].is_punct('{') {
        if toks[j].is_punct(';') {
            return None;
        }
        j += 1;
    }
    let start = j + 1;
    let mut depth = 1i32;
    let mut k = start;
    while k < toks.len() {
        if toks[k].is_punct('{') {
            depth += 1;
        } else if toks[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((start, k));
            }
        }
        k += 1;
    }
    None
}
