//! Rule `ANOR-LOCK`: lock discipline across blocking boundaries.
//!
//! Two failure modes this rule targets:
//!
//! * A `parking_lot` guard held across a blocking send/recv/accept call
//!   stalls every other thread touching that lock for as long as the
//!   peer takes — in the budgeter that turns one slow job endpooint into
//!   a cluster-wide control-loop stall.
//! * Nested acquisition in an order inconsistent with the declared
//!   lock-order table (`lock-order` in anor-lint.toml) risks deadlock.
//!
//! Detection is token-level: a guard is a `let`-binding whose initializer
//! calls zero-argument `.lock()`, `.read()` or `.write()` (zero-argument
//! distinguishes lock APIs from `io::Read::read(&mut buf)`). The guard
//! lives until its binding scope closes or an explicit `drop(guard)`.
//!
//! Since the call-graph rewrite the deadlock check is a *whole-workspace
//! lock-acquisition graph*: an edge `A -> B` is recorded whenever lock
//! `B` is acquired — directly, or transitively through any reachable
//! callee — while a guard on `A` is live. Any cycle in that graph (a
//! strongly connected component, self-loops included) is a deadlock
//! risk and is flagged; this replaces the hand-maintained `lock-order`
//! leaf list, which had drifted to five entries of prose. Lock nodes
//! are scoped per crate (`telemetry/registry`), so unrelated locks that
//! happen to share a field name do not alias. A declared `lock-order`
//! (when present) is still enforced on top, inside each function.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::parser::calls_in;
use crate::symbols::{FnId, Workspace};
use std::collections::{BTreeMap, BTreeSet};

pub const RULE: &str = "ANOR-LOCK";

const ACQUIRE: [&str; 3] = ["lock", "read", "write"];

#[derive(Debug)]
struct Guard {
    name: String,
    receiver: String,
    depth: i32,
    line: u32,
    rank: Option<usize>,
}

pub fn check(path: &str, toks: &[Tok], test_mask: &[bool], cfg: &Config) -> Vec<Diagnostic> {
    // Only files that can hold a lock are interesting.
    let uses_locks = toks
        .iter()
        .any(|t| t.is_ident("parking_lot") || t.is_ident("Mutex") || t.is_ident("RwLock"));
    if !uses_locks {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            continue;
        }
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }

        // Explicit `drop(guard)` releases.
        if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(name) = toks.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                guards.retain(|g| g.name != name.text);
            }
            continue;
        }

        // Zero-argument `.lock()` / `.read()` / `.write()` acquisition.
        let is_acquire = ACQUIRE.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
        if is_acquire {
            let receiver = toks
                .get(i.wrapping_sub(2))
                .filter(|r| r.kind == TokKind::Ident)
                .map(|r| r.text.clone())
                .unwrap_or_else(|| "<expr>".to_string());
            let rank = cfg.lock_rank(&receiver);
            // Lock-order check against every live guard.
            if let Some(new_rank) = rank {
                for held in guards.iter().filter(|g| g.rank.is_some()) {
                    let held_rank = held.rank.unwrap_or(usize::MAX);
                    if held_rank > new_rank {
                        out.push(Diagnostic::new(
                            RULE,
                            path,
                            t.line,
                            format!(
                                "lock `{receiver}` acquired while holding `{}` (line {}) \
                                 violates the declared lock order",
                                held.receiver, held.line
                            ),
                            "acquire locks in the order declared by `lock-order` in \
                             anor-lint.toml, or release the held guard first",
                            format!("{}.{}()", receiver, t.text),
                        ));
                    }
                }
            }
            // Was this a `let` binding? Scan back to the statement start.
            if let Some(name) = binding_name(toks, i) {
                guards.push(Guard {
                    name,
                    receiver,
                    depth,
                    line: t.line,
                    rank,
                });
            }
            continue;
        }

        // Blocking call while a guard is live.
        let is_call = cfg.blocking_calls.iter().any(|b| t.is_ident(b))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if is_call && !guards.is_empty() {
            // `drop` patterns already handled; report against the
            // earliest-held guard for a stable message.
            if let Some(g) = guards.first() {
                out.push(Diagnostic::new(
                    RULE,
                    path,
                    t.line,
                    format!(
                        "blocking call `{}()` while holding lock guard `{}` \
                         (acquired line {})",
                        t.text, g.name, g.line
                    ),
                    "scope the guard so it drops before blocking I/O (or call \
                     `drop(guard)` explicitly); a stalled peer must not stall the lock",
                    format!("{}( while {}", t.text, g.name),
                ));
            }
        }
    }
    out
}

/// A lock identity: `(crate, receiver)`.
type LockNode = (String, String);

/// Lock behaviour of one function.
#[derive(Debug, Default)]
struct LockFacts {
    /// Receivers this function acquires directly.
    acquires: BTreeSet<String>,
    /// `(held, acquired, line)` — direct nested acquisition.
    nested: Vec<(String, String, u32)>,
    /// `(held, call-token-index, line)` — calls made under a live guard.
    held_calls: Vec<(String, usize, u32)>,
}

/// Walk one function body collecting lock facts (same guard model as the
/// per-file check: zero-argument `.lock()/.read()/.write()`, guards die
/// at scope end or `drop(guard)`).
fn lock_facts(toks: &[Tok], range: (usize, usize)) -> LockFacts {
    let mut facts = LockFacts::default();
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    let (start, end) = range;
    let end = end.min(toks.len());
    for i in start..end {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(name) = toks.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                guards.retain(|g| g.name != name.text);
            }
            continue;
        }
        let is_acquire = ACQUIRE.contains(&t.text.as_str())
            && i > start
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
        if is_acquire {
            // `self.faults.lock()` and `copy.faults.lock()` are different
            // lock instances: when the receiver chain is rooted at a
            // local (not `self`), keep the root in the node name so a
            // fork/clone pattern does not read as a self-cycle. Chains
            // rooted at `self` (`self.inner.recsink`) collapse to the
            // field name alone.
            let receiver = match toks.get(i.wrapping_sub(2)) {
                Some(r) if r.kind == TokKind::Ident => {
                    let mut j = i - 2;
                    while j >= 2 && toks[j - 1].is_punct('.') && toks[j - 2].kind == TokKind::Ident
                    {
                        j -= 2;
                    }
                    let root = &toks[j];
                    if j == i - 2 || root.is_ident("self") {
                        r.text.clone()
                    } else {
                        format!("{}.{}", root.text, r.text)
                    }
                }
                _ => "<expr>".to_string(),
            };
            for held in &guards {
                facts
                    .nested
                    .push((held.receiver.clone(), receiver.clone(), t.line));
            }
            facts.acquires.insert(receiver.clone());
            if let Some(name) = binding_name(toks, i) {
                guards.push(Guard {
                    name,
                    receiver,
                    depth,
                    line: t.line,
                    rank: None,
                });
            }
            continue;
        }
        // Any other call made while a guard is live: a transitive
        // acquisition inside the callee still happens under the guard.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) && !guards.is_empty() {
            for held in &guards {
                facts.held_calls.push((held.receiver.clone(), i, t.line));
            }
        }
    }
    facts
}

/// Whole-workspace lock-graph cycle detection.
pub fn check_workspace(ws: &Workspace, graph: &CallGraph, _cfg: &Config) -> Vec<Diagnostic> {
    // Per-function lock facts (tests excluded).
    let mut facts: BTreeMap<FnId, LockFacts> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (gi, item) in file.parsed.fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            let f = lock_facts(&file.toks, item.body);
            if !f.acquires.is_empty() || !f.held_calls.is_empty() {
                facts.insert((fi, gi), f);
            }
        }
    }

    // Fixpoint: the set of locks each function may acquire, directly or
    // through any callee.
    let mut may: BTreeMap<FnId, BTreeSet<LockNode>> = BTreeMap::new();
    for (&id, f) in &facts {
        let krate = ws.file(id).krate.clone();
        may.insert(
            id,
            f.acquires
                .iter()
                .map(|r| (krate.clone(), r.clone()))
                .collect(),
        );
    }
    loop {
        let mut changed = false;
        let ids: Vec<FnId> = ws
            .files
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| (0..f.parsed.fns.len()).map(move |gi| (fi, gi)))
            .collect();
        for id in ids {
            let mut acc: BTreeSet<LockNode> = may.get(&id).cloned().unwrap_or_default();
            let before = acc.len();
            for e in graph.edges_from(id) {
                if let Some(t) = may.get(&e.to) {
                    acc.extend(t.iter().cloned());
                }
            }
            if acc.len() != before || (!acc.is_empty() && !may.contains_key(&id)) {
                may.insert(id, acc);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // The acquisition graph: held -> acquired, with a representative
    // site per edge (first observed, in file order).
    let mut edges: BTreeMap<LockNode, BTreeMap<LockNode, (String, u32)>> = BTreeMap::new();
    let mut add_edge = |from: LockNode, to: LockNode, file: &str, line: u32| {
        edges
            .entry(from)
            .or_default()
            .entry(to)
            .or_insert_with(|| (file.to_string(), line));
    };
    for (&id, f) in &facts {
        let file = ws.file(id);
        for (held, acq, line) in &f.nested {
            add_edge(
                (file.krate.clone(), held.clone()),
                (file.krate.clone(), acq.clone()),
                &file.path,
                *line,
            );
        }
        for (held, tok_idx, line) in &f.held_calls {
            for call in calls_in(&file.toks, (*tok_idx, *tok_idx + 1)) {
                for target in ws.resolve(id, &call) {
                    if let Some(locks) = may.get(&target) {
                        for node in locks {
                            add_edge(
                                (file.krate.clone(), held.clone()),
                                node.clone(),
                                &file.path,
                                *line,
                            );
                        }
                    }
                }
            }
        }
    }

    // Cycles = non-trivial strongly connected components (self-loops
    // included). Tarjan over the (tiny) lock graph.
    let sccs = tarjan(&edges);
    let mut out = Vec::new();
    for scc in sccs {
        let self_loop =
            scc.len() == 1 && edges.get(&scc[0]).is_some_and(|m| m.contains_key(&scc[0]));
        if scc.len() < 2 && !self_loop {
            continue;
        }
        // Representative sites: every intra-SCC edge, sorted.
        let in_scc: BTreeSet<&LockNode> = scc.iter().collect();
        let mut sites: Vec<String> = Vec::new();
        let mut first: Option<(String, u32)> = None;
        for (from, tos) in &edges {
            if !in_scc.contains(from) {
                continue;
            }
            for (to, (file, line)) in tos {
                if in_scc.contains(to) {
                    sites.push(format!(
                        "{}/{} -> {}/{} at {file}:{line}",
                        from.0, from.1, to.0, to.1
                    ));
                    if first.is_none() {
                        first = Some((file.clone(), *line));
                    }
                }
            }
        }
        let Some((file, line)) = first else { continue };
        let names: Vec<String> = scc.iter().map(|(k, r)| format!("{k}/{r}")).collect();
        out.push(Diagnostic::new(
            RULE,
            &file,
            line,
            format!(
                "lock acquisition cycle through {{{}}}: two threads taking these \
                 locks in different orders can deadlock ({})",
                names.join(", "),
                sites.join("; ")
            ),
            "break the cycle: release the outer guard before the inner \
             acquisition, or collapse the locks into one",
            format!("lock-cycle {}", names.join(" ")),
        ));
    }
    out
}

/// Tarjan's strongly-connected components over the lock graph, returning
/// each SCC as a sorted node list (deterministic output order).
fn tarjan(edges: &BTreeMap<LockNode, BTreeMap<LockNode, (String, u32)>>) -> Vec<Vec<LockNode>> {
    // Collect every node (sources and sinks).
    let mut nodes: BTreeSet<LockNode> = BTreeSet::new();
    for (from, tos) in edges {
        nodes.insert(from.clone());
        for to in tos.keys() {
            nodes.insert(to.clone());
        }
    }
    struct State<'a> {
        edges: &'a BTreeMap<LockNode, BTreeMap<LockNode, (String, u32)>>,
        index: BTreeMap<LockNode, usize>,
        low: BTreeMap<LockNode, usize>,
        on_stack: BTreeSet<LockNode>,
        stack: Vec<LockNode>,
        next: usize,
        sccs: Vec<Vec<LockNode>>,
    }
    fn strongconnect(s: &mut State, v: &LockNode) {
        s.index.insert(v.clone(), s.next);
        s.low.insert(v.clone(), s.next);
        s.next += 1;
        s.stack.push(v.clone());
        s.on_stack.insert(v.clone());
        let succs: Vec<LockNode> = s
            .edges
            .get(v)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default();
        for w in succs {
            if !s.index.contains_key(&w) {
                strongconnect(s, &w);
                let lw = s.low.get(&w).copied().unwrap_or(0);
                let lv = s.low.get(v).copied().unwrap_or(0);
                s.low.insert(v.clone(), lv.min(lw));
            } else if s.on_stack.contains(&w) {
                let iw = s.index.get(&w).copied().unwrap_or(0);
                let lv = s.low.get(v).copied().unwrap_or(0);
                s.low.insert(v.clone(), lv.min(iw));
            }
        }
        if s.low.get(v) == s.index.get(v) {
            let mut scc = Vec::new();
            while let Some(w) = s.stack.pop() {
                s.on_stack.remove(&w);
                let done = w == *v;
                scc.push(w);
                if done {
                    break;
                }
            }
            scc.sort();
            s.sccs.push(scc);
        }
    }
    let mut s = State {
        edges,
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    for n in &nodes {
        if !s.index.contains_key(n) {
            strongconnect(&mut s, n);
        }
    }
    s.sccs.sort();
    s.sccs
}

/// If the acquisition at token `i` is the initializer of a `let` binding
/// in the same statement, return the bound name.
fn binding_name(toks: &[Tok], i: usize) -> Option<String> {
    // Walk back to the start of the statement.
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    // Expect `let [mut] name [: ty] = ...` from the statement start.
    if !toks.get(j)?.is_ident("let") {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k)?.is_ident("mut") {
        k += 1;
    }
    let name = toks.get(k).filter(|t| t.kind == TokKind::Ident)?;
    Some(name.text.clone())
}
