//! Rule `ANOR-LOCK`: lock discipline across blocking boundaries.
//!
//! Two failure modes this rule targets:
//!
//! * A `parking_lot` guard held across a blocking send/recv/accept call
//!   stalls every other thread touching that lock for as long as the
//!   peer takes — in the budgeter that turns one slow job endpooint into
//!   a cluster-wide control-loop stall.
//! * Nested acquisition in an order inconsistent with the declared
//!   lock-order table (`lock-order` in anor-lint.toml) risks deadlock.
//!
//! Detection is token-level: a guard is a `let`-binding whose initializer
//! calls zero-argument `.lock()`, `.read()` or `.write()` (zero-argument
//! distinguishes lock APIs from `io::Read::read(&mut buf)`). The guard
//! lives until its binding scope closes or an explicit `drop(guard)`.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

pub const RULE: &str = "ANOR-LOCK";

const ACQUIRE: [&str; 3] = ["lock", "read", "write"];

#[derive(Debug)]
struct Guard {
    name: String,
    receiver: String,
    depth: i32,
    line: u32,
    rank: Option<usize>,
}

pub fn check(path: &str, toks: &[Tok], test_mask: &[bool], cfg: &Config) -> Vec<Diagnostic> {
    // Only files that can hold a lock are interesting.
    let uses_locks = toks
        .iter()
        .any(|t| t.is_ident("parking_lot") || t.is_ident("Mutex") || t.is_ident("RwLock"));
    if !uses_locks {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            continue;
        }
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }

        // Explicit `drop(guard)` releases.
        if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(name) = toks.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                guards.retain(|g| g.name != name.text);
            }
            continue;
        }

        // Zero-argument `.lock()` / `.read()` / `.write()` acquisition.
        let is_acquire = ACQUIRE.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
        if is_acquire {
            let receiver = toks
                .get(i.wrapping_sub(2))
                .filter(|r| r.kind == TokKind::Ident)
                .map(|r| r.text.clone())
                .unwrap_or_else(|| "<expr>".to_string());
            let rank = cfg.lock_rank(&receiver);
            // Lock-order check against every live guard.
            if let Some(new_rank) = rank {
                for held in guards.iter().filter(|g| g.rank.is_some()) {
                    let held_rank = held.rank.unwrap_or(usize::MAX);
                    if held_rank > new_rank {
                        out.push(Diagnostic::new(
                            RULE,
                            path,
                            t.line,
                            format!(
                                "lock `{receiver}` acquired while holding `{}` (line {}) \
                                 violates the declared lock order",
                                held.receiver, held.line
                            ),
                            "acquire locks in the order declared by `lock-order` in \
                             anor-lint.toml, or release the held guard first",
                            format!("{}.{}()", receiver, t.text),
                        ));
                    }
                }
            }
            // Was this a `let` binding? Scan back to the statement start.
            if let Some(name) = binding_name(toks, i) {
                guards.push(Guard {
                    name,
                    receiver,
                    depth,
                    line: t.line,
                    rank,
                });
            }
            continue;
        }

        // Blocking call while a guard is live.
        let is_call = cfg.blocking_calls.iter().any(|b| t.is_ident(b))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if is_call && !guards.is_empty() {
            // `drop` patterns already handled; report against the
            // earliest-held guard for a stable message.
            if let Some(g) = guards.first() {
                out.push(Diagnostic::new(
                    RULE,
                    path,
                    t.line,
                    format!(
                        "blocking call `{}()` while holding lock guard `{}` \
                         (acquired line {})",
                        t.text, g.name, g.line
                    ),
                    "scope the guard so it drops before blocking I/O (or call \
                     `drop(guard)` explicitly); a stalled peer must not stall the lock",
                    format!("{}( while {}", t.text, g.name),
                ));
            }
        }
    }
    out
}

/// If the acquisition at token `i` is the initializer of a `let` binding
/// in the same statement, return the bound name.
fn binding_name(toks: &[Tok], i: usize) -> Option<String> {
    // Walk back to the start of the statement.
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    // Expect `let [mut] name [: ty] = ...` from the statement start.
    if !toks.get(j)?.is_ident("let") {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k)?.is_ident("mut") {
        k += 1;
    }
    let name = toks.get(k).filter(|t| t.kind == TokKind::Ident)?;
    Some(name.text.clone())
}
