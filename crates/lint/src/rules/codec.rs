//! Rule `ANOR-CODEC`: wire-protocol structural invariants.
//!
//! The v1/v2 codec carries its version in per-message tags rather than a
//! connection handshake, so three properties are load-bearing:
//!
//! * decode tags are unique within each direction enum (a duplicated tag
//!   silently shadows a message kind),
//! * every tag an `encode` emits has a matching `decode` arm (a message
//!   that cannot round-trip is a protocol hole),
//! * every decode arm that reads payload bytes guards the read with a
//!   length check (`need(...)`/`remaining()` or a helper that does), and
//!   the decode match ends in a wildcard arm rejecting unknown tags.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

pub const RULE: &str = "ANOR-CODEC";

pub fn check(path: &str, toks: &[Tok], test_mask: &[bool], cfg: &Config) -> Vec<Diagnostic> {
    if !cfg.is_codec_file(path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let safe_helpers = length_checked_fns(toks);
    // Walk `impl <Name> { ... }` blocks and pair up encode/decode.
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("impl") && !test_mask.get(i).copied().unwrap_or(false) {
            let name = toks
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_else(|| "<impl>".to_string());
            if let Some((body_start, body_end)) = block_after(toks, i) {
                check_impl(
                    path,
                    &name,
                    &toks[body_start..body_end],
                    &safe_helpers,
                    &mut out,
                );
                i = body_end;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn check_impl(
    path: &str,
    enum_name: &str,
    body: &[Tok],
    safe_helpers: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let encode = fn_block(body, "encode");
    let decode = fn_block(body, "decode");
    let (Some(encode), Some(decode)) = (encode, decode) else {
        return; // Not a codec impl.
    };

    // Encode tags: literal arguments to `put_u8`.
    let mut encode_tags: Vec<(u64, u32)> = Vec::new();
    for (j, t) in encode.iter().enumerate() {
        if t.is_ident("put_u8") && encode.get(j + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(num) = encode.get(j + 2).filter(|n| n.kind == TokKind::Num) {
                if let Ok(v) = parse_int(&num.text) {
                    encode_tags.push((v, num.line));
                }
            }
        }
    }

    // Decode tags: numeric match-arm patterns `N =>`.
    let mut decode_tags: Vec<(u64, u32, usize)> = Vec::new();
    let mut has_wildcard = false;
    for (j, t) in decode.iter().enumerate() {
        let arrow = decode.get(j + 1).is_some_and(|n| n.is_punct('='))
            && decode.get(j + 2).is_some_and(|n| n.is_punct('>'));
        if !arrow {
            continue;
        }
        match t.kind {
            TokKind::Num => {
                if let Ok(v) = parse_int(&t.text) {
                    decode_tags.push((v, t.line, j));
                }
            }
            // `t => Err(...)` — a wildcard/binding arm. `_` lexes as an
            // identifier too.
            TokKind::Ident if !t.is_ident("Ok") && !t.is_ident("Err") => has_wildcard = true,
            _ => {}
        }
    }

    // Tag uniqueness, both directions of the table.
    for (idx, (tag, line, _)) in decode_tags.iter().enumerate() {
        if decode_tags[..idx].iter().any(|(t, _, _)| t == tag) {
            out.push(Diagnostic::new(
                RULE,
                path,
                *line,
                format!("duplicate decode tag {tag} in `{enum_name}::decode`"),
                "every wire tag must map to exactly one message shape; pick a fresh \
                 tag for new codec versions",
                format!("{tag} =>"),
            ));
        }
    }
    for (idx, (tag, line)) in encode_tags.iter().enumerate() {
        if encode_tags[..idx].iter().any(|(t, _)| t == tag) {
            out.push(Diagnostic::new(
                RULE,
                path,
                *line,
                format!("duplicate encode tag {tag} in `{enum_name}::encode`"),
                "two variants encoding the same tag cannot be told apart on decode",
                format!("put_u8({tag})"),
            ));
        }
    }

    // Every encoded tag decodes.
    for (tag, line) in &encode_tags {
        if !decode_tags.iter().any(|(t, _, _)| t == tag) {
            out.push(Diagnostic::new(
                RULE,
                path,
                *line,
                format!("`{enum_name}` encodes tag {tag} but `decode` has no arm for it"),
                "add a decode arm (old tags must stay decodable across codec versions)",
                format!("put_u8({tag})"),
            ));
        }
    }

    // Each decode arm that reads payload bytes must be length-guarded.
    for (arm_idx, (tag, line, start)) in decode_tags.iter().enumerate() {
        let end = decode_tags
            .get(arm_idx + 1)
            .map(|(_, _, s)| *s)
            .unwrap_or(decode.len());
        let arm = &decode[*start..end];
        let reads = arm
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.starts_with("get_"));
        if !reads {
            continue;
        }
        let guarded = arm.iter().any(|t| {
            t.is_ident("need")
                || t.is_ident("remaining")
                || safe_helpers.iter().any(|h| t.is_ident(h))
        });
        if !guarded {
            out.push(Diagnostic::new(
                RULE,
                path,
                *line,
                format!(
                    "decode arm for tag {tag} in `{enum_name}::decode` reads payload \
                     bytes without a length guard"
                ),
                "call `need(&body, n, ..)?` (or check `remaining()`) before reading; a \
                 truncated frame must produce a protocol error, not a panic",
                format!("{tag} =>"),
            ));
        }
    }

    if !has_wildcard {
        out.push(Diagnostic::new(
            RULE,
            path,
            decode.first().map(|t| t.line).unwrap_or(0),
            format!("`{enum_name}::decode` has no wildcard arm rejecting unknown tags"),
            "end the tag match with `t => Err(...)` so future tags degrade cleanly",
            "match".to_string(),
        ));
    }
}

/// Names of free functions whose bodies contain a length check — calling
/// one of these counts as guarding the read (`get_string`, `get_curve`).
fn length_checked_fns(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                if name.text != "encode" && name.text != "decode" {
                    if let Some((s, e)) = block_after(toks, i) {
                        if toks[s..e]
                            .iter()
                            .any(|t| t.is_ident("need") || t.is_ident("remaining"))
                        {
                            out.push(name.text.clone());
                        }
                        i = e;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Token range of the body of `fn <name>` inside `body` (exclusive of the
/// outer braces).
fn fn_block<'a>(body: &'a [Tok], name: &str) -> Option<&'a [Tok]> {
    let mut i = 0usize;
    while i < body.len() {
        if body[i].is_ident("fn") && body.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            let (s, e) = block_after(body, i)?;
            return Some(&body[s..e]);
        }
        i += 1;
    }
    None
}

/// Find the `{ ... }` block that follows position `i`, returning the
/// token range strictly inside the braces.
fn block_after(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    while j < toks.len() && !toks[j].is_punct('{') {
        // Give up if we run into a `;` first (e.g. a trait method decl).
        if toks[j].is_punct(';') {
            return None;
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let start = j + 1;
    let mut depth = 1i32;
    let mut k = start;
    while k < toks.len() {
        if toks[k].is_punct('{') {
            depth += 1;
        } else if toks[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((start, k));
            }
        }
        k += 1;
    }
    None
}

/// Parse the leading digit run of a numeric literal (`5`, `5u8`, `1_0`).
fn parse_int(text: &str) -> Result<u64, std::num::ParseIntError> {
    let digits: String = text
        .chars()
        .filter(|c| *c != '_')
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse()
}
