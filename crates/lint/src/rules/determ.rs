//! Rule `ANOR-DETERM`: deterministic roots must not reach
//! nondeterminism sources.
//!
//! The framework's headline guarantees — byte-identical parallel
//! experiment grids, byte-identical chaos replay, watts-conservation
//! audits — are determinism properties of specific code paths: the
//! simulator tick, the budgeter pump phases, replay, the codec, and
//! ExecPool task bodies. A single `HashMap` iteration or `Instant::now`
//! smuggled into one of them only surfaces (if at all) as a golden-test
//! or `anor-replay --verify` failure long after the commit. This rule
//! shifts that left: it seeds *deterministic roots* ("det sinks") from
//! config, walks the workspace call graph, and flags every reachable
//! call into a nondeterminism source:
//!
//! * `HashMap`/`HashSet` iteration (`.iter()`, `.keys()`, `.values()`,
//!   `.drain()`, `.retain()`, `for _ in map`) — iteration order is
//!   seeded per process;
//! * wall-clock reads (`Instant::now`, `SystemTime::now`);
//! * thread identity (`thread::current`) and machine shape
//!   (`available_parallelism`);
//! * `RandomState` hashing in keyed aggregation;
//! * anything declared via `det-source` in `anor-lint.toml`.
//!
//! The walk stops at `det-barrier` files (audited observability
//! boundaries: telemetry records, it never decides) and audited
//! exceptions go through the same `allow` list as every other rule.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::symbols::{FnId, Workspace};
use std::collections::{BTreeMap, BTreeSet};

pub const RULE: &str = "ANOR-DETERM";

/// Builtin qualified sources (`Qual::name` call shapes).
const QUAL_SOURCES: [(&str, &str, &str); 4] = [
    ("Instant", "now", "reads the monotonic clock"),
    ("SystemTime", "now", "reads the wall clock"),
    ("thread", "current", "depends on thread identity"),
    (
        "available_parallelism",
        "available_parallelism",
        "depends on machine shape",
    ),
];

/// HashMap/HashSet methods whose visit order is the hasher's.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
    "into_keys",
    "into_values",
];

/// One nondeterminism source site inside a function body.
#[derive(Debug, Clone)]
struct Site {
    line: u32,
    /// What was called (goes into the snippet for allowlisting).
    what: String,
    /// Why it is nondeterministic.
    why: String,
}

pub fn check_workspace(ws: &Workspace, graph: &CallGraph, cfg: &Config) -> Vec<Diagnostic> {
    // Per-function nondeterminism sites, computed lazily per file.
    let mut sites: BTreeMap<FnId, Vec<Site>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let hashed = hash_typed_names(&file.toks);
        for (gi, item) in file.parsed.fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            let s = scan_body(&file.toks, item.body, &hashed, cfg);
            if !s.is_empty() {
                sites.insert((fi, gi), s);
            }
        }
    }

    // Deterministic roots, in file order.
    let mut roots: Vec<FnId> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let funcs = cfg.det_sink_funcs(&file.path);
        if funcs.is_empty() {
            continue;
        }
        for (gi, item) in file.parsed.fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            if funcs.iter().any(|f| *f == "*" || *f == item.name) {
                roots.push((fi, gi));
            }
        }
    }

    let mut out = Vec::new();
    let mut reported: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    for root in roots {
        let pred = graph.reach(root, |id| cfg.is_det_barrier(&ws.file(id).path));
        for (&id, _) in pred.iter() {
            // Sites inside a barrier file are the barrier's own business.
            if cfg.is_det_barrier(&ws.file(id).path) {
                continue;
            }
            let Some(fn_sites) = sites.get(&id) else {
                continue;
            };
            let chain = CallGraph::chain(ws, &pred, id);
            let root_item = ws.fn_item(root);
            for s in fn_sites {
                if !reported.insert((id.0, s.line, s.what.clone())) {
                    continue;
                }
                let message = if id == root {
                    format!(
                        "`{}` in deterministic root `{}` {}",
                        s.what, root_item.name, s.why
                    )
                } else {
                    format!(
                        "`{}` {} and is reachable from deterministic root `{}` \
                         (call chain: {chain})",
                        s.what, s.why, root_item.name
                    )
                };
                out.push(Diagnostic::new(
                    RULE,
                    &ws.file(id).path,
                    s.line,
                    message,
                    "recorded/pooled paths must be replayable bit-for-bit: use a \
                     BTreeMap/sorted iteration, the virtual clock, or seeded state; \
                     audited observability-only uses go in anor-lint.toml",
                    format!("{} via {chain}", s.what),
                ));
            }
        }
    }
    out
}

/// Names declared (or initialized) as `HashMap`/`HashSet` anywhere in the
/// file: `jobs: HashMap<...>`, `let m = HashMap::new()`, `m: &mut
/// HashSet<...>`. A per-file set is deliberately coarse — a field shares
/// its name across methods — and errs toward catching iteration.
fn hash_typed_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk left over `: & mut` / `= ` to the declared name.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is_punct('&') || p.is_ident("mut") || p.is_punct(':') || p.is_punct('=') {
                j -= 1;
                continue;
            }
            break;
        }
        if j == i {
            continue; // bare mention (use-tree, turbofish) — not a binding
        }
        if let Some(name) = toks.get(j.wrapping_sub(1)) {
            if name.kind == TokKind::Ident && !name.is_ident("let") && !name.is_ident("mut") {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

/// Scan one function body for nondeterminism sources.
fn scan_body(
    toks: &[Tok],
    range: (usize, usize),
    hashed: &BTreeSet<String>,
    cfg: &Config,
) -> Vec<Site> {
    let mut out = Vec::new();
    let (start, end) = range;
    let end = end.min(toks.len());
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `RandomState` anywhere in a det path is hasher-seeded state.
        if t.text == "RandomState" {
            out.push(Site {
                line: t.line,
                what: "RandomState".into(),
                why: "seeds hashing per process".into(),
            });
            continue;
        }
        let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !called {
            // `for _ in map { ... }` / `for _ in &map { ... }` — whole-map
            // iteration without a method call.
            if hashed.contains(&t.text)
                && toks.get(i + 1).is_some_and(|n| n.is_punct('{'))
                && is_for_in_receiver(toks, start, i)
            {
                out.push(Site {
                    line: t.line,
                    what: format!("for _ in {}", t.text),
                    why: "iterates a HashMap/HashSet in hasher order".into(),
                });
            }
            continue;
        }
        // Qualified builtin sources: `Instant::now(` etc.
        let qual = qual_before(toks, i);
        for (q, name, why) in QUAL_SOURCES {
            let hit = if q == name {
                t.text == name // bare: `available_parallelism(`
            } else {
                t.text == name && qual.as_deref() == Some(q)
            };
            if hit {
                let what = if q == name {
                    name.to_string()
                } else {
                    format!("{q}::{name}")
                };
                out.push(Site {
                    line: t.line,
                    what,
                    why: why.to_string(),
                });
            }
        }
        // Config-declared extra sources.
        for src in &cfg.det_sources {
            let hit = match src.split_once("::") {
                Some((q, name)) => t.text == name && qual.as_deref() == Some(q),
                None => t.text == *src,
            };
            if hit {
                out.push(Site {
                    line: t.line,
                    what: src.clone(),
                    why: "is a declared nondeterminism source (det-source)".into(),
                });
            }
        }
        // Hash-collection iteration: `map.keys()`, `self.map.drain()`, ...
        if ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && hashed.contains(&toks[i - 2].text)
        {
            out.push(Site {
                line: t.line,
                what: format!("{}.{}()", toks[i - 2].text, t.text),
                why: "iterates a HashMap/HashSet in hasher order".into(),
            });
        }
    }
    out
}

/// The path qualifier immediately before a call name: `Qual::name`.
fn qual_before(toks: &[Tok], i: usize) -> Option<String> {
    if i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].kind == TokKind::Ident
    {
        Some(toks[i - 3].text.clone())
    } else {
        None
    }
}

/// Is the identifier at `i` the receiver of a `for _ in [&][mut]` loop?
/// Handles receiver chains (`for k in self.map {`) by scanning left over
/// `ident.`-prefixes, then `&`/`mut`, to the `in` keyword.
fn is_for_in_receiver(toks: &[Tok], start: usize, i: usize) -> bool {
    let mut j = i;
    while j >= start + 2 && toks[j - 1].is_punct('.') && toks[j - 2].kind == TokKind::Ident {
        j -= 2;
    }
    while j > start {
        let p = &toks[j - 1];
        if p.is_punct('&') || p.is_ident("mut") {
            j -= 1;
            continue;
        }
        return p.is_ident("in");
    }
    false
}
