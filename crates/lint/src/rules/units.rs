//! Rule `ANOR-UNITS`: watts, joules and seconds must not be added.
//!
//! The quadratic runtime model `T(P) = A·P² + B·P + C` and the budget
//! arithmetic around it mix all three dimensions constantly; the newtypes
//! in `anor-types` make cross-unit addition a type error, but raw-`f64`
//! code (model internals, telemetry values, wire fields after `.value()`)
//! has no such guard. This rule classifies identifiers by the unit-word
//! registry (last snake_case word: `avg_power` → watts, `timestamp` →
//! seconds, `energy` → joules) and flags `+`, `-`, `+=`, `-=` between
//! identifiers of *different* classes. Multiplication and division are
//! dimensionally meaningful (`W × s = J`) and never flagged.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

pub const RULE: &str = "ANOR-UNITS";

pub fn check(path: &str, toks: &[Tok], _test_mask: &[bool], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "+" && t.text != "-") {
            continue;
        }
        // Unary context: `(-x`, `= -x`, `, -x`, `return -x` — the left
        // neighbour must be an expression end for this to be binary.
        let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
            continue;
        };
        let left_is_expr = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
            || prev.is_punct(')')
            || prev.kind == TokKind::Num;
        if !left_is_expr {
            continue;
        }
        // `->`, `+=`/`-=` handling: for compound assignment the right
        // operand starts after the `=`.
        let mut rhs_at = i + 1;
        if toks.get(i + 1).is_some_and(|n| n.is_punct('=')) {
            rhs_at = i + 2;
        }
        if toks.get(i + 1).is_some_and(|n| n.is_punct('>')) {
            continue; // `->` return-type arrow
        }

        let Some(left) = operand_left(toks, i) else {
            continue;
        };
        let Some(right) = operand_right(toks, rhs_at) else {
            continue;
        };
        let (Some(lc), Some(rc)) = (cfg.classify_ident(&left), cfg.classify_ident(&right)) else {
            continue;
        };
        if lc != rc {
            out.push(Diagnostic::new(
                RULE,
                path,
                t.line,
                format!(
                    "`{left}` ({}) {} `{right}` ({}) mixes physical units",
                    lc.name(),
                    if t.text == "+" { "+" } else { "-" },
                    rc.name()
                ),
                "additive arithmetic requires matching dimensions; convert first \
                 (W × s = J, J / s = W) or use the unit newtypes from anor-types",
                format!("{left} {} {right}", t.text),
            ));
        }
    }
    out
}

/// The base identifier of the operand ending just before token `i`.
/// Recognizes `ident`, `ident.value()`, `ident.0`, and `recv.field` forms
/// (classifying the final field).
fn operand_left(toks: &[Tok], i: usize) -> Option<String> {
    let p = i.checked_sub(1)?;
    let t = toks.get(p)?;
    match t.kind {
        TokKind::Ident => Some(t.text.clone()),
        // `base.value()` / `base.sum()` — walk back over `( )` to the
        // method name, then past `.` to the base.
        TokKind::Punct if t.is_punct(')') => {
            if p >= 4
                && toks[p - 1].is_punct('(')
                && toks[p - 2].kind == TokKind::Ident
                && toks[p - 3].is_punct('.')
                && toks[p - 4].kind == TokKind::Ident
            {
                Some(toks[p - 4].text.clone())
            } else {
                None
            }
        }
        // `base.0` tuple access on a newtype.
        TokKind::Num if p >= 2 && toks[p - 1].is_punct('.') => toks
            .get(p - 2)
            .filter(|b| b.kind == TokKind::Ident)
            .map(|b| b.text.clone()),
        _ => None,
    }
}

/// The base identifier of the operand starting at token `j`: `ident`
/// possibly followed by `.value()`/`.0` (which do not change the class).
/// Walks over a leading receiver chain (`self.avg_power` → `avg_power`).
fn operand_right(toks: &[Tok], j: usize) -> Option<String> {
    let mut idents: Vec<String> = Vec::new();
    let mut k = j;
    loop {
        let t = toks.get(k)?;
        if t.kind != TokKind::Ident {
            return None;
        }
        idents.push(t.text.clone());
        k += 1;
        if toks.get(k).is_some_and(|n| n.is_punct('.'))
            && toks.get(k + 1).is_some_and(|n| n.kind == TokKind::Ident)
        {
            k += 1;
            continue;
        }
        break;
    }
    // `.value()` keeps the base's class; classify the field before it.
    let mut last = idents.pop()?;
    if last == "value" {
        last = idents.pop()?;
    }
    if is_keyword(&last) {
        return None;
    }
    Some(last)
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "as"
            | "in"
            | "if"
            | "else"
            | "match"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "continue"
            | "impl"
            | "dyn"
            | "where"
            | "fn"
    )
}
