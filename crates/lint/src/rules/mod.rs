//! The rule families. Per-file rules are pure functions over one file's
//! token stream plus the engine [`Config`]; workspace rules additionally
//! see the parsed [`crate::symbols::Workspace`] and the
//! [`crate::callgraph::CallGraph`] built over it. The engine runs all of
//! them and merges diagnostics.

pub mod codec;
pub mod determ;
pub mod locks;
pub mod panic_free;
pub mod shims;
pub mod units;

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::symbols::Workspace;

/// Run every per-file rule over one file's tokens.
pub fn run_all(path: &str, toks: &[Tok], test_mask: &[bool], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(panic_free::check(path, toks, test_mask, cfg));
    out.extend(codec::check(path, toks, test_mask, cfg));
    out.extend(units::check(path, toks, test_mask, cfg));
    out.extend(locks::check(path, toks, test_mask, cfg));
    out.extend(shims::check(path, toks, test_mask, cfg));
    out
}

/// Run every workspace (call-graph) rule.
pub fn run_workspace(ws: &Workspace, graph: &CallGraph, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(determ::check_workspace(ws, graph, cfg));
    out.extend(panic_free::check_workspace(ws, graph, cfg));
    out.extend(locks::check_workspace(ws, graph, cfg));
    out
}
