//! The five rule families. Each rule is a pure function over one file's
//! token stream plus the engine [`Config`]; the engine runs all of them
//! and merges diagnostics.

pub mod codec;
pub mod locks;
pub mod panic_free;
pub mod shims;
pub mod units;

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::Tok;

/// Run every rule over one file's tokens.
pub fn run_all(path: &str, toks: &[Tok], test_mask: &[bool], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(panic_free::check(path, toks, test_mask, cfg));
    out.extend(codec::check(path, toks, test_mask, cfg));
    out.extend(units::check(path, toks, test_mask, cfg));
    out.extend(locks::check(path, toks, test_mask, cfg));
    out.extend(shims::check(path, toks, test_mask, cfg));
    out
}
