//! The intra-workspace call graph and reachability walks.
//!
//! Built once per lint run from the parsed [`Workspace`]: each function's
//! body is scanned for call expressions, each call is resolved through
//! the symbol table, and the result is a forward adjacency list over
//! [`FnId`]s. The call-graph rules walk it breadth-first from their roots
//! (deterministic roots for `ANOR-DETERM`, hot-path functions for
//! reachability `ANOR-PANIC`) and report the full call chain in every
//! diagnostic, so a finding two hops from the pump reads as
//! `pump -> helper -> offender` rather than a bare file:line.

use crate::parser::calls_in;
use crate::symbols::{FnId, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    pub to: FnId,
    /// Line of the call site in the caller's file.
    pub line: u32,
}

/// Forward adjacency over every function in the workspace.
pub struct CallGraph {
    edges: BTreeMap<FnId, Vec<Edge>>,
}

impl CallGraph {
    /// Resolve every call in every (non-test) function body.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut edges: BTreeMap<FnId, Vec<Edge>> = BTreeMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (gi, item) in file.parsed.fns.iter().enumerate() {
                if item.is_test {
                    continue;
                }
                let id = (fi, gi);
                let mut out: Vec<Edge> = Vec::new();
                let mut seen: BTreeSet<FnId> = BTreeSet::new();
                for call in calls_in(&file.toks, item.body) {
                    for target in ws.resolve(id, &call) {
                        if target != id && seen.insert(target) {
                            out.push(Edge {
                                to: target,
                                line: call.line(),
                            });
                        }
                    }
                }
                edges.insert(id, out);
            }
        }
        CallGraph { edges }
    }

    pub fn edges_from(&self, id: FnId) -> &[Edge] {
        self.edges.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Breadth-first walk from `root`. Returns, for every function
    /// reached (root included), the predecessor on a shortest call path
    /// and the call-site line on the predecessor's side. Functions for
    /// which `stop` returns true are not expanded (their own callees
    /// stay unexplored), but are still reported as reached.
    pub fn reach<F: Fn(FnId) -> bool>(
        &self,
        root: FnId,
        stop: F,
    ) -> BTreeMap<FnId, Option<(FnId, u32)>> {
        let mut pred: BTreeMap<FnId, Option<(FnId, u32)>> = BTreeMap::new();
        let mut queue = VecDeque::new();
        pred.insert(root, None);
        queue.push_back(root);
        while let Some(cur) = queue.pop_front() {
            if stop(cur) && cur != root {
                continue;
            }
            for e in self.edges_from(cur) {
                if let std::collections::btree_map::Entry::Vacant(v) = pred.entry(e.to) {
                    v.insert(Some((cur, e.line)));
                    queue.push_back(e.to);
                }
            }
        }
        pred
    }

    /// Render the call chain root -> ... -> `target` from a predecessor
    /// map as `pump -> redistribute -> helper`.
    pub fn chain(
        ws: &Workspace,
        pred: &BTreeMap<FnId, Option<(FnId, u32)>>,
        target: FnId,
    ) -> String {
        let mut names = vec![ws.fn_item(target).name.clone()];
        let mut cur = target;
        while let Some(Some((p, _))) = pred.get(&cur) {
            names.push(ws.fn_item(*p).name.clone());
            cur = *p;
        }
        names.reverse();
        names.join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::parse(&sources)
    }

    #[test]
    fn edges_cross_files_and_crates() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn root() { mid(); }\nfn mid() { deep::leaf(); }",
            ),
            ("crates/b/src/deep.rs", "fn leaf() {}"),
        ]);
        let g = CallGraph::build(&w);
        let pred = g.reach((0, 0), |_| false);
        assert!(pred.contains_key(&(1, 0)), "leaf reached two hops away");
        assert_eq!(CallGraph::chain(&w, &pred, (1, 0)), "root -> mid -> leaf");
    }

    #[test]
    fn test_functions_contribute_no_edges() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn leaf() {}\n#[cfg(test)]\nmod tests { fn t() { leaf(); } }",
        )]);
        let g = CallGraph::build(&w);
        assert!(g.edges_from((0, 1)).is_empty());
    }

    #[test]
    fn stop_predicate_prunes_the_walk() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn root() { barrier(); }\nfn barrier() { hidden(); }\nfn hidden() {}",
        )]);
        let g = CallGraph::build(&w);
        let pred = g.reach((0, 0), |id| id == (0, 1));
        assert!(pred.contains_key(&(0, 1)), "barrier itself is reached");
        assert!(!pred.contains_key(&(0, 2)), "nothing beyond the barrier");
    }

    #[test]
    fn recursion_terminates() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { a(); b(); }",
        )]);
        let g = CallGraph::build(&w);
        let pred = g.reach((0, 0), |_| false);
        assert_eq!(pred.len(), 2);
    }
}
