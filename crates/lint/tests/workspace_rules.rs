//! Fixture tests for the call-graph (workspace) rules: ANOR-DETERM
//! determinism reachability, ANOR-LOCK cycle detection, and ANOR-PANIC
//! panic reachability. Fixtures are linted as miniature workspaces under
//! virtual paths so crate attribution and the symbol table engage.

use anor_lint::{lint_sources, Config, Diagnostic};

fn ws(cfg_text: &str, files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let mut cfg = Config::default();
    cfg.apply(cfg_text);
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    lint_sources(&sources, &cfg)
}

fn rule_count(diags: &[Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn determ_bad_fixture_flags_clock_and_hash_iteration() {
    let diags = ws(
        "det-sink crates/x/src/pool.rs run\n",
        &[(
            "crates/x/src/pool.rs",
            include_str!("fixtures/determ_bad.rs"),
        )],
    );
    // Instant::now + `self.jobs.iter()` in the root, `jobs.values()` one
    // hop away in `helper`.
    assert_eq!(rule_count(&diags, "ANOR-DETERM"), 3, "{diags:#?}");
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("Instant::now")));
    assert!(msgs.iter().any(|m| m.contains("jobs.iter()")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("jobs.values()") && m.contains("run -> helper")));
}

#[test]
fn determ_good_fixture_is_clean() {
    let diags = ws(
        "det-sink crates/x/src/pool.rs run\n",
        &[(
            "crates/x/src/pool.rs",
            include_str!("fixtures/determ_good.rs"),
        )],
    );
    assert_eq!(rule_count(&diags, "ANOR-DETERM"), 0, "{diags:#?}");
}

#[test]
fn determ_walk_stops_at_barrier_files() {
    let diags = ws(
        "det-sink crates/x/src/pool.rs run\n\
         det-barrier crates/x/src/telemetry.rs\n",
        &[
            (
                "crates/x/src/pool.rs",
                "pub fn run() -> f64 { observe() }\n",
            ),
            (
                "crates/x/src/telemetry.rs",
                "pub fn observe() -> f64 { let t = Instant::now(); t.elapsed().as_secs_f64() }\n",
            ),
        ],
    );
    assert_eq!(rule_count(&diags, "ANOR-DETERM"), 0, "{diags:#?}");
}

#[test]
fn lock_cycle_bad_fixture_is_a_cycle() {
    let diags = ws(
        "",
        &[(
            "crates/x/src/pair.rs",
            include_str!("fixtures/lock_cycle_bad.rs"),
        )],
    );
    assert_eq!(rule_count(&diags, "ANOR-LOCK"), 1, "{diags:#?}");
    let d = diags.iter().find(|d| d.rule == "ANOR-LOCK").unwrap();
    assert!(d.message.contains("cycle"), "{d:#?}");
    assert!(d.message.contains("x/alpha"), "{d:#?}");
    assert!(d.message.contains("x/beta"), "{d:#?}");
}

#[test]
fn lock_cycle_good_fixture_is_clean() {
    let diags = ws(
        "",
        &[(
            "crates/x/src/pair.rs",
            include_str!("fixtures/lock_cycle_good.rs"),
        )],
    );
    assert_eq!(rule_count(&diags, "ANOR-LOCK"), 0, "{diags:#?}");
}

#[test]
fn panic_reachability_crosses_file_boundaries() {
    let diags = ws(
        "strict-panic-file crates/x/src/hot.rs\n",
        &[
            (
                "crates/x/src/hot.rs",
                include_str!("fixtures/panic_reach_hot.rs"),
            ),
            (
                "crates/x/src/util.rs",
                include_str!("fixtures/panic_reach_util.rs"),
            ),
        ],
    );
    assert_eq!(rule_count(&diags, "ANOR-PANIC"), 1, "{diags:#?}");
    let d = &diags[0];
    assert_eq!(d.file, "crates/x/src/util.rs");
    assert!(
        d.message.contains("reachable from hot-path `pump`"),
        "{d:#?}"
    );
    assert!(d.message.contains("pump -> poke"), "{d:#?}");
}

#[test]
fn panic_reachability_sites_can_be_allowlisted_by_chain() {
    let diags = ws(
        "strict-panic-file crates/x/src/hot.rs\n\
         allow ANOR-PANIC crates/x/src/util.rs .unwrap( via pump -> poke\n",
        &[
            (
                "crates/x/src/hot.rs",
                include_str!("fixtures/panic_reach_hot.rs"),
            ),
            (
                "crates/x/src/util.rs",
                include_str!("fixtures/panic_reach_util.rs"),
            ),
        ],
    );
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert!(diags[0].allowed, "{diags:#?}");
}
