//! Self-check: `anor-lint --deny` must pass on the repository's own
//! source tree. Any finding outside the audited allowlist in
//! `anor-lint.toml` fails this test — the same gate ci.sh applies.

use anor_lint::{lint_workspace, Config};
use std::path::Path;

#[test]
fn workspace_lints_clean_under_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg = Config::load(&root);
    let diags = lint_workspace(&root, &cfg).expect("workspace sources readable");
    let denied: Vec<_> = diags.iter().filter(|d| !d.allowed).collect();
    assert!(
        denied.is_empty(),
        "anor-lint --deny would fail on {} finding(s):\n{:#?}",
        denied.len(),
        denied
    );
}

#[test]
fn determinism_walk_engages_and_repo_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg = Config::load(&root);
    let diags = lint_workspace(&root, &cfg).expect("workspace sources readable");
    // Every determinism finding must be an audited allowlist entry;
    // anything else is a regression on a replay-bearing path.
    let denied: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "ANOR-DETERM" && !d.allowed)
        .collect();
    assert!(
        denied.is_empty(),
        "unaudited ANOR-DETERM findings: {denied:#?}"
    );
    // Sanity: the det roots really seed the walk (the audited clock
    // reads in the budgeter/sim/exec stopwatches are visible to it). A
    // zero here would mean the rule silently stopped engaging.
    let seen = diags.iter().filter(|d| d.rule == "ANOR-DETERM").count();
    assert!(
        seen > 0,
        "ANOR-DETERM found nothing at all — roots not seeding?"
    );
}
