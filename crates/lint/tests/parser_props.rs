//! Property tests for the analysis front end: the lexer, the item
//! parser, and the full engine must never panic, whatever bytes they are
//! fed — a broken source file must produce diagnostics (or nothing), not
//! take down the lint run. Two generators cover the space from different
//! sides: raw character soup, and shuffled Rust-ish token fragments that
//! keep the parser's scope tracking under pressure.

use anor_lint::{lexer, lint_sources, parser, Config};
use proptest::collection::vec;
use proptest::prelude::*;

/// Fragments biased toward the constructs the parser actually tracks:
/// item keywords, braces, call shapes, half-finished strings and chars.
const FRAGMENTS: [&str; 40] = [
    "fn",
    "impl",
    "mod",
    "use",
    "pub",
    "struct",
    "trait",
    "for",
    "in",
    "let",
    "match",
    "if",
    "unsafe",
    "self",
    "Self",
    "{",
    "}",
    "(",
    ")",
    "<",
    ">",
    "[",
    "]",
    "::",
    ":",
    ";",
    ",",
    ".",
    "->",
    "=>",
    "#",
    "!",
    "'a",
    "'\\u{41}'",
    "\"str",
    "r#\"raw\"#",
    "/* nest /* more",
    "//",
    "ident",
    "0x1f",
];

fn assemble(picks: &[usize]) -> String {
    let mut src = String::new();
    for &p in picks {
        src.push_str(FRAGMENTS[p % FRAGMENTS.len()]);
        // Vary the joiner so fragments sometimes fuse into new tokens.
        src.push(if p % 3 == 0 { ' ' } else { '\n' });
    }
    src
}

/// Full front-end pass over arbitrary source; returns the diagnostics so
/// callers can assert structural invariants beyond "did not panic".
fn exercise(src: &str) {
    let toks = lexer::lex(src);
    let mask = lexer::test_mask(&toks);
    let parsed = parser::parse(&toks, &mask);
    for f in &parsed.fns {
        assert!(f.body.0 <= f.body.1, "inverted body range in {}", f.name);
        assert!(f.body.1 <= toks.len(), "body overruns stream in {}", f.name);
        // Call extraction over every body must also hold up.
        let _ = parser::calls_in(&toks, f.body);
    }
    let _ = parser::calls_in(&toks, (0, toks.len()));
    // And the full engine, workspace rules included, with the file posing
    // as a hot-path + det-root so every rule engages.
    let mut cfg = Config::default();
    cfg.apply("det-sink crates/x/src/soup.rs *\nstrict-panic-file crates/x/src/soup.rs\n");
    let _ = lint_sources(
        &[("crates/x/src/soup.rs".to_string(), src.to_string())],
        &cfg,
    );
}

proptest! {
    /// Raw character soup: heavy on the delimiters and quote characters
    /// that drive lexer state.
    #[test]
    fn character_soup_never_panics(src in "[a-zA-Z0-9_{}()<>:;,.#!'\"/* \\n&|=+\\-]{0,160}") {
        exercise(&src);
    }

    /// Rust-shaped fragment streams: item headers, unbalanced braces,
    /// dangling strings and comments in arbitrary orders.
    #[test]
    fn fragment_streams_never_panic(picks in vec(0usize..1000, 0..80)) {
        exercise(&assemble(&picks));
    }
}
