//! Known-good fixture for ANOR-UNITS: same quantities, dimensionally
//! sound arithmetic. Must produce zero diagnostics.

fn convert(power: f64, elapsed: f64, energy: f64) -> f64 {
    // W × s = J: multiplication across units is meaningful.
    let spent_energy = power * elapsed;
    // joules + joules: same class, fine.
    let total_energy = energy + spent_energy;
    // J / s = W.
    total_energy / elapsed
}

fn headroom_left(cap: f64, power: f64) -> f64 {
    // watts - watts.
    cap - power
}

fn window_len(timestamp: f64, start_seconds: f64) -> f64 {
    // seconds - seconds.
    timestamp - start_seconds
}
