//! ANOR-PANIC reachability fixture, helper side: not itself a hot-path
//! file, but called from one.

pub fn poke(v: Option<u64>) -> u64 {
    v.unwrap()
}
