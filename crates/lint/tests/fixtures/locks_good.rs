//! Known-good fixture for ANOR-LOCK: guards scoped or dropped before
//! blocking I/O, nested acquisition in declared order. Must produce zero
//! diagnostics.

use parking_lot::Mutex;

fn no_stall(registry: &Mutex<u32>, peer: &mut Peer) {
    let payload = {
        let guard = registry.lock();
        [*guard as u8]
    };
    // Guard dropped at the block end: the send blocks nobody.
    peer.send(&payload);
}

fn ordered(registry: &Mutex<u32>, ring: &Mutex<u32>) {
    // registry before ring matches the declared order.
    let g = registry.lock();
    let r = ring.lock();
    drop(r);
    drop(g);
}

fn explicit_drop(registry: &Mutex<u32>, peer: &mut Peer) {
    let guard = registry.lock();
    let byte = *guard as u8;
    drop(guard);
    peer.send(&[byte]);
}
