//! Known-good fixture for ANOR-PANIC: the same logic as `panic_bad.rs`
//! written in degraded-mode style. Must produce zero diagnostics even
//! under a virtual strict-scope path.

fn pump(frames: &[u8], idx: usize) -> Option<u8> {
    frames.get(idx).copied()
}

fn drain(slot: Option<u32>) -> Result<u32, String> {
    match slot {
        Some(v) => Ok(v),
        None => Err("slot empty; dropping frame".to_string()),
    }
}

fn reject(kind: u8) -> Result<(), String> {
    if kind > 7 {
        return Err(format!("unknown kind {kind}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    // Test code is exempt: unwrap here is fine.
    #[test]
    fn drains() {
        assert_eq!(super::drain(Some(3)).unwrap(), 3);
        let xs = [1u8, 2];
        let i = 1usize;
        assert_eq!(xs[i], 2);
    }
}
