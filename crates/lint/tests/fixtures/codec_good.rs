//! Known-good fixture for ANOR-CODEC: unique tags both directions,
//! every encoded tag decodable, all payload reads length-guarded (either
//! inline `need` or via a helper whose body checks), wildcard arm
//! rejecting unknown tags.

pub enum GoodWire {
    A(u32),
    B(String),
}

impl GoodWire {
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GoodWire::A(v) => {
                out.put_u8(1);
                out.put_u32(*v);
            }
            GoodWire::B(s) => {
                out.put_u8(2);
                put_string(out, s);
            }
        }
    }

    pub fn decode(tag: u8, body: &mut &[u8]) -> Result<Self, String> {
        match tag {
            1 => {
                need(body, 4, "GoodWire::A")?;
                Ok(GoodWire::A(get_u32(body)))
            }
            2 => Ok(GoodWire::B(get_string(body)?)),
            t => Err(format!("unknown GoodWire tag {t}")),
        }
    }
}

fn need(body: &[u8], n: usize, what: &str) -> Result<(), String> {
    if body.len() < n {
        return Err(format!("truncated frame reading {what}"));
    }
    Ok(())
}

fn get_u32(body: &mut &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&body[..4]);
    *body = &body[4..];
    u32::from_be_bytes(raw)
}

fn get_string(body: &mut &[u8]) -> Result<String, String> {
    need(body, 4, "string length")?;
    let len = get_u32(body) as usize;
    need(body, len, "string body")?;
    let s = String::from_utf8_lossy(&body[..len]).into_owned();
    *body = &body[len..];
    Ok(s)
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u32(s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}
