//! ANOR-PANIC reachability fixture, hot side: `pump` itself is clean —
//! the panic hides one hop away in `panic_reach_util.rs`.

pub fn pump(v: Option<u64>) -> u64 {
    poke(v)
}
