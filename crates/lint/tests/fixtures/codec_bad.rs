//! Known-bad fixture for ANOR-CODEC: duplicate decode tag, an encoded
//! tag with no decode arm, an unguarded payload read, and no wildcard
//! arm. Linted under a virtual codec-scope path.

pub enum BadWire {
    A(u32),
    B(u32),
}

impl BadWire {
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BadWire::A(v) => {
                out.put_u8(1);
                out.put_u32(*v);
            }
            // Tag 9 is emitted but `decode` has no arm for it.
            BadWire::B(v) => {
                out.put_u8(9);
                out.put_u32(*v);
            }
        }
    }

    pub fn decode(tag: u8, body: &mut &[u8]) -> Result<Self, String> {
        match tag {
            // Reads payload bytes with no length guard.
            1 => Ok(BadWire::A(get_u32(body))),
            2 => Ok(BadWire::B(0)),
            // Duplicate tag shadows the arm above.
            2 => Ok(BadWire::B(1)),
        }
        // No wildcard arm: unknown tags fall through to a match panic.
    }
}

fn get_u32(body: &mut &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&body[..4]);
    *body = &body[4..];
    u32::from_be_bytes(raw)
}
