//! Known-bad fixture for ANOR-LOCK: a guard held across blocking I/O,
//! and nested acquisition against the declared lock order
//! (`lock-order registry series shared ring events writer`).

use parking_lot::Mutex;

fn stall(registry: &Mutex<u32>, peer: &mut Peer) {
    let guard = registry.lock();
    // Blocking send while `guard` is live: one slow peer stalls the lock.
    peer.send(&[*guard as u8]);
}

fn inverted(ring: &Mutex<u32>, registry: &Mutex<u32>) {
    let r = ring.lock();
    // `registry` ranks before `ring` in the declared order; acquiring it
    // here inverts the order and risks deadlock.
    let g = registry.lock();
    let _ = *r | *g;
}
