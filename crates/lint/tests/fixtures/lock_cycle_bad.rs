//! ANOR-LOCK bad fixture: `forward` nests alpha -> beta directly, while
//! `backward` holds beta and reaches alpha through `bump` — a cycle in
//! the workspace lock-acquisition graph.

use parking_lot::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn backward(&self) -> u64 {
        let b = self.beta.lock();
        self.bump();
        *b
    }

    fn bump(&self) {
        let mut a = self.alpha.lock();
        *a += 1;
    }
}
