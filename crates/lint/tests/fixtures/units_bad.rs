//! Known-bad fixture for ANOR-UNITS: additive arithmetic across unit
//! classes in raw-f64 code.

fn mix(power: f64, elapsed: f64, energy: f64) -> f64 {
    // watts + seconds: dimensionally meaningless.
    let drift = power + elapsed;
    // joules - watts: likewise.
    let gap = energy - power;
    drift * gap
}

struct Sample {
    avg_power: f64,
    timestamp: f64,
}

impl Sample {
    fn skew(&self, budget: f64) -> f64 {
        // watts += seconds through a field chain.
        let mut cap = budget;
        cap += self.timestamp;
        cap
    }
}
