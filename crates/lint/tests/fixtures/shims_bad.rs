//! ANOR-SHIM bad fixture: deprecated functions that do more than
//! delegate. Not compiled — linted as text by tests/rules.rs.

pub struct Widget {
    size: u32,
}

impl Widget {
    pub fn build(size: u32) -> Widget {
        Widget { size }
    }

    // Statements inside a shim: the `let` (and the `;`) mean the old
    // entry point carries logic the new one does not.
    #[deprecated(note = "use Widget::build")]
    pub fn make(size: u32) -> Widget {
        let doubled = size * 2;
        Widget::build(doubled)
    }

    // Control flow inside a shim: behavior forks from the replacement.
    #[deprecated(note = "use Widget::build")]
    pub fn make_checked(size: u32) -> Widget {
        if size > 4 {
            Widget::build(size)
        } else {
            Widget::build(4)
        }
    }

    // A deprecated fn that calls nothing is a parallel implementation,
    // not a shim.
    #[deprecated(note = "use Widget::build")]
    pub fn make_raw(size: u32) -> Widget {
        Widget { size }
    }
}
