//! ANOR-LOCK good fixture: every path acquires alpha before beta, so
//! the acquisition graph is acyclic.

use parking_lot::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn backward(&self) -> u64 {
        self.bump();
        let b = self.beta.lock();
        *b
    }

    fn bump(&self) {
        let mut a = self.alpha.lock();
        *a += 1;
    }
}
