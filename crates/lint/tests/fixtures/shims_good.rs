//! ANOR-SHIM good fixture: delegation-only deprecated shims (and
//! deprecated non-fn items, which are out of scope). Not compiled —
//! linted as text by tests/rules.rs.

#[deprecated(note = "renamed to Widget")]
pub struct OldWidget;

pub struct Widget {
    size: u32,
}

impl Widget {
    pub fn build(size: u32) -> Widget {
        Widget { size }
    }

    pub fn build_with(size: u32, scale: u32) -> Widget {
        Widget { size: size * scale }
    }

    // A single delegation expression — the only thing a shim may be.
    #[deprecated(note = "use Widget::build")]
    pub fn make(size: u32) -> Widget {
        Widget::build(size)
    }

    // Multi-line builder chains are still one expression.
    #[deprecated(note = "use Widget::build_with")]
    #[allow(clippy::new_ret_no_self)]
    pub fn make_scaled(size: u32, scale: u32) -> Widget {
        Widget::build_with(
            size,
            scale,
        )
    }
}
