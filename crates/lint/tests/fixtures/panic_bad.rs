//! Known-bad fixture for ANOR-PANIC: every construct a strict hot-path
//! file must not contain. Linted under a virtual strict-scope path.

fn pump(frames: &[u8], idx: usize) -> u8 {
    // Indexing with a runtime expression (strict scope only).
    let byte = frames[idx];
    byte
}

fn drain(slot: Option<u32>) -> u32 {
    // `.unwrap()` on a value a malformed peer controls.
    let v = slot.unwrap();
    // `.expect()` is the same panic with better last words.
    let w = slot.expect("slot must be filled");
    v + w
}

fn reject(kind: u8) {
    if kind > 7 {
        // Explicit panic in a control path.
        panic!("unknown kind {kind}");
    }
    unreachable!("kind space is dense");
}
