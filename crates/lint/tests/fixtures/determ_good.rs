//! ANOR-DETERM good fixture: the same shape as `determ_bad.rs` with the
//! nondeterminism removed — ordered map, virtual tick counter.

use std::collections::BTreeMap;

pub struct Pool {
    jobs: BTreeMap<u64, f64>,
    ticks: u64,
}

impl Pool {
    pub fn run(&mut self) -> f64 {
        self.ticks += 1;
        let mut sum = 0.0;
        for (_, v) in self.jobs.iter() {
            sum += v;
        }
        sum + helper(&self.jobs)
    }
}

fn helper(jobs: &BTreeMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for v in jobs.values() {
        total += v;
    }
    total
}
