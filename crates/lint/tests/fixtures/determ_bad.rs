//! ANOR-DETERM bad fixture: a deterministic root reads the clock and
//! iterates hash collections, directly and through a helper.

use std::collections::HashMap;
use std::time::Instant;

pub struct Pool {
    jobs: HashMap<u64, f64>,
}

impl Pool {
    pub fn run(&mut self) -> f64 {
        let started = Instant::now();
        let mut sum = 0.0;
        for (_, v) in self.jobs.iter() {
            sum += v;
        }
        let _ = started;
        sum + helper(&self.jobs)
    }
}

fn helper(jobs: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for v in jobs.values() {
        total += v;
    }
    total
}
