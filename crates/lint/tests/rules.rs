//! Fixture-driven rule tests: each rule family has a known-bad fixture
//! that must produce the expected diagnostics and a known-good twin that
//! must lint clean. Fixtures are linted under virtual workspace paths so
//! the path-scoped rules (panic, codec) engage.

use anor_lint::{lint_source, Config};

fn lint(virtual_path: &str, src: &str) -> Vec<anor_lint::Diagnostic> {
    let mut cfg = Config::default();
    // The declared lock order from the workspace anor-lint.toml, inlined
    // so fixtures do not depend on the file's location at test time.
    cfg.apply("lock-order registry series shared ring events writer\n");
    lint_source(virtual_path, src, &cfg)
}

fn rule_count(diags: &[anor_lint::Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn panic_bad_fixture_flags_every_construct() {
    let diags = lint(
        "crates/cluster/src/budgeter.rs",
        include_str!("fixtures/panic_bad.rs"),
    );
    // frames[idx], .unwrap(), .expect(), panic!, unreachable!.
    assert_eq!(rule_count(&diags, "ANOR-PANIC"), 5, "{diags:#?}");
    assert!(diags.iter().all(|d| !d.allowed));
}

#[test]
fn panic_good_fixture_is_clean() {
    let diags = lint(
        "crates/cluster/src/budgeter.rs",
        include_str!("fixtures/panic_good.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn codec_bad_fixture_flags_all_four_invariants() {
    let diags = lint(
        "crates/types/src/msg.rs",
        include_str!("fixtures/codec_bad.rs"),
    );
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(rule_count(&diags, "ANOR-CODEC"), 4, "{diags:#?}");
    assert!(msgs.iter().any(|m| m.contains("duplicate decode tag 2")));
    assert!(msgs.iter().any(|m| m.contains("encodes tag 9")));
    assert!(msgs.iter().any(|m| m.contains("without a length guard")));
    assert!(msgs.iter().any(|m| m.contains("no wildcard arm")));
}

#[test]
fn codec_good_fixture_is_clean() {
    let diags = lint(
        "crates/types/src/msg.rs",
        include_str!("fixtures/codec_good.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn units_bad_fixture_flags_cross_unit_arithmetic() {
    let diags = lint(
        "crates/model/src/power_math.rs",
        include_str!("fixtures/units_bad.rs"),
    );
    // power + elapsed, energy - power, cap += self.timestamp.
    assert_eq!(rule_count(&diags, "ANOR-UNITS"), 3, "{diags:#?}");
}

#[test]
fn units_good_fixture_is_clean() {
    let diags = lint(
        "crates/model/src/power_math.rs",
        include_str!("fixtures/units_good.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn locks_bad_fixture_flags_stall_and_inversion() {
    let diags = lint(
        "crates/telemetry/src/registry.rs",
        include_str!("fixtures/locks_bad.rs"),
    );
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(rule_count(&diags, "ANOR-LOCK"), 2, "{diags:#?}");
    assert!(msgs.iter().any(|m| m.contains("blocking call `send()`")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("violates the declared lock order")));
}

#[test]
fn shims_bad_fixture_flags_every_non_delegating_shim() {
    let diags = lint(
        "crates/cluster/src/compat.rs",
        include_str!("fixtures/shims_bad.rs"),
    );
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    // `let` statement, `if` control flow, call-free body.
    assert_eq!(rule_count(&diags, "ANOR-SHIM"), 3, "{diags:#?}");
    assert!(msgs.iter().any(|m| m.contains("`make` contains `let`")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("`make_checked` contains `if`")));
    assert!(msgs.iter().any(|m| m.contains("delegates to nothing")));
}

#[test]
fn shims_good_fixture_is_clean() {
    let diags = lint(
        "crates/cluster/src/compat.rs",
        include_str!("fixtures/shims_good.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn locks_good_fixture_is_clean() {
    let diags = lint(
        "crates/telemetry/src/registry.rs",
        include_str!("fixtures/locks_good.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}
