//! A whole compute node: packages + workload + power accounting.
//!
//! Matches the paper's test platform (Section 5.5): dual-package nodes
//! with 140 W TDP per socket, a 70 W per-package minimum cap, power
//! observed and controlled only at CPU-package scope (Section 7.1 scopes
//! the study to CPU power).

use crate::phases::{Phase, PhasedWorkload};
use crate::rapl::PackageDomain;
use crate::workload::SyntheticWorkload;
use anor_types::{
    AnorError, CapRange, JobId, JobTypeSpec, Joules, NodeId, PackageId, Result, Seconds, Watts,
};

/// Static configuration of a node model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Number of CPU packages (sockets).
    pub packages: u8,
    /// TDP per package.
    pub tdp_per_pkg: Watts,
    /// Minimum enforceable cap per package.
    pub min_cap_per_pkg: Watts,
    /// CPU power drawn per package when the node is idle.
    pub idle_pkg_power: Watts,
}

impl NodeConfig {
    /// The paper's platform: 2 × (70–140 W) packages, ≈45 W idle each.
    pub fn paper() -> Self {
        NodeConfig {
            packages: 2,
            tdp_per_pkg: Watts(140.0),
            min_cap_per_pkg: Watts(70.0),
            idle_pkg_power: Watts(45.0),
        }
    }

    /// Achievable node-level cap range (per-package range × package count).
    pub fn cap_range(&self) -> CapRange {
        let n = self.packages as f64;
        CapRange::new(self.min_cap_per_pkg * n, self.tdp_per_pkg * n)
    }

    /// Node CPU power when idle.
    pub fn idle_power(&self) -> Watts {
        self.idle_pkg_power * self.packages as f64
    }
}

/// The application running on a node: a plain single-profile benchmark
/// or a multi-phase job (Section 8).
// One Workload lives per node; the size spread between variants is
// irrelevant at that population.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Workload {
    /// A single power-sensitivity profile for the whole run.
    Plain(SyntheticWorkload),
    /// A sequence of phases with distinct power profiles.
    Phased(PhasedWorkload),
}

impl Workload {
    /// Advance under a node cap; returns epochs crossed.
    pub fn step(&mut self, cap: Watts, dt: Seconds) -> u64 {
        match self {
            Workload::Plain(w) => w.step(cap, dt),
            Workload::Phased(w) => w.step(cap, dt),
        }
    }

    /// Epochs completed so far.
    pub fn epochs_done(&self) -> u64 {
        match self {
            Workload::Plain(w) => w.epochs_done(),
            Workload::Phased(w) => w.epochs_done(),
        }
    }

    /// Fractional completion in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        match self {
            Workload::Plain(w) => w.progress(),
            Workload::Phased(w) => w.progress(),
        }
    }

    /// All epochs done?
    pub fn is_done(&self) -> bool {
        match self {
            Workload::Plain(w) => w.is_done(),
            Workload::Phased(w) => w.is_done(),
        }
    }

    /// Wall-clock spent executing.
    pub fn elapsed(&self) -> Seconds {
        match self {
            Workload::Plain(w) => w.elapsed(),
            Workload::Phased(w) => w.elapsed(),
        }
    }

    /// Per-node power demanded right now.
    pub fn power_demand(&self) -> Watts {
        match self {
            Workload::Plain(w) => w.power_demand(),
            Workload::Phased(w) => w.power_demand(),
        }
    }
}

/// What happened on a node during one time step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStepReport {
    /// CPU power drawn during the step (all packages).
    pub power: Watts,
    /// Epoch boundaries the local workload crossed.
    pub epochs_crossed: u64,
    /// True when the local workload has completed all epochs.
    pub job_done: bool,
}

/// One simulated compute node.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    cfg: NodeConfig,
    packages: Vec<PackageDomain>,
    perf_coeff: f64,
    job: Option<(JobId, Workload)>,
    time: Seconds,
}

impl Node {
    /// Build a node with an explicit configuration and performance
    /// coefficient.
    pub fn new(id: NodeId, cfg: NodeConfig, perf_coeff: f64) -> Self {
        assert!(cfg.packages > 0, "node needs at least one package");
        assert!(perf_coeff > 0.0, "performance coefficient must be positive");
        let packages = (0..cfg.packages)
            .map(|i| PackageDomain::new(PackageId(i), cfg.tdp_per_pkg, cfg.min_cap_per_pkg))
            .collect();
        Node {
            id,
            cfg,
            packages,
            perf_coeff,
            job: None,
            time: Seconds::ZERO,
        }
    }

    /// A nominal paper-platform node.
    pub fn paper(id: NodeId) -> Self {
        Node::new(id, NodeConfig::paper(), 1.0)
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Static configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Achievable node-level cap range.
    pub fn cap_range(&self) -> CapRange {
        self.cfg.cap_range()
    }

    /// The node's performance-variation coefficient.
    pub fn perf_coeff(&self) -> f64 {
        self.perf_coeff
    }

    /// Program a node-level power cap by splitting it evenly across
    /// packages (how GEOPM's power governor distributes a node budget).
    pub fn set_power_cap(&mut self, node_cap: Watts) -> Result<()> {
        let per_pkg = node_cap / self.cfg.packages as f64;
        for p in &mut self.packages {
            p.set_power_limit(per_pkg)?;
        }
        Ok(())
    }

    /// The currently enforced node-level cap (sum of enforced package
    /// limits).
    pub fn power_cap(&self) -> Watts {
        self.packages.iter().map(|p| p.power_limit()).sum()
    }

    /// Launch a job on this node. Errors when the node is already busy.
    pub fn launch(&mut self, job: JobId, spec: JobTypeSpec, seed: u64) -> Result<()> {
        if self.job.is_some() {
            return Err(AnorError::platform(format!(
                "{} is already running a job",
                self.id
            )));
        }
        self.job = Some((
            job,
            Workload::Plain(SyntheticWorkload::new(spec, self.perf_coeff, seed)),
        ));
        Ok(())
    }

    /// Launch a multi-phase job on this node (Section 8). Errors when the
    /// node is already busy.
    pub fn launch_phased(
        &mut self,
        job: JobId,
        spec: JobTypeSpec,
        phases: &[Phase],
        seed: u64,
    ) -> Result<()> {
        if self.job.is_some() {
            return Err(AnorError::platform(format!(
                "{} is already running a job",
                self.id
            )));
        }
        self.job = Some((
            job,
            Workload::Phased(PhasedWorkload::new(spec, phases, self.perf_coeff, seed)),
        ));
        Ok(())
    }

    /// Remove the current job (finished or cancelled). Returns its id.
    pub fn release(&mut self) -> Option<JobId> {
        self.job.take().map(|(id, _)| id)
    }

    /// The id of the running job, if any.
    pub fn job(&self) -> Option<JobId> {
        self.job.as_ref().map(|(id, _)| *id)
    }

    /// True when no job occupies the node.
    pub fn is_idle(&self) -> bool {
        self.job.is_none()
    }

    /// The running workload, if any.
    pub fn workload(&self) -> Option<&Workload> {
        self.job.as_ref().map(|(_, w)| w)
    }

    /// Simulated wall-clock on this node.
    pub fn now(&self) -> Seconds {
        self.time
    }

    /// Advance the node by `dt`: the workload progresses under the
    /// enforced node cap, packages draw power and account energy.
    pub fn step(&mut self, dt: Seconds) -> NodeStepReport {
        self.time += dt;
        let node_cap = self.power_cap();
        let npkg = self.cfg.packages as f64;
        let (pkg_demand, epochs_crossed, job_done) = match &mut self.job {
            Some((_, w)) if !w.is_done() => {
                let crossed = w.step(node_cap, dt);
                let demand = (w.power_demand() / npkg).max(self.cfg.idle_pkg_power);
                (demand, crossed, w.is_done())
            }
            Some((_, _)) => (self.cfg.idle_pkg_power, 0, true),
            None => (self.cfg.idle_pkg_power, 0, false),
        };
        let mut power = Watts::ZERO;
        for p in &mut self.packages {
            power += p.step(pkg_demand, dt);
        }
        NodeStepReport {
            power,
            epochs_crossed,
            job_done,
        }
    }

    /// Raw package energy counters, in package order (what GEOPM's
    /// `CPU_ENERGY` signal aggregates).
    pub fn energy_counters(&self) -> Vec<u64> {
        self.packages
            .iter()
            .map(|p| p.read_energy_counter())
            .collect()
    }

    /// Unwrapped total CPU energy consumed by this node.
    pub fn cpu_energy_total(&self) -> Joules {
        self.packages.iter().map(|p| p.energy_total()).sum()
    }

    /// Package domains (for PlatformIO-level access).
    pub fn packages(&self) -> &[PackageDomain] {
        &self.packages
    }

    /// Mutable package domains.
    pub fn packages_mut(&mut self) -> &mut [PackageDomain] {
        &mut self.packages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::standard_catalog;

    fn spec(name: &str) -> JobTypeSpec {
        standard_catalog().find(name).unwrap().clone()
    }

    #[test]
    fn paper_node_cap_range() {
        let n = Node::paper(NodeId(0));
        assert_eq!(n.cap_range(), CapRange::new(Watts(140.0), Watts(280.0)));
        assert_eq!(n.power_cap(), Watts(280.0), "defaults to TDP");
        assert_eq!(n.config().idle_power(), Watts(90.0));
    }

    #[test]
    fn cap_splits_across_packages() {
        let mut n = Node::paper(NodeId(0));
        n.set_power_cap(Watts(200.0)).unwrap();
        assert_eq!(n.power_cap(), Watts(200.0));
        for p in n.packages() {
            assert_eq!(p.power_limit(), Watts(100.0));
        }
    }

    #[test]
    fn cap_clamped_at_package_floor() {
        let mut n = Node::paper(NodeId(0));
        n.set_power_cap(Watts(100.0)).unwrap();
        // 50 W per package requested, floor is 70 W.
        assert_eq!(n.power_cap(), Watts(140.0));
    }

    #[test]
    fn idle_node_draws_idle_power() {
        let mut n = Node::paper(NodeId(1));
        let r = n.step(Seconds(1.0));
        assert_eq!(r.power, Watts(90.0));
        assert_eq!(r.epochs_crossed, 0);
        assert!(!r.job_done);
    }

    #[test]
    fn busy_node_draws_job_power_under_cap() {
        let mut n = Node::paper(NodeId(2));
        n.launch(JobId(1), spec("bt.D.81"), 7).unwrap();
        // Uncapped: draws the job's natural 272 W.
        let r = n.step(Seconds(1.0));
        assert!((r.power.value() - 272.0).abs() < 1e-9, "power {}", r.power);
        // Capped at 200: draws exactly the cap.
        n.set_power_cap(Watts(200.0)).unwrap();
        let r = n.step(Seconds(1.0));
        assert!((r.power.value() - 200.0).abs() < 1e-9, "power {}", r.power);
    }

    #[test]
    fn double_launch_rejected() {
        let mut n = Node::paper(NodeId(3));
        n.launch(JobId(1), spec("is.D.32"), 1).unwrap();
        assert!(n.launch(JobId(2), spec("is.D.32"), 2).is_err());
        assert_eq!(n.job(), Some(JobId(1)));
        assert_eq!(n.release(), Some(JobId(1)));
        assert!(n.is_idle());
        assert!(n.launch(JobId(2), spec("is.D.32"), 2).is_ok());
    }

    #[test]
    fn job_runs_to_completion() {
        let mut n = Node::paper(NodeId(4));
        n.launch(JobId(9), spec("is.D.32"), 3).unwrap();
        let mut total_epochs = 0;
        let mut steps = 0;
        loop {
            let r = n.step(Seconds(0.5));
            total_epochs += r.epochs_crossed;
            steps += 1;
            assert!(steps < 1000, "is.D.32 never finished");
            if r.job_done {
                break;
            }
        }
        assert_eq!(total_epochs, spec("is.D.32").epochs);
        // After completion the node draws idle power again.
        let r = n.step(Seconds(1.0));
        assert_eq!(r.power, Watts(90.0));
        assert!(r.job_done, "done latches until release");
    }

    #[test]
    fn energy_counters_advance() {
        let mut n = Node::paper(NodeId(5));
        let before = n.energy_counters();
        n.step(Seconds(10.0));
        let after = n.energy_counters();
        assert!(after.iter().zip(&before).all(|(a, b)| a > b));
        // 90 W idle × 10 s = 900 J.
        assert!((n.cpu_energy_total().value() - 900.0).abs() < 0.01);
    }

    #[test]
    fn perf_coeff_slows_workload() {
        let mut nominal = Node::paper(NodeId(6));
        let mut slow = Node::new(NodeId(7), NodeConfig::paper(), 1.5);
        nominal.launch(JobId(1), spec("is.D.32"), 11).unwrap();
        slow.launch(JobId(2), spec("is.D.32"), 11).unwrap();
        let run = |n: &mut Node| {
            let mut t = 0.0;
            loop {
                if n.step(Seconds(0.1)).job_done {
                    return t;
                }
                t += 0.1;
                assert!(t < 10_000.0);
            }
        };
        let t1 = run(&mut nominal);
        let t2 = run(&mut slow);
        assert!(t2 / t1 > 1.3, "slow node ratio {}", t2 / t1);
    }

    #[test]
    #[should_panic(expected = "at least one package")]
    fn zero_package_node_rejected() {
        let cfg = NodeConfig {
            packages: 0,
            ..NodeConfig::paper()
        };
        Node::new(NodeId(0), cfg, 1.0);
    }
}
