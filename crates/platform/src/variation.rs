//! Per-node performance-variation coefficients.
//!
//! Section 6.4: "we generate performance coefficients from a normal
//! distribution with a mean of 1, and adjust the standard deviation to
//! change the level of performance variation. The performance coefficients
//! are randomly generated for each of 1000 compute nodes at the start of
//! each of 10 simulations per variation level."
//!
//! Fig. 11's x axis labels variation levels as "99% of performance within
//! ±X%"; for a normal distribution, 99% of mass lies within ±2.576σ, so a
//! level of ±15% corresponds to σ = 0.15 / 2.576.

use anor_types::stats::truncated_normal;
use anor_types::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// z-score containing 99% of a standard normal (two-sided).
pub const Z_99: f64 = 2.576;

/// A drawn set of per-node performance coefficients.
#[derive(Debug, Clone)]
pub struct PerformanceVariation {
    coeffs: Vec<f64>,
    sigma: f64,
}

impl PerformanceVariation {
    /// No variation: every node nominal.
    pub fn none(nodes: usize) -> Self {
        PerformanceVariation {
            coeffs: vec![1.0; nodes],
            sigma: 0.0,
        }
    }

    /// Draw coefficients for `nodes` nodes from `N(1, sigma)`, floored at
    /// 0.1 so no node is pathologically fast.
    pub fn with_sigma(nodes: usize, sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        if sigma == 0.0 {
            return PerformanceVariation::none(nodes);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let coeffs = (0..nodes)
            .map(|_| truncated_normal(&mut rng, 1.0, sigma, 0.1))
            .collect();
        PerformanceVariation { coeffs, sigma }
    }

    /// Draw coefficients for a Fig. 11 "99% within ±`percent`%" level.
    pub fn with_level_percent(nodes: usize, percent: f64, seed: u64) -> Self {
        Self::with_sigma(nodes, percent / 100.0 / Z_99, seed)
    }

    /// The coefficient for a node (1.0 for ids beyond the drawn set, so a
    /// variation set can be safely applied to a smaller cluster).
    pub fn coeff(&self, node: NodeId) -> f64 {
        self.coeffs.get(node.index()).copied().unwrap_or(1.0)
    }

    /// Standard deviation this set was drawn with.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True when no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Iterate over all coefficients in node order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.coeffs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::stats::{mean, std_dev};

    #[test]
    fn none_is_all_ones() {
        let v = PerformanceVariation::none(16);
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|c| c == 1.0));
        assert_eq!(v.sigma(), 0.0);
    }

    #[test]
    fn sigma_zero_short_circuits() {
        let v = PerformanceVariation::with_sigma(10, 0.0, 99);
        assert!(v.iter().all(|c| c == 1.0));
    }

    #[test]
    fn drawn_moments_match() {
        let v = PerformanceVariation::with_sigma(20_000, 0.1, 7);
        let xs: Vec<f64> = v.iter().collect();
        assert!((mean(&xs) - 1.0).abs() < 0.01);
        assert!((std_dev(&xs) - 0.1).abs() < 0.01);
    }

    #[test]
    fn level_percent_maps_to_sigma() {
        let v = PerformanceVariation::with_level_percent(1000, 15.0, 3);
        assert!((v.sigma() - 0.15 / Z_99).abs() < 1e-12);
        // Roughly 99% of nodes within ±15%.
        let within = v.iter().filter(|c| (c - 1.0).abs() <= 0.15).count();
        assert!(within >= 975, "only {within}/1000 within ±15%");
    }

    #[test]
    fn coeff_out_of_range_defaults_to_nominal() {
        let v = PerformanceVariation::with_sigma(4, 0.2, 1);
        assert_eq!(v.coeff(NodeId(100)), 1.0);
    }

    #[test]
    fn coefficients_floored() {
        let v = PerformanceVariation::with_sigma(10_000, 0.5, 11);
        assert!(v.iter().all(|c| c >= 0.1));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = PerformanceVariation::with_sigma(100, 0.1, 5);
        let b = PerformanceVariation::with_sigma(100, 0.1, 5);
        let c = PerformanceVariation::with_sigma(100, 0.1, 6);
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x != y));
    }
}
