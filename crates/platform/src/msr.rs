//! A simulated model-specific-register file with msr-safe semantics.
//!
//! The paper's GEOPM deployment accesses MSRs "through the msr-safe kernel
//! module" (Section 5.4), which exposes an *allowlist* of registers with
//! per-register read/write permissions. We reproduce the three registers
//! the power stack uses, with their real encodings:
//!
//! | Register | Address | Access | Contents |
//! |---|---|---|---|
//! | `RAPL_POWER_UNIT` | `0x606` | RO | unit exponents: power 1/2³ W, energy 1/2¹⁴ J, time 1/2¹⁰ s |
//! | `PKG_POWER_LIMIT` | `0x610` | RW | PL1 power limit in power units, enable bit 15 |
//! | `PKG_ENERGY_STATUS` | `0x611` | RO | wrapping 32-bit counter in energy units |

use anor_types::{AnorError, Joules, Result, Watts};
use std::collections::HashMap;

/// RAPL unit register address.
pub const MSR_RAPL_POWER_UNIT: u32 = 0x606;
/// Package power-limit register address (PL1).
pub const MSR_PKG_POWER_LIMIT: u32 = 0x610;
/// Package energy-status register address.
pub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;
/// Package power-info register (min/max/TDP), read-only.
pub const MSR_PKG_POWER_INFO: u32 = 0x614;

/// Power unit: 1/8 W per LSB (`RAPL_POWER_UNIT[3:0] = 3`).
pub const POWER_UNIT_WATTS: f64 = 1.0 / 8.0;
/// Energy unit: 1/2¹⁴ J per LSB (`RAPL_POWER_UNIT[12:8] = 14`).
pub const ENERGY_UNIT_JOULES: f64 = 1.0 / 16384.0;
/// Encoded `RAPL_POWER_UNIT` value for the units above (time unit 1/2¹⁰ s).
pub const RAPL_POWER_UNIT_VALUE: u64 = 0x000A_0E03;

/// Enable bit for the PL1 limit in `PKG_POWER_LIMIT`.
pub const PKG_POWER_LIMIT_ENABLE: u64 = 1 << 15;
/// Mask of the PL1 power field.
pub const PKG_POWER_LIMIT_MASK: u64 = 0x7FFF;

/// Per-register access permission, mirroring an msr-safe allowlist entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Register may only be read.
    ReadOnly,
    /// Register may be read and written.
    ReadWrite,
}

/// A simulated MSR register file for one CPU package.
#[derive(Debug, Clone)]
pub struct MsrFile {
    regs: HashMap<u32, (Access, u64)>,
    /// Successful software writes through the allowlist (hardware-side
    /// `hw_store`s excluded) — the auditable actuation count causal
    /// tracing reconciles against.
    writes: u64,
}

impl MsrFile {
    /// Build the RAPL register set for a package with the given TDP.
    /// `PKG_POWER_LIMIT` starts at TDP with the enable bit set;
    /// `PKG_ENERGY_STATUS` starts at zero.
    pub fn rapl(tdp: Watts) -> Self {
        let mut regs = HashMap::new();
        regs.insert(
            MSR_RAPL_POWER_UNIT,
            (Access::ReadOnly, RAPL_POWER_UNIT_VALUE),
        );
        regs.insert(
            MSR_PKG_POWER_LIMIT,
            (
                Access::ReadWrite,
                encode_power_limit(tdp) | PKG_POWER_LIMIT_ENABLE,
            ),
        );
        regs.insert(MSR_PKG_ENERGY_STATUS, (Access::ReadOnly, 0));
        // POWER_INFO: TDP in power units in bits [14:0].
        regs.insert(
            MSR_PKG_POWER_INFO,
            (Access::ReadOnly, encode_power_limit(tdp)),
        );
        MsrFile { regs, writes: 0 }
    }

    /// Read a register; errors on addresses outside the allowlist (the
    /// msr-safe module would return `EPERM`).
    pub fn read(&self, addr: u32) -> Result<u64> {
        self.regs
            .get(&addr)
            .map(|&(_, v)| v)
            .ok_or_else(|| AnorError::platform(format!("MSR {addr:#x} not in allowlist")))
    }

    /// Write a register; errors on unknown addresses and on read-only
    /// registers.
    pub fn write(&mut self, addr: u32, value: u64) -> Result<()> {
        match self.regs.get_mut(&addr) {
            None => Err(AnorError::platform(format!(
                "MSR {addr:#x} not in allowlist"
            ))),
            Some((Access::ReadOnly, _)) => {
                Err(AnorError::platform(format!("MSR {addr:#x} is read-only")))
            }
            Some((Access::ReadWrite, v)) => {
                *v = value;
                self.writes += 1;
                Ok(())
            }
        }
    }

    /// Count of successful software writes so far.
    pub fn writes_performed(&self) -> u64 {
        self.writes
    }

    /// Privileged hardware-side update of a register, bypassing the
    /// allowlist (how the simulated silicon advances the energy counter).
    pub(crate) fn hw_store(&mut self, addr: u32, value: u64) {
        if let Some((_, v)) = self.regs.get_mut(&addr) {
            *v = value;
        }
    }
}

/// Encode a watts value into the `PKG_POWER_LIMIT` PL1 field.
pub fn encode_power_limit(w: Watts) -> u64 {
    ((w.value() / POWER_UNIT_WATTS).round() as u64) & PKG_POWER_LIMIT_MASK
}

/// Decode the PL1 field of a `PKG_POWER_LIMIT` value into watts.
pub fn decode_power_limit(raw: u64) -> Watts {
    Watts((raw & PKG_POWER_LIMIT_MASK) as f64 * POWER_UNIT_WATTS)
}

/// Encode joules into energy-status counter ticks (wrapping at 32 bits).
pub fn encode_energy(j: Joules) -> u64 {
    ((j.value() / ENERGY_UNIT_JOULES) as u64) & 0xFFFF_FFFF
}

/// Decode an energy-status counter value into joules.
pub fn decode_energy(raw: u64) -> Joules {
    Joules((raw & 0xFFFF_FFFF) as f64 * ENERGY_UNIT_JOULES)
}

/// Difference between two successive 32-bit energy readings, accounting
/// for at most one counter wrap (readers must poll faster than the wrap
/// period — ~73 hours at 280 W with these units, ~18 minutes on real
/// silicon with finer units).
pub fn energy_delta(prev_raw: u64, curr_raw: u64) -> Joules {
    let prev = prev_raw & 0xFFFF_FFFF;
    let curr = curr_raw & 0xFFFF_FFFF;
    let ticks = if curr >= prev {
        curr - prev
    } else {
        (1u64 << 32) - prev + curr
    };
    Joules(ticks as f64 * ENERGY_UNIT_JOULES)
}

/// The canonical msr-safe allowlist for this power stack, in the real
/// module's format: `address write_mask # comment` (write mask 0 =
/// read-only). This is what an operator installs into
/// `/dev/cpu/msr_allowlist` to let GEOPM run unprivileged.
pub const DEFAULT_ALLOWLIST: &str = "\
# MSR        write mask           # name
0x606 0x0000000000000000 # MSR_RAPL_POWER_UNIT
0x610 0x00000000000087FF # MSR_PKG_POWER_LIMIT (PL1 field + enable)
0x611 0x0000000000000000 # MSR_PKG_ENERGY_STATUS
0x614 0x0000000000000000 # MSR_PKG_POWER_INFO
";

/// Parse an msr-safe allowlist: `address write_mask` per line, `#`
/// comments, hex with or without `0x`.
pub fn parse_allowlist(r: impl std::io::BufRead) -> Result<Vec<(u32, u64)>> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(addr), Some(mask)) = (parts.next(), parts.next()) else {
            return Err(AnorError::platform(format!(
                "allowlist line {}: expected `address write_mask`",
                lineno + 1
            )));
        };
        let parse_hex = |s: &str, what: &str| -> Result<u64> {
            u64::from_str_radix(s.trim_start_matches("0x").trim_start_matches("0X"), 16).map_err(
                |_| AnorError::platform(format!("allowlist line {}: bad {what} `{s}`", lineno + 1)),
            )
        };
        out.push((
            parse_hex(addr, "address")? as u32,
            parse_hex(mask, "write mask")?,
        ));
    }
    Ok(out)
}

impl MsrFile {
    /// Build a register file from an allowlist (entries outside the
    /// simulated RAPL register set are accepted but read as zero, like
    /// untouched MSRs). A non-zero write mask grants write access.
    pub fn from_allowlist(entries: &[(u32, u64)], tdp: Watts) -> Self {
        let defaults = MsrFile::rapl(tdp);
        let mut regs = HashMap::new();
        for &(addr, mask) in entries {
            let access = if mask != 0 {
                Access::ReadWrite
            } else {
                Access::ReadOnly
            };
            let value = defaults.regs.get(&addr).map(|&(_, v)| v).unwrap_or(0);
            regs.insert(addr, (access, value));
        }
        MsrFile { regs, writes: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rapl_file_has_expected_defaults() {
        let f = MsrFile::rapl(Watts(140.0));
        assert_eq!(f.read(MSR_RAPL_POWER_UNIT).unwrap(), RAPL_POWER_UNIT_VALUE);
        assert_eq!(f.read(MSR_PKG_ENERGY_STATUS).unwrap(), 0);
        let limit = f.read(MSR_PKG_POWER_LIMIT).unwrap();
        assert_ne!(limit & PKG_POWER_LIMIT_ENABLE, 0, "PL1 enabled by default");
        assert_eq!(decode_power_limit(limit), Watts(140.0));
    }

    #[test]
    fn unknown_register_rejected() {
        let mut f = MsrFile::rapl(Watts(140.0));
        assert!(f.read(0x1234).is_err());
        assert!(f.write(0x1234, 0).is_err());
    }

    #[test]
    fn read_only_register_rejects_writes() {
        let mut f = MsrFile::rapl(Watts(140.0));
        assert!(f.write(MSR_PKG_ENERGY_STATUS, 5).is_err());
        assert!(f.write(MSR_RAPL_POWER_UNIT, 5).is_err());
        assert!(f.write(MSR_PKG_POWER_INFO, 5).is_err());
    }

    #[test]
    fn power_limit_round_trip() {
        for w in [70.0, 87.5, 100.0, 140.0] {
            let enc = encode_power_limit(Watts(w));
            assert_eq!(decode_power_limit(enc), Watts(w), "at {w} W");
        }
    }

    #[test]
    fn power_limit_write_read() {
        let mut f = MsrFile::rapl(Watts(140.0));
        f.write(
            MSR_PKG_POWER_LIMIT,
            encode_power_limit(Watts(90.0)) | PKG_POWER_LIMIT_ENABLE,
        )
        .unwrap();
        let v = f.read(MSR_PKG_POWER_LIMIT).unwrap();
        assert_eq!(decode_power_limit(v), Watts(90.0));
    }

    #[test]
    fn energy_encoding_quantizes_to_units() {
        let j = Joules(1.0);
        let enc = encode_energy(j);
        let dec = decode_energy(enc);
        assert!((dec.value() - 1.0).abs() < ENERGY_UNIT_JOULES);
    }

    #[test]
    fn energy_delta_simple() {
        let a = encode_energy(Joules(100.0));
        let b = encode_energy(Joules(350.5));
        let d = energy_delta(a, b);
        assert!((d.value() - 250.5).abs() < 2.0 * ENERGY_UNIT_JOULES);
    }

    #[test]
    fn energy_delta_handles_wrap() {
        // One tick before wrap to three ticks after: delta = 4 ticks.
        let prev = 0xFFFF_FFFF - 1;
        let curr = 3u64;
        let d = energy_delta(prev, curr);
        let expected = 5.0 * ENERGY_UNIT_JOULES;
        assert!((d.value() - expected).abs() < 1e-12, "got {d}");
    }

    #[test]
    fn hw_store_bypasses_allowlist() {
        let mut f = MsrFile::rapl(Watts(140.0));
        f.hw_store(MSR_PKG_ENERGY_STATUS, 42);
        assert_eq!(f.read(MSR_PKG_ENERGY_STATUS).unwrap(), 42);
    }

    #[test]
    fn default_allowlist_parses_and_matches_rapl_set() {
        let entries =
            parse_allowlist(std::io::BufReader::new(DEFAULT_ALLOWLIST.as_bytes())).unwrap();
        assert_eq!(entries.len(), 4);
        let f = MsrFile::from_allowlist(&entries, Watts(140.0));
        // Same access semantics as the built-in RAPL file.
        assert_eq!(f.read(MSR_RAPL_POWER_UNIT).unwrap(), RAPL_POWER_UNIT_VALUE);
        assert_eq!(
            decode_power_limit(f.read(MSR_PKG_POWER_LIMIT).unwrap()),
            Watts(140.0)
        );
        let mut f = f;
        assert!(f.write(MSR_PKG_ENERGY_STATUS, 1).is_err(), "mask 0 = RO");
        assert!(f
            .write(MSR_PKG_POWER_LIMIT, encode_power_limit(Watts(90.0)))
            .is_ok());
    }

    #[test]
    fn allowlist_accepts_unknown_registers_as_zero() {
        let entries = parse_allowlist(std::io::BufReader::new(
            &b"0x1a0 0xffffffffffffffff # IA32_MISC_ENABLE\n"[..],
        ))
        .unwrap();
        let mut f = MsrFile::from_allowlist(&entries, Watts(140.0));
        assert_eq!(f.read(0x1a0).unwrap(), 0);
        f.write(0x1a0, 7).unwrap();
        assert_eq!(f.read(0x1a0).unwrap(), 7);
        // Registers not in the allowlist stay inaccessible.
        assert!(f.read(MSR_PKG_ENERGY_STATUS).is_err());
    }

    #[test]
    fn malformed_allowlists_rejected() {
        let parse = |s: &str| parse_allowlist(std::io::BufReader::new(s.as_bytes()));
        assert!(parse("0x610").is_err(), "missing mask");
        assert!(parse("zzz 0x0").is_err(), "bad address");
        assert!(parse("0x610 qq").is_err(), "bad mask");
        // Comments and blank lines are fine.
        assert_eq!(parse("# only a comment\n\n").unwrap().len(), 0);
        // Bare hex without 0x works too.
        assert_eq!(parse("611 0").unwrap(), vec![(0x611, 0)]);
    }
}
