#![warn(missing_docs)]
//! # anor-platform
//!
//! A discrete-time model of the paper's compute-node hardware: dual-socket
//! Intel® Xeon® Gold 6152 nodes with 140 W TDP per package, controlled
//! through RAPL model-specific registers via the msr-safe allowlist.
//!
//! The real system's power-management control loop only ever touches the
//! hardware through two MSRs — it *reads* `PKG_ENERGY_STATUS` (a wrapping
//! 32-bit energy accumulator) and *writes* `PKG_POWER_LIMIT` (Section 5.4
//! of the paper). This crate reproduces exactly that interface:
//!
//! * [`msr`] — a simulated, allowlisted MSR register file with the RAPL
//!   unit encodings (`RAPL_POWER_UNIT`, energy units of 1/2¹⁴ J, power
//!   units of 1/8 W) and wrap-around semantics;
//! * [`rapl`] — a package power domain that clamps enforced power to its
//!   limit and accumulates energy into the MSR counter;
//! * [`workload`] — synthetic NPB-shaped iterative applications whose
//!   seconds-per-epoch follows the job type's ground-truth quadratic
//!   power curve, with per-epoch measurement noise and a per-node
//!   performance-variation coefficient;
//! * [`node`] — a whole node: packages + workload + power accounting,
//!   stepped in discrete time;
//! * [`variation`] — generators for the per-node performance coefficients
//!   of Section 6.4.

pub mod msr;
pub mod node;
pub mod phases;
pub mod rapl;
pub mod variation;
pub mod workload;

pub use msr::{MsrFile, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT};
pub use node::{Node, NodeConfig, NodeStepReport, Workload};
pub use phases::{Phase, PhasedWorkload};
pub use rapl::PackageDomain;
pub use variation::PerformanceVariation;
pub use workload::SyntheticWorkload;
