//! Multi-phase workloads.
//!
//! Section 8: "some jobs may consist of multiple power-sensitivity
//! profiles through the job's lifecycle" — e.g. an I/O-bound setup phase
//! followed by a compute-bound solve. [`PhasedWorkload`] runs a sequence
//! of [`Phase`]s, each with its own power sensitivity and draw, over the
//! epoochs of a base job type. The job tier sees the same epoch stream as
//! for a single-phase job; what changes is that the power-performance
//! relationship shifts mid-run, which is what the modeler's drift
//! detection (in `anor-model`) has to catch.

use crate::workload::SyntheticWorkload;
use anor_types::{JobTypeSpec, Seconds, Watts};

/// One contiguous region of a job's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Fraction of the job's epochs spent in this phase (fractions are
    /// normalized internally).
    pub fraction: f64,
    /// Power sensitivity during the phase (slowdown − 1 at min cap).
    pub sensitivity: f64,
    /// Natural per-node draw during the phase.
    pub max_draw: Watts,
}

/// A workload whose power behaviour changes across phases.
#[derive(Debug, Clone)]
pub struct PhasedWorkload {
    /// Per-phase synthetic workloads, pre-built with phase-specific specs.
    segments: Vec<(u64, SyntheticWorkload)>, // (epoch budget, workload)
    current: usize,
    total_epochs: u64,
    elapsed: Seconds,
}

impl PhasedWorkload {
    /// Build over a base spec. Phase fractions are normalized; each phase
    /// gets at least one epoch while epochs remain.
    pub fn new(base: JobTypeSpec, phases: &[Phase], perf_coeff: f64, seed: u64) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        let total: f64 = phases.iter().map(|p| p.fraction.max(0.0)).sum();
        assert!(total > 0.0, "phase fractions must sum to a positive value");
        let mut segments = Vec::with_capacity(phases.len());
        let mut remaining = base.epochs;
        for (i, phase) in phases.iter().enumerate() {
            let is_last = i + 1 == phases.len();
            let share = if is_last {
                remaining
            } else {
                (((phase.fraction.max(0.0) / total) * base.epochs as f64).round() as u64)
                    .clamp(1, remaining.saturating_sub((phases.len() - 1 - i) as u64))
            };
            remaining -= share;
            let mut spec = base.clone();
            spec.sensitivity = phase.sensitivity;
            spec.max_draw = phase.max_draw;
            spec.epochs = share.max(1);
            // Per-epoch time is preserved: total time scales with share.
            spec.time_uncapped = base.epoch_time_uncapped() * spec.epochs as f64;
            segments.push((
                share.max(1),
                SyntheticWorkload::new(spec, perf_coeff, seed ^ ((i as u64 + 1) << 40)),
            ));
        }
        PhasedWorkload {
            segments,
            current: 0,
            total_epochs: base.epochs,
            elapsed: Seconds::ZERO,
        }
    }

    /// Index of the phase currently executing.
    pub fn current_phase(&self) -> usize {
        self.current.min(self.segments.len() - 1)
    }

    /// Advance by `dt` under a node cap; returns epochs crossed.
    pub fn step(&mut self, cap: Watts, dt: Seconds) -> u64 {
        if self.is_done() {
            return 0;
        }
        self.elapsed += dt;
        let mut crossed = 0;
        let mut budget = dt;
        while budget.value() > 0.0 && !self.is_done() {
            let seg = &mut self.segments[self.current];
            let before = seg.1.elapsed();
            crossed += seg.1.step(cap, budget);
            let used = seg.1.elapsed() - before;
            budget -= used;
            if seg.1.is_done() {
                self.current += 1;
                if budget.value() <= 1e-12 {
                    break;
                }
            } else {
                break;
            }
        }
        crossed
    }

    /// Cumulative epochs completed across all phases.
    pub fn epochs_done(&self) -> u64 {
        self.segments.iter().map(|(_, w)| w.epochs_done()).sum()
    }

    /// Fractional completion in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        (self.epochs_done() as f64 / self.total_epochs as f64).min(1.0)
    }

    /// All phases complete?
    pub fn is_done(&self) -> bool {
        self.current >= self.segments.len()
    }

    /// Wall-clock spent executing.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Per-node draw demanded right now (phase-dependent).
    pub fn power_demand(&self) -> Watts {
        if self.is_done() {
            Watts::ZERO
        } else {
            self.segments[self.current].1.power_demand()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::standard_catalog;

    fn base() -> JobTypeSpec {
        standard_catalog().find("bt").unwrap().clone()
    }

    fn two_phase(coeff: f64, seed: u64) -> PhasedWorkload {
        PhasedWorkload::new(
            base(),
            &[
                Phase {
                    fraction: 0.5,
                    sensitivity: 0.1, // IS-like phase
                    max_draw: Watts(225.0),
                },
                Phase {
                    fraction: 0.5,
                    sensitivity: 0.8, // EP-like phase
                    max_draw: Watts(278.0),
                },
            ],
            coeff,
            seed,
        )
    }

    fn run_to_done(w: &mut PhasedWorkload, cap: Watts, dt: f64) -> f64 {
        let mut t = 0.0;
        while !w.is_done() {
            w.step(cap, Seconds(dt));
            t += dt;
            assert!(t < 100_000.0, "phased workload never finished");
        }
        t
    }

    #[test]
    fn completes_all_epochs_across_phases() {
        let mut w = two_phase(1.0, 1);
        run_to_done(&mut w, Watts(280.0), 0.5);
        assert_eq!(w.epochs_done(), base().epochs);
        assert_eq!(w.progress(), 1.0);
        assert_eq!(w.power_demand(), Watts::ZERO);
    }

    #[test]
    fn phase_transition_changes_power_demand() {
        let mut w = two_phase(1.0, 2);
        assert_eq!(w.current_phase(), 0);
        assert_eq!(w.power_demand(), Watts(225.0));
        // Run until the phase flips.
        let mut guard = 0;
        while w.current_phase() == 0 {
            w.step(Watts(280.0), Seconds(1.0));
            guard += 1;
            assert!(guard < 10_000);
        }
        assert!(!w.is_done());
        assert_eq!(w.power_demand(), Watts(278.0));
    }

    #[test]
    fn capping_hurts_only_the_sensitive_phase() {
        // Cap at 140 W: phase 1 (sens 0.1) barely slows, phase 2 (0.8)
        // slows a lot. Total ~ 0.5*(1.1 + 1.8) = 1.45x of uncapped.
        let mut free = two_phase(1.0, 3);
        let mut capped = two_phase(1.0, 3);
        let t_free = run_to_done(&mut free, Watts(280.0), 0.25);
        let t_capped = run_to_done(&mut capped, Watts(140.0), 0.25);
        let ratio = t_capped / t_free;
        assert!(
            (ratio - 1.45).abs() < 0.12,
            "phased slowdown {ratio}, expected ~1.45"
        );
    }

    #[test]
    fn single_phase_degenerates_to_plain_workload() {
        let phases = [Phase {
            fraction: 1.0,
            sensitivity: base().sensitivity,
            max_draw: base().max_draw,
        }];
        let mut w = PhasedWorkload::new(base(), &phases, 1.0, 4);
        let t = run_to_done(&mut w, Watts(280.0), 0.5);
        let expect = base().time_uncapped.value();
        assert!((t - expect).abs() / expect < 0.05, "{t} vs {expect}");
    }

    #[test]
    fn epoch_shares_respect_fractions() {
        let w = PhasedWorkload::new(
            base(),
            &[
                Phase {
                    fraction: 0.25,
                    sensitivity: 0.1,
                    max_draw: Watts(200.0),
                },
                Phase {
                    fraction: 0.75,
                    sensitivity: 0.7,
                    max_draw: Watts(270.0),
                },
            ],
            1.0,
            5,
        );
        let shares: Vec<u64> = w.segments.iter().map(|(n, _)| *n).collect();
        assert_eq!(shares.iter().sum::<u64>(), base().epochs);
        let frac0 = shares[0] as f64 / base().epochs as f64;
        assert!((frac0 - 0.25).abs() < 0.05, "phase 0 share {frac0}");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        PhasedWorkload::new(base(), &[], 1.0, 1);
    }
}
