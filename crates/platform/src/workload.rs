//! Synthetic iterative workloads shaped like the NAS Parallel Benchmarks.
//!
//! Section 5.1: "We use benchmarks as placeholders to emulate different
//! application phase characteristics" — each benchmark runs a main outer
//! loop instrumented with one `geopm_prof_epoch()` call per iteration. The
//! synthetic workload here advances through its epochs at a rate set by
//! the job type's ground-truth quadratic power curve, scaled by
//!
//! * the node's *performance-variation coefficient* (a fixed multiplier
//!   per node per simulation, Section 6.4), and
//! * per-epoch multiplicative noise calibrated so offline model fits
//!   reproduce the paper's R² figures (Section 5.1).

use anor_types::stats::truncated_normal;
use anor_types::{JobTypeSpec, Seconds, Watts};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A running instance of a synthetic benchmark on one node.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    spec: JobTypeSpec,
    /// Node-specific performance coefficient (1.0 = nominal; > 1 = slower).
    perf_coeff: f64,
    rng: StdRng,
    epochs_done: u64,
    /// Progress through the current epoch in `[0, 1)`.
    frac: f64,
    /// Noise multiplier for the current epoch (resampled at each boundary).
    epoch_noise: f64,
    /// Wall-clock spent executing (sum of `dt` across steps).
    elapsed: Seconds,
}

impl SyntheticWorkload {
    /// Start a workload for `spec` with a deterministic seed.
    /// `perf_coeff > 1` means this node runs the job slower than nominal.
    pub fn new(spec: JobTypeSpec, perf_coeff: f64, seed: u64) -> Self {
        assert!(perf_coeff > 0.0, "performance coefficient must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = Self::sample_noise(&mut rng, spec.noise_sigma);
        SyntheticWorkload {
            spec,
            perf_coeff,
            rng,
            epochs_done: 0,
            frac: 0.0,
            epoch_noise: noise,
            elapsed: Seconds::ZERO,
        }
    }

    fn sample_noise(rng: &mut StdRng, sigma: f64) -> f64 {
        // Multiplicative, mean-1 noise; floored so an epoch can never take
        // negative or implausibly small time.
        truncated_normal(rng, 1.0, sigma, 0.2)
    }

    /// The job type being executed.
    pub fn spec(&self) -> &JobTypeSpec {
        &self.spec
    }

    /// Seconds one epoch takes at `cap` for this instance (ground truth ×
    /// node coefficient × current epoch noise).
    pub fn epoch_time_at(&self, cap: Watts) -> Seconds {
        let eff = self.spec.effective_cap(cap);
        self.spec.epoch_curve().time_at(eff) * self.perf_coeff * self.epoch_noise
    }

    /// Advance the workload by `dt` under a node power cap. Returns the
    /// number of epoch boundaries crossed during this step.
    pub fn step(&mut self, cap: Watts, dt: Seconds) -> u64 {
        if self.is_done() {
            return 0;
        }
        self.elapsed += dt;
        let mut remaining = dt.value();
        let mut crossed = 0;
        while remaining > 0.0 && !self.is_done() {
            let tau = self.epoch_time_at(cap).value().max(1e-9);
            let to_boundary = (1.0 - self.frac) * tau;
            if remaining >= to_boundary {
                remaining -= to_boundary;
                self.frac = 0.0;
                self.epochs_done += 1;
                crossed += 1;
                let sigma = self.spec.noise_sigma;
                self.epoch_noise = Self::sample_noise(&mut self.rng, sigma);
            } else {
                self.frac += remaining / tau;
                remaining = 0.0;
            }
        }
        crossed
    }

    /// Cumulative epochs completed on this node.
    pub fn epochs_done(&self) -> u64 {
        self.epochs_done
    }

    /// Fractional completion in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        let total = self.spec.epochs as f64;
        ((self.epochs_done as f64 + self.frac) / total).min(1.0)
    }

    /// Has every epoch completed?
    pub fn is_done(&self) -> bool {
        self.epochs_done >= self.spec.epochs
    }

    /// Wall-clock time spent executing so far.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Run the remaining epochs to completion under a constant cap
    /// without discrete-time stepping, returning total wall-clock. Fast
    /// path for offline characterization sweeps (Fig. 3); statistically
    /// identical to stepping because epoch noise is resampled per epoch
    /// either way.
    pub fn run_to_completion(&mut self, cap: Watts) -> Seconds {
        // Finish the current partial epoch first.
        if !self.is_done() && self.frac > 0.0 {
            let tau = self.epoch_time_at(cap);
            let rest = tau * (1.0 - self.frac);
            self.elapsed += rest;
            self.frac = 0.0;
            self.epochs_done += 1;
            let sigma = self.spec.noise_sigma;
            self.epoch_noise = Self::sample_noise(&mut self.rng, sigma);
        }
        while !self.is_done() {
            let tau = self.epoch_time_at(cap);
            self.elapsed += tau;
            self.epochs_done += 1;
            let sigma = self.spec.noise_sigma;
            self.epoch_noise = Self::sample_noise(&mut self.rng, sigma);
        }
        self.elapsed
    }

    /// Per-node power the workload wants to draw at the moment (its
    /// natural draw; the package clamps this to the cap).
    pub fn power_demand(&self) -> Watts {
        if self.is_done() {
            Watts::ZERO
        } else {
            self.spec.max_draw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::standard_catalog;

    fn workload(name: &str, coeff: f64, seed: u64) -> SyntheticWorkload {
        let spec = standard_catalog().find(name).unwrap().clone();
        SyntheticWorkload::new(spec, coeff, seed)
    }

    /// Run to completion under a constant cap; return total wall-clock.
    fn run_to_done(w: &mut SyntheticWorkload, cap: Watts, dt: f64) -> f64 {
        let mut t = 0.0;
        while !w.is_done() {
            w.step(cap, Seconds(dt));
            t += dt;
            assert!(t < 100_000.0, "workload never finished");
        }
        t
    }

    #[test]
    fn uncapped_time_matches_spec() {
        // Low-noise type: completion time should be close to the catalog's
        // uncapped execution time.
        let mut w = workload("bt.D.81", 1.0, 1);
        let t = run_to_done(&mut w, Watts(280.0), 0.25);
        let expect = w.spec().time_uncapped.value();
        assert!(
            (t - expect).abs() / expect < 0.05,
            "uncapped bt took {t}, expected ~{expect}"
        );
    }

    #[test]
    fn capping_slows_sensitive_jobs() {
        let mut fast = workload("bt.D.81", 1.0, 2);
        let mut slow = workload("bt.D.81", 1.0, 2);
        let t_fast = run_to_done(&mut fast, Watts(280.0), 0.5);
        let t_slow = run_to_done(&mut slow, Watts(140.0), 0.5);
        let ratio = t_slow / t_fast;
        // BT's sensitivity is 0.75 -> expect ~1.75× slowdown.
        assert!(
            (ratio - 1.75).abs() < 0.15,
            "bt slowdown at 140 W was {ratio}"
        );
    }

    #[test]
    fn capping_barely_affects_insensitive_jobs() {
        let mut fast = workload("is.D.32", 1.0, 3);
        let mut slow = workload("is.D.32", 1.0, 3);
        let t_fast = run_to_done(&mut fast, Watts(280.0), 0.1);
        let t_slow = run_to_done(&mut slow, Watts(140.0), 0.1);
        let ratio = t_slow / t_fast;
        assert!(ratio < 1.35, "is slowdown at 140 W was {ratio}");
    }

    #[test]
    fn perf_coefficient_scales_runtime() {
        let mut nominal = workload("mg.D.32", 1.0, 4);
        let mut degraded = workload("mg.D.32", 1.3, 4);
        let t1 = run_to_done(&mut nominal, Watts(280.0), 0.25);
        let t2 = run_to_done(&mut degraded, Watts(280.0), 0.25);
        let ratio = t2 / t1;
        assert!((ratio - 1.3).abs() < 0.15, "coefficient ratio {ratio}");
    }

    #[test]
    fn progress_is_monotone_and_bounded() {
        let mut w = workload("ft.D.64", 1.0, 5);
        let mut prev = 0.0;
        while !w.is_done() {
            w.step(Watts(200.0), Seconds(1.0));
            let p = w.progress();
            assert!(p >= prev && p <= 1.0, "progress went {prev} -> {p}");
            prev = p;
        }
        assert_eq!(w.progress(), 1.0);
        assert_eq!(w.epochs_done(), w.spec().epochs);
    }

    #[test]
    fn step_after_done_is_inert() {
        let mut w = workload("is.D.32", 1.0, 6);
        run_to_done(&mut w, Watts(280.0), 0.1);
        let e = w.epochs_done();
        assert_eq!(w.step(Watts(280.0), Seconds(10.0)), 0);
        assert_eq!(w.epochs_done(), e);
        assert_eq!(w.power_demand(), Watts::ZERO);
    }

    #[test]
    fn epochs_can_cross_multiple_boundaries_per_step() {
        // is.D.32 has 40 epochs over ~20 s -> 0.5 s/epoch; a 5 s step
        // should cross ~10 boundaries.
        let mut w = workload("is.D.32", 1.0, 7);
        let crossed = w.step(Watts(280.0), Seconds(5.0));
        assert!((7..=13).contains(&crossed), "crossed {crossed}");
    }

    #[test]
    fn power_demand_matches_spec_draw() {
        let w = workload("sp.D.81", 1.0, 8);
        assert_eq!(w.power_demand(), w.spec().max_draw);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = workload("cg.D.32", 1.0, 42);
        let mut b = workload("cg.D.32", 1.0, 42);
        for _ in 0..50 {
            let ca = a.step(Watts(180.0), Seconds(0.7));
            let cb = b.step(Watts(180.0), Seconds(0.7));
            assert_eq!(ca, cb);
        }
        assert_eq!(a.progress(), b.progress());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_coefficient_rejected() {
        workload("cg.D.32", 0.0, 1);
    }

    #[test]
    fn run_to_completion_matches_stepping_statistically() {
        let mut fast = workload("mg.D.32", 1.0, 21);
        let t_fast = fast.run_to_completion(Watts(200.0)).value();
        assert!(fast.is_done());
        let mut stepped = workload("mg.D.32", 1.0, 21);
        let t_step = run_to_done(&mut stepped, Watts(200.0), 0.25);
        // Same seed, same noise stream: identical up to tick quantization.
        assert!(
            (t_fast - t_step).abs() < 1.0,
            "fast {t_fast} vs stepped {t_step}"
        );
    }

    #[test]
    fn run_to_completion_finishes_partial_epoch() {
        let mut w = workload("mg.D.32", 1.0, 22);
        w.step(Watts(200.0), Seconds(0.3)); // partway into epoch 1
        let total = w.run_to_completion(Watts(200.0));
        assert!(w.is_done());
        assert_eq!(w.epochs_done(), w.spec().epochs);
        assert!(total.value() > 100.0);
    }
}
