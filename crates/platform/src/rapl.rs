//! A RAPL package power domain.
//!
//! Each CPU package enforces its `PKG_POWER_LIMIT` and accumulates the
//! energy it actually consumed into the wrapping `PKG_ENERGY_STATUS`
//! counter. The enforcement model is the steady-state one the paper's
//! control loops rely on: average package power over a control interval
//! never exceeds the limit (real RAPL enforces this over a configurable
//! time window; GEOPM samples far slower than that window).

use crate::msr::{self, MsrFile, MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT};
use anor_types::{Joules, PackageId, Result, Seconds, Watts};

/// One CPU package (socket) with RAPL monitoring and control.
#[derive(Debug, Clone)]
pub struct PackageDomain {
    /// Which socket this is within its node.
    pub id: PackageId,
    /// Thermal design power — the maximum meaningful power limit.
    pub tdp: Watts,
    /// Lowest limit the platform accepts (70 W on the paper's system:
    /// "the system's minimum-allowed power cap (70 W per CPU package)").
    pub min_cap: Watts,
    msr: MsrFile,
    /// Total energy consumed, unwrapped (simulation-side bookkeeping).
    energy_total: Joules,
    /// Power drawn during the most recent step.
    last_power: Watts,
}

impl PackageDomain {
    /// A package with the paper platform's 140 W TDP and 70 W floor.
    pub fn paper(id: PackageId) -> Self {
        PackageDomain::new(id, Watts(140.0), Watts(70.0))
    }

    /// Build a package with the given TDP and minimum cap.
    pub fn new(id: PackageId, tdp: Watts, min_cap: Watts) -> Self {
        PackageDomain {
            id,
            tdp,
            min_cap,
            msr: MsrFile::rapl(tdp),
            energy_total: Joules::ZERO,
            last_power: Watts::ZERO,
        }
    }

    /// The currently programmed power limit, as the hardware will enforce
    /// it (clamped to `[min_cap, tdp]`).
    pub fn power_limit(&self) -> Watts {
        // `MsrFile::rapl` seeds this register, but a missing read must
        // degrade (enforce TDP), not panic: the budgeter pump reaches
        // this through the emulated sampling path.
        let requested = match self.msr.read(MSR_PKG_POWER_LIMIT) {
            Ok(raw) => msr::decode_power_limit(raw),
            Err(_) => self.tdp,
        };
        requested.clamp(self.min_cap, self.tdp)
    }

    /// Program a new power limit through the MSR interface. Out-of-range
    /// requests are accepted into the register but clamped at enforcement
    /// time, like real silicon.
    pub fn set_power_limit(&mut self, limit: Watts) -> Result<()> {
        let raw = msr::encode_power_limit(limit) | msr::PKG_POWER_LIMIT_ENABLE;
        self.msr.write(MSR_PKG_POWER_LIMIT, raw)
    }

    /// Advance the package by `dt`, given the power the workload *wants*
    /// to draw. Returns the power actually drawn (demand clamped to the
    /// enforced limit) and updates the energy counter.
    pub fn step(&mut self, demand: Watts, dt: Seconds) -> Watts {
        let drawn = demand.max(Watts::ZERO).min(self.power_limit());
        self.energy_total += drawn * dt;
        self.last_power = drawn;
        self.msr
            .hw_store(MSR_PKG_ENERGY_STATUS, msr::encode_energy(self.energy_total));
        drawn
    }

    /// Power drawn during the most recent [`PackageDomain::step`].
    pub fn last_power(&self) -> Watts {
        self.last_power
    }

    /// Read the raw energy-status counter the way GEOPM's `CPU_ENERGY`
    /// signal does.
    pub fn read_energy_counter(&self) -> u64 {
        // A missing counter reads as 0 (a stalled counter produces a
        // zero delta downstream) rather than taking down the sampler.
        self.msr.read(MSR_PKG_ENERGY_STATUS).unwrap_or(0)
    }

    /// Unwrapped total energy (simulation-side; agents must use the
    /// counter + [`msr::energy_delta`]).
    pub fn energy_total(&self) -> Joules {
        self.energy_total
    }

    /// Number of software MSR writes this package has accepted (cap
    /// programmings; the counter the tracing layer reconciles
    /// `msr_write` events against).
    pub fn msr_writes(&self) -> u64 {
        self.msr.writes_performed()
    }

    /// Direct MSR access (exposed for the GEOPM PlatformIO layer).
    pub fn msr(&self) -> &MsrFile {
        &self.msr
    }

    /// Mutable MSR access.
    pub fn msr_mut(&mut self) -> &mut MsrFile {
        &mut self.msr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msr::energy_delta;

    #[test]
    fn defaults_to_tdp_limit() {
        let p = PackageDomain::paper(PackageId(0));
        assert_eq!(p.power_limit(), Watts(140.0));
    }

    #[test]
    fn limit_enforcement_clamps_demand() {
        let mut p = PackageDomain::paper(PackageId(0));
        p.set_power_limit(Watts(100.0)).unwrap();
        let drawn = p.step(Watts(130.0), Seconds(1.0));
        assert_eq!(drawn, Watts(100.0));
        // Demand below the limit passes through.
        let drawn = p.step(Watts(80.0), Seconds(1.0));
        assert_eq!(drawn, Watts(80.0));
        assert_eq!(p.last_power(), Watts(80.0));
    }

    #[test]
    fn limit_clamped_to_platform_floor_and_tdp() {
        let mut p = PackageDomain::paper(PackageId(0));
        p.set_power_limit(Watts(10.0)).unwrap();
        assert_eq!(p.power_limit(), Watts(70.0), "floor applies");
        p.set_power_limit(Watts(500.0)).unwrap();
        assert_eq!(p.power_limit(), Watts(140.0), "TDP ceiling applies");
    }

    #[test]
    fn energy_accumulates_and_counter_tracks() {
        let mut p = PackageDomain::paper(PackageId(0));
        let c0 = p.read_energy_counter();
        for _ in 0..10 {
            p.step(Watts(120.0), Seconds(1.0));
        }
        let c1 = p.read_energy_counter();
        let measured = energy_delta(c0, c1);
        assert!(
            (measured.value() - 1200.0).abs() < 0.01,
            "counter-derived energy {measured} vs 1200 J"
        );
        assert!((p.energy_total().value() - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn negative_demand_treated_as_zero() {
        let mut p = PackageDomain::paper(PackageId(1));
        let drawn = p.step(Watts(-5.0), Seconds(1.0));
        assert_eq!(drawn, Watts::ZERO);
        assert_eq!(p.energy_total(), Joules::ZERO);
    }

    #[test]
    fn msr_write_count_tracks_cap_programmings() {
        let mut p = PackageDomain::paper(PackageId(0));
        assert_eq!(p.msr_writes(), 0);
        p.set_power_limit(Watts(100.0)).unwrap();
        p.set_power_limit(Watts(90.0)).unwrap();
        assert_eq!(p.msr_writes(), 2);
        // Hardware-side energy stores do not count as writes.
        p.step(Watts(80.0), Seconds(1.0));
        assert_eq!(p.msr_writes(), 2);
    }

    #[test]
    fn msr_interface_is_live() {
        let mut p = PackageDomain::paper(PackageId(0));
        p.set_power_limit(Watts(90.0)).unwrap();
        let raw = p.msr().read(MSR_PKG_POWER_LIMIT).unwrap();
        assert_eq!(msr::decode_power_limit(raw), Watts(90.0));
        // Writing through the raw MSR changes enforcement too.
        p.msr_mut()
            .write(
                MSR_PKG_POWER_LIMIT,
                msr::encode_power_limit(Watts(110.0)) | msr::PKG_POWER_LIMIT_ENABLE,
            )
            .unwrap();
        assert_eq!(p.power_limit(), Watts(110.0));
    }
}
