//! Property tests for the RAPL energy-counter arithmetic: `energy_delta`
//! must reconstruct the consumed energy across the 32-bit counter wrap,
//! ignore stray high bits, and invert `encode_energy` to within one tick.

use anor_platform::msr::{decode_energy, encode_energy, energy_delta, ENERGY_UNIT_JOULES};
use anor_types::Joules;
use proptest::prelude::*;

const WRAP: u64 = 1 << 32;

proptest! {
    /// Advancing the counter by `delta` ticks — wrapping or not — always
    /// reads back as exactly `delta` ticks of energy.
    #[test]
    fn delta_survives_wrap(prev in 0u64..WRAP, delta in 0u64..WRAP) {
        let curr = (prev + delta) % WRAP;
        let j = energy_delta(prev, curr);
        let expected = delta as f64 * ENERGY_UNIT_JOULES;
        prop_assert!(
            (j.value() - expected).abs() < 1e-9,
            "prev {prev} + {delta} ticks -> {j:?}, expected {expected} J"
        );
    }

    /// Bits above the 32-bit counter width are masked off on both sides.
    #[test]
    fn high_bits_ignored(
        prev in 0u64..WRAP,
        curr in 0u64..WRAP,
        hi_a in 0u64..1024,
        hi_b in 0u64..1024,
    ) {
        let masked = energy_delta(prev, curr);
        let noisy = energy_delta(prev | (hi_a << 32), curr | (hi_b << 32));
        prop_assert_eq!(masked.value(), noisy.value());
    }

    /// An unchanged counter means zero joules, wherever it sits.
    #[test]
    fn identical_readings_are_zero(raw in 0u64..WRAP) {
        prop_assert_eq!(energy_delta(raw, raw).value(), 0.0);
    }

    /// `decode_energy` inverts `encode_energy` to within one tick's
    /// truncation for any energy the counter can hold.
    #[test]
    fn encode_decode_roundtrip(j in 0.0f64..((WRAP - 1) as f64 * ENERGY_UNIT_JOULES)) {
        let back = decode_energy(encode_energy(Joules(j)));
        prop_assert!(
            j - back.value() < ENERGY_UNIT_JOULES && back.value() <= j + 1e-9,
            "{j} J -> {back:?}"
        );
    }
}

/// The boundary case proptest ranges rarely hit exactly: one tick across
/// the wrap.
#[test]
fn one_tick_across_the_wrap() {
    let j = energy_delta(WRAP - 1, 0);
    assert!((j.value() - ENERGY_UNIT_JOULES).abs() < 1e-15);
}
