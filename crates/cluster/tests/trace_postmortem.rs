//! Flight-recorder postmortem: when the budgeter side of the TCP link
//! dies, the job endpoint must dump its trace ring to disk so the last
//! moments before the disconnect can be analyzed offline.

use anor_cluster::JobEndpoint;
use anor_geopm::endpoint_pair;
use anor_model::{ModelerConfig, PowerModeler};
use anor_telemetry::{read_trace, TraceStage, Tracer};
use anor_types::{CapRange, JobId, PowerCurve, Seconds};
use std::net::TcpListener;
use std::time::Duration;

#[test]
fn endpoint_dumps_postmortem_on_budgeter_disconnect() {
    let dir = std::env::temp_dir().join(format!("anor-postmortem-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tracer = Tracer::to_dir(&dir).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (modeler_side, _agent_side) = endpoint_pair();
    let mut cfg = ModelerConfig::paper();
    cfg.dither_fraction = 0.0;
    let default = PowerCurve::from_anchor(Seconds(0.5), 0.1, CapRange::paper_node());
    let modeler = PowerModeler::with_default(cfg, default);
    let mut endpoint = JobEndpoint::builder(addr, JobId(1), "bt.D.81", 2, modeler_side, modeler)
        .tracer(&tracer)
        .connect()
        .unwrap();

    // Accept the connection, exchange one pump so the link is live,
    // then kill the budgeter side.
    let (server, _) = listener.accept().unwrap();
    endpoint.pump(Seconds(0.0)).unwrap();
    server.shutdown(std::net::Shutdown::Both).unwrap();
    drop(server);

    // The endpoint must notice the dead peer and dump its ring; sends
    // may race the RST, so tolerate pump errors while polling.
    let mut dumped = false;
    for i in 1..200 {
        let _ = endpoint.pump(Seconds(i as f64 * 0.1));
        if tracer.postmortems() > 0 {
            dumped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        dumped,
        "endpoint never dumped a postmortem after disconnect"
    );

    // Exactly the disconnect dump, containing a disconnect event.
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("postmortem-") && n.ends_with(".jsonl"))
        })
        .collect();
    assert!(!dumps.is_empty(), "no postmortem file on disk");
    let scan = read_trace(&dumps[0]).unwrap();
    assert_eq!(scan.malformed, 0, "postmortem contains malformed events");
    assert!(
        scan.events
            .iter()
            .any(|e| e.stage == TraceStage::Disconnect),
        "postmortem lacks the disconnect event"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
