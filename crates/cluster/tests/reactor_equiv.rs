//! Reactor/blocking equivalence tests: the sharded reactor must emit a
//! byte-identical decision stream to the blocking plane at any shard
//! count, survive a chaos-injected reconnect storm with a clean
//! invariant audit, count (never deadlock on) egress backpressure
//! drops, and deliver ingress frames losslessly in order.

use anor_cluster::budgeter::{BudgeterConfig, ClusterBudgeter, LeaseConfig};
use anor_cluster::{
    recorder_meta, replay, run_load, BudgetPolicy, FaultPlan, FramedStream, LoadConfig,
    ReactorTransport, ReplayOptions, SessionState, StreamOptions, Transport, TransportKind,
    TransportMetrics, TransportOptions,
};
use anor_telemetry::{read_recording, FlightRecorder, RecEvent, Telemetry};
use anor_types::msg::JobToCluster;
use anor_types::{JobId, Watts};
use bytes::Bytes;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::time::Duration;

const BUDGET: Watts = Watts(840.0);

/// Everything one scripted run produced that must not depend on the
/// connection plane.
#[derive(Debug)]
struct Scenario {
    /// `(conn, frame bytes)` of every recorded decision, in order.
    decisions: Vec<(u32, Vec<u8>)>,
    caps: Vec<(JobId, Option<Watts>)>,
    sessions: Vec<(JobId, SessionState)>,
}

fn connect(addr: std::net::SocketAddr) -> FramedStream {
    FramedStream::new(TcpStream::connect(addr).unwrap(), StreamOptions::default()).unwrap()
}

/// Wrap an opaque payload in the wire framing (`encode()` does this for
/// real messages): u32 big-endian length prefix, then the body.
fn framed(body: &[u8]) -> Bytes {
    let mut wire = Vec::with_capacity(4 + body.len());
    wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
    wire.extend_from_slice(body);
    Bytes::from(wire)
}

fn send_all(c: &mut FramedStream, frame: Bytes) {
    c.send(frame).unwrap();
    while c.pending_out() > 0 {
        c.flush_some().unwrap();
    }
}

fn pump_until(b: &mut ClusterBudgeter, mut done: impl FnMut(&ClusterBudgeter) -> bool) {
    for _ in 0..5000 {
        b.pump(BUDGET).unwrap();
        if done(b) {
            return;
        }
        b.wait_readable(Duration::from_millis(1));
    }
    panic!("pump_until timed out ({:?} plane)", b.transport_kind());
}

/// Run the stage-gated scripted trace — three endpoints register, one
/// dies and loses its lease, then resumes — on the given plane, and
/// return the recorded decision stream plus the final budgeter state.
/// Every stage is gated on observed budgeter state, so the sequencing
/// of session events is identical regardless of how the plane
/// interleaves socket I/O.
fn run_scenario(kind: TransportKind, shards: usize, dir: &Path) -> Scenario {
    let cfg = BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false);
    let lease = LeaseConfig::after_misses(5);
    let path = dir.join(format!("{}-{shards}.rec", kind.name()));
    let recorder = FlightRecorder::create(&path, recorder_meta(&cfg, &lease, 11)).unwrap();
    let (mut b, addr) = ClusterBudgeter::builder(cfg)
        .lease(lease)
        .recorder(recorder.clone())
        .transport(kind)
        .shards(shards)
        .bind()
        .unwrap();

    let hello = |job: u64, type_name: &str, nodes: u32| {
        JobToCluster::Hello {
            job: JobId(job),
            type_name: type_name.into(),
            nodes,
        }
        .encode()
    };
    let cap_of = |b: &ClusterBudgeter, job: u64| {
        b.job_caps()
            .iter()
            .find(|(j, _)| *j == JobId(job))
            .and_then(|(_, c)| *c)
    };

    // Stage 1-3: three endpoints register one at a time (fixed accept
    // order => fixed conn ids), each gated on its cap landing.
    let _c1 = {
        let mut c = connect(addr);
        send_all(&mut c, hello(1, "bt.D.81", 2));
        pump_until(&mut b, |b| cap_of(b, 1).is_some());
        c
    };
    let mut c2 = {
        let mut c = connect(addr);
        send_all(&mut c, hello(2, "sp.D.81", 2));
        pump_until(&mut b, |b| cap_of(b, 2).is_some());
        c
    };
    let _c3 = {
        let mut c = connect(addr);
        send_all(&mut c, hello(3, "cg.D.32", 1));
        pump_until(&mut b, |b| cap_of(b, 3).is_some());
        c
    };

    // Stage 4: endpoint 2 dies; its lease expires (5 missed pumps) and
    // the watts are redistributed to the survivors.
    c2.shutdown_now();
    drop(c2);
    pump_until(&mut b, |b| {
        b.job_session(JobId(2)) == Some(SessionState::Gone)
    });

    // Stage 5: endpoint 2 resumes on a fresh connection with its
    // believed cap; the budgeter restores the lease and re-balances.
    let mut c2b = connect(addr);
    send_all(
        &mut c2b,
        JobToCluster::Resume {
            job: JobId(2),
            type_name: "sp.D.81".into(),
            nodes: 2,
            believed_cap: Watts(200.0),
            cause: 0,
        }
        .encode(),
    );
    pump_until(&mut b, |b| {
        b.job_session(JobId(2)) == Some(SessionState::Connected) && cap_of(b, 2).is_some()
    });

    // Settle: constant budget, no state change — must emit nothing new.
    for _ in 0..20 {
        b.pump(BUDGET).unwrap();
    }

    let caps = b.job_caps();
    let sessions = b.session_states();
    recorder.flush().unwrap();
    drop(b);

    let rec = read_recording(&path).unwrap();
    // Each plane's recording must replay byte-identically on its own.
    let out = replay(
        &rec,
        &ReplayOptions {
            verify: true,
            until: None,
        },
    )
    .unwrap();
    assert_eq!(
        out.first_divergence,
        None,
        "{} plane recording failed replay --verify",
        kind.name()
    );
    assert_eq!(out.invariant_violations, 0);

    let decisions = rec
        .events
        .iter()
        .filter_map(|e| match &e.event {
            RecEvent::DecisionTx { conn, frame } => Some((*conn, frame.clone())),
            _ => None,
        })
        .collect();
    Scenario {
        decisions,
        caps,
        sessions,
    }
}

/// The tentpole acceptance: at any shard count, the reactor's recorded
/// decision stream is byte-for-byte the blocking plane's, and the final
/// caps and session states agree.
#[test]
fn decision_streams_are_byte_identical_across_planes() {
    let dir = std::env::temp_dir().join(format!("anor-reactor-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let blocking = run_scenario(TransportKind::Blocking, 1, &dir);
    let reactor1 = run_scenario(TransportKind::Reactor, 1, &dir);
    let reactor3 = run_scenario(TransportKind::Reactor, 3, &dir);

    assert!(
        !blocking.decisions.is_empty(),
        "scenario must emit decisions"
    );
    assert_eq!(
        blocking.decisions, reactor1.decisions,
        "reactor(1 shard) decision stream diverged from blocking"
    );
    assert_eq!(
        blocking.decisions, reactor3.decisions,
        "reactor(3 shards) decision stream diverged from blocking"
    );
    assert_eq!(blocking.caps, reactor1.caps);
    assert_eq!(blocking.caps, reactor3.caps);
    assert_eq!(blocking.sessions, reactor1.sessions);
    assert_eq!(blocking.sessions, reactor3.sessions);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A chaos storm — seeded drops and corruption over a 40-endpoint,
/// two-storm load run on the reactor — must complete with every session
/// re-established and a clean invariant audit.
#[test]
fn chaos_storm_audits_clean_on_the_reactor() {
    let cfg = LoadConfig {
        endpoints: 40,
        storms: 2,
        faults: Some(FaultPlan::parse("drop@17,corrupt@42").unwrap().seeded(0xA5)),
        transport: TransportOptions {
            kind: TransportKind::Reactor,
            shards: 3,
            conn_queue_depth: 64,
        },
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).unwrap();
    assert!(report.ok(), "chaos load run failed:\n{report}");
    assert_eq!(report.invariant_violations, 0);
    assert_eq!(report.connected, 40);
    // Two storms over 40 endpoints: at least one full storm's worth of
    // reconnects, plus whatever the drop faults force on top.
    assert!(report.reconnects >= 40, "reconnects {}", report.reconnects);
}

/// A peer that never reads gets its egress frames dropped once the
/// bounded queue fills — counted, with the transport (and this test)
/// never blocking on the dead endpoint.
#[test]
fn backpressure_drops_are_counted_and_never_deadlock() {
    let telemetry = Telemetry::new();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let metrics = TransportMetrics::new(&telemetry, "budgeter");
    // depth 2 => egress bound of 2 * 256 bytes per connection.
    let mut t = ReactorTransport::new(listener, &telemetry, metrics, None, 1, 2).unwrap();
    let addr = t.local_addr().unwrap();
    let _stuck = TcpStream::connect(addr).unwrap(); // never reads

    let id = loop {
        let ids = t.accept().unwrap();
        if let Some(&id) = ids.first() {
            break id;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    // Far more bytes than the socket buffer plus the queue bound can
    // absorb. write_frame must stay non-blocking throughout: the test
    // finishing at all is the no-deadlock assertion.
    let frame = framed(&[0x5Au8; 300]);
    for _ in 0..4000 {
        t.write_frame(id, frame.clone()).unwrap();
    }
    assert!(
        t.backpressure_drops() > 0,
        "slow peer must shed frames, not queue unboundedly"
    );
    assert!(t.is_open(id), "backpressure must not kill the connection");
    // The drop counter is also the `transport_backpressure_drops_total`
    // telemetry counter the load report surfaces.
    assert_eq!(
        telemetry
            .counter(
                "transport_backpressure_drops_total",
                &[("role", "budgeter")]
            )
            .get(),
        t.backpressure_drops()
    );
}

/// Ingress is lossless and ordered: a client pushing frames faster than
/// the pump drains them loses nothing (the shard stops reading at the
/// inbox bound and TCP pushes back), and `wait_readable` wakes for the
/// arrivals instead of spinning.
#[test]
fn ingress_is_lossless_in_order_and_wakes_wait_readable() {
    let telemetry = Telemetry::new();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let metrics = TransportMetrics::new(&telemetry, "budgeter");
    // Tiny inbox bound so the lossless path actually engages.
    let mut t = ReactorTransport::new(listener, &telemetry, metrics, None, 2, 4).unwrap();
    let addr = t.local_addr().unwrap();
    let mut client = connect(addr);

    let _id = loop {
        let ids = t.accept().unwrap();
        if let Some(&id) = ids.first() {
            break id;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    const N: usize = 200;
    let writer = std::thread::spawn(move || {
        for i in 0..N {
            send_all(&mut client, framed(format!("frame-{i:04}").as_bytes()));
        }
        client
    });

    let mut got: Vec<Bytes> = Vec::new();
    let mut waits_signalled = 0u32;
    for _ in 0..20_000 {
        if t.wait_readable(Duration::from_millis(1)) {
            waits_signalled += 1;
        }
        for ready in t.poll_readable() {
            let (frames, _closed) = t.read_frames(ready).unwrap();
            got.extend(frames);
        }
        if got.len() >= N {
            break;
        }
    }
    let _client = writer.join().unwrap();
    assert_eq!(got.len(), N, "ingress dropped frames");
    for (i, frame) in got.iter().enumerate() {
        assert_eq!(
            frame.as_ref(),
            format!("frame-{i:04}").as_bytes(),
            "ingress reordered frames"
        );
    }
    assert!(waits_signalled > 0, "wait_readable never reported arrivals");
}
