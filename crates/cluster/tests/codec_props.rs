//! Property tests for the cluster↔job wire codec: the invariants
//! `anor-lint`'s ANOR-CODEC rule checks structurally are checked
//! dynamically here — tag uniqueness per direction, exhaustive
//! encode→decode round-trips, and panic-free rejection of truncation.

use anor_types::msg::{EpochSample, CODEC_VERSION};
use anor_types::{ClusterToJob, JobId, JobToCluster, PowerCurve, Seconds, Watts};
use proptest::prelude::*;

/// The wire tag of an encoded message: first body byte after the u32
/// length prefix.
fn tag_of(frame: &[u8]) -> u8 {
    frame[4]
}

fn body_of(frame: &[u8]) -> bytes::Bytes {
    bytes::Bytes::copy_from_slice(&frame[4..])
}

fn sample(job: u64, epoch_count: u64, power: f64, ts: f64, cause: u64) -> EpochSample {
    EpochSample {
        job: JobId(job),
        epoch_count,
        energy: anor_types::Joules(power * ts),
        avg_power: Watts(power),
        avg_cap: Watts(power + 5.0),
        timestamp: Seconds(ts),
        cause,
    }
}

/// One representative of every variant, per direction. Must be kept
/// exhaustive — the `representatives_are_exhaustive` test enforces it
/// against the match below.
fn cluster_to_job_reps() -> Vec<ClusterToJob> {
    vec![
        ClusterToJob::SetPowerCap {
            cap: Watts(187.5),
            cause: 99,
        },
        ClusterToJob::RequestSample,
        ClusterToJob::Shutdown,
        ClusterToJob::ResumeAck {
            cap: Watts(190.0),
            cause: 17,
        },
    ]
}

fn job_to_cluster_reps() -> Vec<JobToCluster> {
    vec![
        JobToCluster::Hello {
            job: JobId(7),
            type_name: "bt.D.81".into(),
            nodes: 81,
        },
        JobToCluster::Sample(sample(7, 12, 200.0, 30.5, 4)),
        JobToCluster::Model {
            job: JobId(7),
            curve: PowerCurve::new(1.25e-5, -0.007, 1.9),
            samples: 23,
            cause: 512,
        },
        JobToCluster::Done {
            job: JobId(7),
            elapsed: Seconds(612.5),
        },
        JobToCluster::Resume {
            job: JobId(7),
            type_name: "bt.D.81".into(),
            nodes: 81,
            believed_cap: Watts(187.5),
            cause: 99,
        },
    ]
}

#[test]
fn representatives_are_exhaustive() {
    // A new variant lands here as a non-exhaustive-match error, forcing
    // the representative lists (and thus every test below) to grow.
    for m in cluster_to_job_reps() {
        match m {
            ClusterToJob::SetPowerCap { .. }
            | ClusterToJob::RequestSample
            | ClusterToJob::Shutdown
            | ClusterToJob::ResumeAck { .. } => {}
        }
    }
    for m in job_to_cluster_reps() {
        match m {
            JobToCluster::Hello { .. }
            | JobToCluster::Sample(_)
            | JobToCluster::Model { .. }
            | JobToCluster::Done { .. }
            | JobToCluster::Resume { .. } => {}
        }
    }
}

#[test]
fn encode_tags_unique_per_direction() {
    let down: Vec<u8> = cluster_to_job_reps()
        .iter()
        .map(|m| tag_of(&m.encode()))
        .collect();
    let up: Vec<u8> = job_to_cluster_reps()
        .iter()
        .map(|m| tag_of(&m.encode()))
        .collect();
    for tags in [&down, &up] {
        let mut sorted = (*tags).clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), tags.len(), "duplicate wire tag in {tags:?}");
    }
    // The v2 tag assignment is part of the protocol: encoders emit the
    // current version's tags only.
    assert_eq!(CODEC_VERSION, 2);
    assert_eq!(down, [4, 2, 3, 5]);
    assert_eq!(up, [1, 5, 6, 4, 7]);
}

#[test]
fn every_representative_round_trips() {
    for m in cluster_to_job_reps() {
        let back = ClusterToJob::decode(body_of(&m.encode())).expect("decode");
        assert_eq!(back, m);
    }
    for m in job_to_cluster_reps() {
        let back = JobToCluster::decode(body_of(&m.encode())).expect("decode");
        assert_eq!(back, m);
    }
}

proptest! {
    /// SetPowerCap round-trips for any finite cap and any cause id.
    #[test]
    fn set_power_cap_round_trips(cap in 0.0f64..1e7, cause in 0u64..u64::MAX) {
        let m = ClusterToJob::SetPowerCap { cap: Watts(cap), cause };
        prop_assert_eq!(ClusterToJob::decode(body_of(&m.encode())).unwrap(), m);
    }

    /// Hello round-trips for arbitrary job ids, names and node counts.
    #[test]
    fn hello_round_trips(
        job in 0u64..u64::MAX,
        type_name in "[a-zA-Z0-9._\\-]{0,64}",
        nodes in 0u32..u32::MAX,
    ) {
        let m = JobToCluster::Hello { job: JobId(job), type_name, nodes };
        prop_assert_eq!(JobToCluster::decode(body_of(&m.encode())).unwrap(), m);
    }

    /// Sample round-trips: every field survives, including the v2 cause.
    #[test]
    fn sample_round_trips(
        job in 0u64..u64::MAX,
        epochs in 0u64..u64::MAX,
        power in 0.0f64..1e5,
        ts in 0.0f64..1e7,
        cause in 0u64..u64::MAX,
    ) {
        let m = JobToCluster::Sample(sample(job, epochs, power, ts, cause));
        prop_assert_eq!(JobToCluster::decode(body_of(&m.encode())).unwrap(), m);
    }

    /// Model round-trips for any finite curve coefficients.
    #[test]
    fn model_round_trips(
        job in 0u64..u64::MAX,
        a in -1.0f64..1.0,
        b in -100.0f64..100.0,
        c in -1e4f64..1e4,
        samples in 0u32..u32::MAX,
        cause in 0u64..u64::MAX,
    ) {
        let m = JobToCluster::Model {
            job: JobId(job),
            curve: PowerCurve::new(a, b, c),
            samples,
            cause,
        };
        prop_assert_eq!(JobToCluster::decode(body_of(&m.encode())).unwrap(), m);
    }

    /// Done round-trips.
    #[test]
    fn done_round_trips(job in 0u64..u64::MAX, elapsed in 0.0f64..1e8) {
        let m = JobToCluster::Done { job: JobId(job), elapsed: Seconds(elapsed) };
        prop_assert_eq!(JobToCluster::decode(body_of(&m.encode())).unwrap(), m);
    }

    /// Resume round-trips, including the sentinel "no believed cap"
    /// value (-1.0) the endpoint sends after a budgeter restart.
    #[test]
    fn resume_round_trips(
        job in 0u64..u64::MAX,
        type_name in "[a-zA-Z0-9._\\-]{0,64}",
        nodes in 0u32..u32::MAX,
        cap in -1.0f64..1e7,
        cause in 0u64..u64::MAX,
    ) {
        let m = JobToCluster::Resume {
            job: JobId(job),
            type_name,
            nodes,
            believed_cap: Watts(cap),
            cause,
        };
        prop_assert_eq!(JobToCluster::decode(body_of(&m.encode())).unwrap(), m);
    }

    /// ResumeAck round-trips, including the "nothing on record" reply.
    #[test]
    fn resume_ack_round_trips(cap in -1.0f64..1e7, cause in 0u64..u64::MAX) {
        let m = ClusterToJob::ResumeAck { cap: Watts(cap), cause };
        prop_assert_eq!(ClusterToJob::decode(body_of(&m.encode())).unwrap(), m);
    }

    /// Every strict prefix of a valid body is rejected with an error —
    /// never a panic, never a silent partial decode. (Every field of
    /// every message is load-bearing, so a truncated body cannot decode.)
    #[test]
    fn truncated_bodies_error_not_panic(
        which in 0usize..5,
        cut_ppm in 0u32..1000,
    ) {
        let m = &job_to_cluster_reps()[which];
        let frame = m.encode();
        let full = &frame[4..];
        let cut = (full.len() as u64 * cut_ppm as u64 / 1000) as usize;
        let truncated = bytes::Bytes::copy_from_slice(&full[..cut]);
        prop_assert!(JobToCluster::decode(truncated).is_err(), "prefix {cut} of {}", full.len());
    }
}
