//! Process-level integration test: spawn the real `anord` daemon and two
//! real `anor-job` processes as separate OS processes talking TCP on
//! localhost — the deployment shape of the paper's Fig. 2.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn wait_with_timeout(child: &mut Child, timeout: Duration) -> Option<std::process::ExitStatus> {
    let start = Instant::now();
    loop {
        if let Ok(Some(status)) = child.try_wait() {
            return Some(status);
        }
        if start.elapsed() > timeout {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn daemon_and_two_job_processes_complete_a_shared_budget_run() {
    // 1. Start the daemon on an ephemeral port; it prints its address.
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_anord"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--policy",
            "even-slowdown",
            "--budget",
            "840",
            "--expect-jobs",
            "2",
            "--duration-secs",
            "120",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn anord");
    let stdout = daemon.stdout.take().expect("daemon stdout piped");
    let mut daemon = KillOnDrop(daemon);
    let mut reader = BufReader::new(stdout);
    let mut first = String::new();
    reader.read_line(&mut first).expect("read daemon banner");
    let addr = first
        .trim()
        .strip_prefix("anord listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first:?}"))
        .to_string();

    // 2. Launch two short jobs against it (IS pair: ~20 s virtual each,
    // replayed at 400x).
    let spawn_job = |id: &str, seed: &str| -> KillOnDrop {
        KillOnDrop(
            Command::new(env!("CARGO_BIN_EXE_anor-job"))
                .args([
                    "--connect",
                    &addr,
                    "--job-id",
                    id,
                    "--type",
                    "is.D.32",
                    "--seed",
                    seed,
                    "--speedup",
                    "400",
                    "--tick-ms",
                    "2",
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("spawn anor-job"),
        )
    };
    let mut job1 = spawn_job("1", "11");
    let mut job2 = spawn_job("2", "22");

    // 3. Jobs exit successfully and print GEOPM-style reports.
    for job in [&mut job1, &mut job2] {
        let status =
            wait_with_timeout(&mut job.0, Duration::from_secs(60)).expect("job process timed out");
        assert!(status.success(), "job exited with {status}");
    }
    for job in [job1, job2] {
        let mut out = String::new();
        let mut child = job;
        use std::io::Read;
        child
            .0
            .stdout
            .take()
            .expect("job stdout piped")
            .read_to_string(&mut out)
            .unwrap();
        assert!(out.contains("Application Totals"), "report missing: {out}");
        assert!(out.contains("epoch-count: 40"), "bad epoch count: {out}");
    }

    // 4. The daemon saw both Done messages and exits on its own.
    let status = wait_with_timeout(&mut daemon.0, Duration::from_secs(60))
        .expect("daemon did not exit after jobs completed");
    assert!(status.success(), "daemon exited with {status}");
    let mut rest = String::new();
    use std::io::Read;
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("job-1 done"), "daemon log: {rest}");
    assert!(rest.contains("job-2 done"), "daemon log: {rest}");
    assert!(rest.contains("all 2 expected jobs completed"));
}

#[test]
fn daemon_rejects_bad_configuration() {
    // No budget and no targets file: immediate configuration error.
    let out = Command::new(env!("CARGO_BIN_EXE_anord"))
        .args(["--listen", "127.0.0.1:0"])
        .output()
        .expect("run anord");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--budget"), "stderr: {err}");
}

#[test]
fn job_rejects_unknown_type() {
    let out = Command::new(env!("CARGO_BIN_EXE_anor-job"))
        .args([
            "--connect",
            "127.0.0.1:1", // never reached; type check comes first? No —
            // connect comes first, so use an unreachable port to check
            // the error path either way.
            "--type",
            "nosuch.Z.9",
        ])
        .output()
        .expect("run anor-job");
    assert!(!out.status.success());
}

#[test]
fn daemon_follows_a_targets_file_ladder() {
    // Write a power-target ladder the daemon will walk through.
    let dir = std::env::temp_dir().join(format!("anord-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let targets = dir.join("targets.txt");
    std::fs::write(&targets, "# time_s target_w\n0.0 840.0\n2.0 700.0\n").unwrap();
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_anord"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--targets",
            targets.to_str().unwrap(),
            "--expect-jobs",
            "1",
            "--duration-secs",
            "60",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn anord");
    let stdout = daemon.stdout.take().unwrap();
    let mut daemon = KillOnDrop(daemon);
    let mut reader = BufReader::new(stdout);
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let addr = first
        .trim()
        .strip_prefix("anord listening on ")
        .unwrap()
        .to_string();
    let mut job = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_anor-job"))
            .args([
                "--connect",
                &addr,
                "--job-id",
                "1",
                "--type",
                "is.D.32",
                "--speedup",
                "400",
                "--tick-ms",
                "2",
            ])
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn anor-job"),
    );
    let status = wait_with_timeout(&mut job.0, Duration::from_secs(60)).expect("job timed out");
    assert!(status.success());
    let status =
        wait_with_timeout(&mut daemon.0, Duration::from_secs(60)).expect("daemon timed out");
    assert!(status.success());
    std::fs::remove_dir_all(&dir).ok();
}
