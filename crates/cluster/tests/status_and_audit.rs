//! Live-ops-plane acceptance tests: the continuous invariant auditor
//! stays silent across a seeded chaos run with a full lease
//! expiry/resume cycle, provably fires (with a postmortem dump) on
//! injected accounting corruption, and the introspection endpoint serves
//! `/health`, `/metrics` and `/status` off a live budgeter.

use anor_cluster::budgeter::{BudgeterConfig, ClusterBudgeter};
use anor_cluster::status::{parse_json, Json};
use anor_cluster::{
    BudgetPolicy, EmulatedCluster, EmulatorConfig, FaultPlan, FramedStream, JobSetup, LeaseConfig,
    RetryPolicy, SessionState, StatusBoard, StreamOptions,
};
use anor_telemetry::ops::{http_get, OpsServer, StatusProvider};
use anor_telemetry::{Telemetry, Tracer};
use anor_types::msg::JobToCluster;
use anor_types::{JobId, Seconds, Watts};
use std::sync::Arc;
use std::time::Duration;

const INVARIANTS: [&str; 4] = [
    "watts_conservation",
    "lease_double_count",
    "reclaim_gauge_drift",
    "stale_session",
];

fn violation_counts(telemetry: &Telemetry) -> Vec<(&'static str, u64)> {
    INVARIANTS
        .iter()
        .map(|inv| {
            (
                *inv,
                telemetry
                    .counter("anor_invariant_violations_total", &[("invariant", inv)])
                    .get(),
            )
        })
        .collect()
}

/// The ISSUE acceptance scenario, emulator form: a seeded
/// `drop@17,corrupt@42` chaos plan forces disconnects and corrupted
/// frames mid-run; both jobs still finish, sessions resume, and the
/// continuous auditor reports **zero** violations of any invariant.
#[test]
fn chaos_run_with_resume_has_zero_invariant_violations() {
    let telemetry = Telemetry::new();
    let plan = FaultPlan::parse("drop@17,corrupt@42")
        .unwrap()
        .seeded(0xA11D);
    let mut cfg = EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, true)
        .with_telemetry(telemetry.clone())
        .with_faults(plan)
        .with_lease(LeaseConfig::after_misses(50))
        .with_retry(RetryPolicy {
            base_delay: Seconds(0.5),
            jitter: 0.0,
            ..RetryPolicy::default()
        });
    cfg.seed = 11;
    let report = EmulatedCluster::new(cfg)
        .run_static(
            &[JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")],
            Watts(840.0),
        )
        .expect("chaos run must complete");
    assert_eq!(report.jobs.len(), 2, "both jobs must finish under chaos");
    let reconnects = telemetry
        .counter("endpoint_session_reconnects_total", &[])
        .get();
    assert!(reconnects >= 1, "drop@17 must force a reconnect");
    for (invariant, count) in violation_counts(&telemetry) {
        assert_eq!(count, 0, "invariant `{invariant}` violated {count}x");
    }
}

/// Direct budgeter form of the lease cycle: a connection dies, its lease
/// expires (watts reclaimed), the job resumes (watts restored) — and the
/// auditor, running every pump throughout, never fires. The status board
/// tracks the cycle: the job's row goes `connected` → `gone` (with
/// reclaimed watts on record) → `connected`.
#[test]
fn lease_expiry_and_resume_stay_audit_clean() {
    let telemetry = Telemetry::new();
    let board = StatusBoard::new();
    let (mut b, addr) = ClusterBudgeter::builder(BudgeterConfig::new(BudgetPolicy::Uniform, false))
        .telemetry(telemetry.clone())
        .lease(LeaseConfig::after_misses(8))
        .status(board.clone())
        .bind()
        .unwrap();
    let budget = Watts(540.0);
    let pump_until = |b: &mut ClusterBudgeter, done: &mut dyn FnMut(&ClusterBudgeter) -> bool| {
        for _ in 0..1000 {
            b.pump(budget).unwrap();
            if done(b) {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("pump_until timed out");
    };
    let connect = || {
        FramedStream::new(
            std::net::TcpStream::connect(addr).unwrap(),
            StreamOptions::default(),
        )
        .unwrap()
    };
    let hello = |job: u64, nodes: u32| {
        JobToCluster::Hello {
            job: JobId(job),
            type_name: "cg.D.32".into(),
            nodes,
        }
        .encode()
    };
    let job_row = |job: u64| -> Json {
        let v = parse_json(&board.render_json()).unwrap();
        v.get("jobs")
            .and_then(Json::as_array)
            .and_then(|jobs| {
                jobs.iter()
                    .find(|j| j.get("job").and_then(Json::as_u64) == Some(job))
            })
            .cloned()
            .expect("job row on the board")
    };

    let mut c1 = connect();
    let mut c2 = connect();
    c1.send(hello(1, 1)).unwrap();
    c2.send(hello(2, 2)).unwrap();
    pump_until(&mut b, &mut |b| {
        b.active_jobs() == 2 && b.job_caps().iter().all(|(_, c)| c.is_some())
    });
    assert_eq!(
        job_row(1).get("state").and_then(Json::as_str),
        Some("connected")
    );

    // Outage: job 1's endpoint dies and its lease runs out.
    drop(c1);
    pump_until(&mut b, &mut |b| {
        b.job_session(JobId(1)) == Some(SessionState::Gone)
    });
    let row = job_row(1);
    assert_eq!(row.get("state").and_then(Json::as_str), Some("gone"));
    assert!(
        row.get("reclaimed").and_then(Json::as_f64).unwrap_or(0.0) > 0.0,
        "board must show the reclaimed watts"
    );
    let v = parse_json(&board.render_json()).unwrap();
    assert!(
        v.get("reclaimed_watts")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );

    // Resume: the watts are restored and redistribution converges again.
    let mut c1b = connect();
    c1b.send(
        JobToCluster::Resume {
            job: JobId(1),
            type_name: "cg.D.32".into(),
            nodes: 1,
            believed_cap: Watts(180.0),
            cause: 9,
        }
        .encode(),
    )
    .unwrap();
    pump_until(&mut b, &mut |b| {
        b.job_session(JobId(1)) == Some(SessionState::Connected)
    });
    assert_eq!(
        job_row(1).get("state").and_then(Json::as_str),
        Some("connected")
    );
    assert_eq!(b.reclaimed_watts(), Watts::ZERO);

    // The whole cycle ran with the auditor active on every pump.
    assert!(b.pump_count() > 0);
    assert_eq!(b.invariant_violations(), 0);
    for (invariant, count) in violation_counts(&telemetry) {
        assert_eq!(count, 0, "invariant `{invariant}` violated {count}x");
    }
    let v = parse_json(&board.render_json()).unwrap();
    assert_eq!(
        v.get("invariant_violations").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(v.get("budget").and_then(Json::as_f64), Some(540.0));
}

/// Injected corruption must trip the auditor: skewing a connected job's
/// accounting (phantom reclaimed watts + inflated cap) fires the
/// double-count, gauge-drift and conservation tripwires, emits the
/// violation counter, and dumps a postmortem to disk.
#[test]
fn injected_corruption_fires_the_auditor_and_dumps_postmortem() {
    let dir = std::env::temp_dir().join(format!("anor-audit-postmortem-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let telemetry = Telemetry::new();
    let tracer = Tracer::to_dir(&dir).unwrap();
    let (mut b, addr) = ClusterBudgeter::builder(BudgeterConfig::new(BudgetPolicy::Uniform, false))
        .telemetry(telemetry.clone())
        .tracer(&tracer)
        .bind()
        .unwrap();
    let mut client = FramedStream::new(
        std::net::TcpStream::connect(addr).unwrap(),
        StreamOptions::default(),
    )
    .unwrap();
    client
        .send(
            JobToCluster::Hello {
                job: JobId(1),
                type_name: "cg.D.32".into(),
                nodes: 2,
            }
            .encode(),
        )
        .unwrap();
    for _ in 0..1000 {
        b.pump(Watts(400.0)).unwrap();
        if b.job_caps().iter().any(|(_, c)| c.is_some()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(b.invariant_violations(), 0, "clean before corruption");
    let dumps_before = tracer.postmortems();

    b.corrupt_for_audit(JobId(1), Watts(500.0));
    // Present the corrupted state to the auditor directly: a full pump's
    // redistribute would repair the inflated cap before the audit (which
    // is itself conservation working), hiding the conservation tripwire.
    b.audit_now(Watts(400.0));

    assert!(
        b.invariant_violations() >= 3,
        "double-count, gauge-drift and conservation must all fire: {}",
        b.invariant_violations()
    );
    let counts = violation_counts(&telemetry);
    let get = |inv: &str| {
        counts
            .iter()
            .find(|(i, _)| *i == inv)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    assert!(get("lease_double_count") >= 1);
    assert!(get("reclaim_gauge_drift") >= 1);
    assert!(get("watts_conservation") >= 1);
    assert!(
        tracer.postmortems() > dumps_before,
        "a violation must dump a postmortem"
    );
    // A full pump with the same persistent corruption: the phantom
    // reclaim keeps firing (and keeps counting), but redistribute repairs
    // the inflated cap so conservation self-heals — and no invariant
    // dumps a second postmortem (one per kind).
    let dumps_after_first = tracer.postmortems();
    let conservation_after_first = get("watts_conservation");
    let violations_after_first = b.invariant_violations();
    b.pump(Watts(400.0)).unwrap();
    assert!(b.invariant_violations() > violations_after_first);
    let counts = violation_counts(&telemetry);
    let get = |inv: &str| {
        counts
            .iter()
            .find(|(i, _)| *i == inv)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    assert_eq!(
        get("watts_conservation"),
        conservation_after_first,
        "redistribute must repair the inflated cap"
    );
    assert_eq!(tracer.postmortems(), dumps_after_first);

    tracer.flush().unwrap();
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy().to_string();
            name.starts_with("postmortem-") && name.contains("invariant")
        })
        .collect();
    assert!(!dumps.is_empty(), "no invariant postmortem file on disk");
    let body = std::fs::read_to_string(dumps[0].path()).unwrap();
    assert!(
        body.contains("invariant_violation"),
        "postmortem must carry the violation event"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// End-to-end introspection: a live budgeter publishing to a board that
/// an [`OpsServer`] serves. `/health` answers, `/metrics` carries the
/// budgeter's own series, `/status` is the board's JSON.
#[test]
fn ops_endpoint_serves_live_budgeter_state() {
    let telemetry = Telemetry::new();
    let board = StatusBoard::new();
    let provider: StatusProvider = {
        let board = board.clone();
        Arc::new(move || board.render_json())
    };
    let server = OpsServer::bind("127.0.0.1:0", telemetry.clone(), provider).unwrap();
    let ops_addr = server.local_addr().to_string();
    let (mut b, addr) = ClusterBudgeter::builder(BudgeterConfig::new(BudgetPolicy::Uniform, false))
        .telemetry(telemetry.clone())
        .status(board)
        .bind()
        .unwrap();
    let mut client = FramedStream::new(
        std::net::TcpStream::connect(addr).unwrap(),
        StreamOptions::default(),
    )
    .unwrap();
    client
        .send(
            JobToCluster::Hello {
                job: JobId(7),
                type_name: "bt.D.81".into(),
                nodes: 2,
            }
            .encode(),
        )
        .unwrap();
    for _ in 0..1000 {
        b.pump(Watts(400.0)).unwrap();
        if b.job_caps().iter().any(|(_, c)| c.is_some()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let timeout = Duration::from_secs(2);
    let (code, body) = http_get(&ops_addr, "/health", timeout).unwrap();
    assert_eq!((code, body.as_str()), (200, "ok\n"));

    let (code, body) = http_get(&ops_addr, "/metrics", timeout).unwrap();
    assert_eq!(code, 200);
    assert!(
        body.contains("# TYPE budgeter_pump_seconds histogram"),
        "{body}"
    );
    assert!(body.contains("budgeter_active_jobs 1"), "{body}");

    let (code, body) = http_get(&ops_addr, "/status", timeout).unwrap();
    assert_eq!(code, 200);
    let v = parse_json(&body).unwrap();
    assert!(v.get("pumps").and_then(Json::as_u64).unwrap_or(0) > 0);
    assert_eq!(v.get("active_jobs").and_then(Json::as_u64), Some(1));
    assert_eq!(
        v.get("invariant_violations").and_then(Json::as_u64),
        Some(0)
    );
    let jobs = v.get("jobs").and_then(Json::as_array).unwrap();
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].get("job").and_then(Json::as_u64), Some(7));
    assert_eq!(
        jobs[0].get("state").and_then(Json::as_str),
        Some("connected")
    );
    assert!(jobs[0].get("cap").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
}
