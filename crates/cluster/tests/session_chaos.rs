//! End-to-end fault-tolerance tests: budgeter kill/restart with session
//! resume, chaos-injected emulator runs that must stay deterministic,
//! and property tests over arbitrary fault plans (codec never panics)
//! and lease accounting (reclaimed watts are never double-counted).

use anor_cluster::budgeter::{BudgeterConfig, ClusterBudgeter};
use anor_cluster::{
    BudgetPolicy, EmulatedCluster, EmulatorConfig, FaultPlan, JobEndpoint, JobSetup, LeaseConfig,
    RetryPolicy, SessionState,
};
use anor_geopm::endpoint_pair;
use anor_model::{ModelerConfig, PowerModeler};
use anor_telemetry::Telemetry;
use anor_types::{CapRange, JobId, PowerCurve, Seconds, Watts};
use proptest::prelude::*;
use std::time::Duration;

fn modeler() -> PowerModeler {
    let mut cfg = ModelerConfig::paper();
    cfg.dither_fraction = 0.0;
    let default = PowerCurve::from_anchor(Seconds(0.5), 0.1, CapRange::paper_node());
    PowerModeler::with_default(cfg, default)
}

/// The tentpole end-to-end scenario: the budgeter process dies mid-run
/// and is restarted on the same listening socket; the endpoint must ride
/// out the outage on its believed cap, resume the session, and end up
/// with an identical cap once the restarted budgeter rebalances.
#[test]
fn budgeter_restart_resumes_with_identical_cap() {
    let cfg = || BudgeterConfig::new(BudgetPolicy::Uniform, false);
    let telemetry = Telemetry::new();
    let (mut budgeter, addr) = ClusterBudgeter::builder(cfg())
        .telemetry(telemetry.clone())
        .bind()
        .unwrap();
    let (modeler_side, _agent) = endpoint_pair();
    let retry = RetryPolicy {
        base_delay: Seconds(0.5),
        jitter: 0.0,
        ..RetryPolicy::default()
    };
    let mut je = JobEndpoint::builder(addr, JobId(1), "bt.D.81", 2, modeler_side, modeler())
        .retry(retry)
        .telemetry(telemetry.clone())
        .connect()
        .unwrap();
    // Drive both sides until the cap lands: 400 W over 2 nodes = 200 W.
    let mut now = Seconds(0.0);
    for _ in 0..1000 {
        budgeter.pump(Watts(400.0)).unwrap();
        je.pump(now).unwrap();
        now += Seconds(0.1);
        if je.budget_cap().is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let cap_before = je.budget_cap().expect("cap never arrived");
    assert!((cap_before.value() - 200.0).abs() < 2.0, "cap {cap_before}");

    // Kill the budgeter but keep its socket: exactly a daemon restart.
    let listener = budgeter.into_listener();
    for _ in 0..1000 {
        je.pump(now).unwrap();
        now += Seconds(0.1);
        if !je.session_state().is_connected() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        matches!(je.session_state(), SessionState::Reconnecting { .. }),
        "{:?}",
        je.session_state()
    );
    // The silent-stranding fix: a believed cap stays in force while
    // reconnecting, so power safety does not lapse with the daemon.
    assert_eq!(je.budget_cap(), Some(cap_before));

    let (mut budgeter, _) = ClusterBudgeter::builder(cfg())
        .listener(listener)
        .telemetry(telemetry.clone())
        .bind()
        .unwrap();
    // The endpoint redials, sends Resume, and the restarted budgeter
    // (which has nothing on record) re-registers it and rebalances to
    // an identical cap under the same budget.
    for _ in 0..1000 {
        budgeter.pump(Watts(400.0)).unwrap();
        je.pump(now).unwrap();
        now += Seconds(0.1);
        if je.session_state().is_connected() && budgeter.active_jobs() == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(je.session_state().is_connected(), "endpoint never resumed");
    assert_eq!(
        budgeter.job_session(JobId(1)),
        Some(SessionState::Connected)
    );
    // Believed cap survived the restart...
    assert_eq!(je.budget_cap(), Some(cap_before));
    // ...and the fresh rebalance re-derives the identical value.
    for _ in 0..1000 {
        budgeter.pump(Watts(400.0)).unwrap();
        je.pump(now).unwrap();
        now += Seconds(0.1);
        if budgeter.job_caps()[0].1.is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(je.budget_cap(), Some(cap_before));
    assert_eq!(
        telemetry
            .counter("endpoint_session_reconnects_total", &[])
            .get(),
        1
    );
}

/// One chaos-injected emulator run; returns the integer session counters
/// the determinism assertion compares.
fn chaos_counters(seed: u64) -> (usize, u64, u64, u64, u64) {
    let telemetry = Telemetry::new();
    let plan = FaultPlan::parse("drop@3,drop@9,drop@15")
        .unwrap()
        .seeded(0xC0FFEE);
    let mut cfg = EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, false)
        .with_telemetry(telemetry.clone())
        .with_faults(plan)
        .with_retry(RetryPolicy {
            base_delay: Seconds(0.5),
            jitter: 0.0,
            ..RetryPolicy::default()
        });
    cfg.seed = seed;
    let report = EmulatedCluster::new(cfg)
        .run_static(
            &[JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")],
            Watts(840.0),
        )
        .expect("chaos run must still complete");
    (
        report.jobs.len(),
        telemetry
            .counter("endpoint_session_reconnects_total", &[])
            .get(),
        telemetry
            .counter("transport_faults_injected_total", &[("role", "endpoint")])
            .get(),
        telemetry.counter("endpoint_sessions_gone_total", &[]).get(),
        telemetry.counter("leases_expired_total", &[]).get(),
    )
}

/// A seeded fault plan forces ≥3 disconnects mid-run; the run still
/// completes, every session ends Connected or Gone (all jobs finish),
/// and — the determinism acceptance — the same seed yields identical
/// integer session counters across two full runs.
#[test]
fn chaos_run_completes_and_is_deterministic() {
    let a = chaos_counters(7);
    let b = chaos_counters(7);
    assert_eq!(a, b, "same seed must give identical session counters");
    let (jobs, reconnects, injected, gone, _expired) = a;
    assert_eq!(jobs, 2, "both jobs must finish under chaos");
    assert!(
        reconnects >= 3,
        "plan schedules 3 drops per job: {reconnects} reconnect(s)"
    );
    assert!(injected >= 3, "faults must actually fire: {injected}");
    assert_eq!(gone, 0, "retry budget is ample; no session should die");
}

/// Watts conservation around lease expiry and resume: the busy budget is
/// fully allocated across lease-holding jobs before the outage, after
/// the reclaim, and after the resume; the `watts_reclaimed` gauge always
/// equals the per-entry ground truth (so nothing is double-counted) and
/// returns to zero when the lease is restored.
#[test]
fn reclaimed_watts_are_conserved_across_expiry_and_resume() {
    use anor_types::msg::{ClusterToJob, JobToCluster};
    let telemetry = Telemetry::new();
    let (mut b, addr) = ClusterBudgeter::builder(BudgeterConfig::new(BudgetPolicy::Uniform, false))
        .telemetry(telemetry.clone())
        .lease(LeaseConfig::after_misses(8))
        .bind()
        .unwrap();
    // 540 W over 3 nodes = 180 W/node before the outage and 270 W/node
    // after it — both inside the paper cap range, so clamping never
    // hides watts from the conservation sums below.
    let budget = Watts(540.0);
    let gauge = telemetry.gauge("watts_reclaimed", &[]);
    let allocated = |b: &ClusterBudgeter| -> f64 {
        b.session_states()
            .iter()
            .filter(|(_, s)| !s.is_gone())
            .filter_map(|(job, _)| {
                let nodes = b.believed_view(*job)?.nodes as f64;
                let cap = b.job_caps().iter().find(|(j, _)| j == job)?.1?;
                Some(cap.value() * nodes)
            })
            .sum()
    };
    let check_gauge = |b: &ClusterBudgeter| {
        let g = gauge.get();
        let truth = b.reclaimed_watts().value();
        assert!((g - truth).abs() < 1e-9, "gauge {g} vs entries {truth}");
    };

    let mut c1 = anor_cluster::FramedStream::new(
        std::net::TcpStream::connect(addr).unwrap(),
        anor_cluster::StreamOptions::default(),
    )
    .unwrap();
    let mut c2 = anor_cluster::FramedStream::new(
        std::net::TcpStream::connect(addr).unwrap(),
        anor_cluster::StreamOptions::default(),
    )
    .unwrap();
    let hello = |job: u64, nodes: u32| {
        JobToCluster::Hello {
            job: JobId(job),
            type_name: "cg.D.32".into(),
            nodes,
        }
        .encode()
    };
    c1.send(hello(1, 1)).unwrap();
    c2.send(hello(2, 2)).unwrap();
    let pump_until = |b: &mut ClusterBudgeter, done: &mut dyn FnMut(&ClusterBudgeter) -> bool| {
        for _ in 0..1000 {
            b.pump(budget).unwrap();
            if done(b) {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("pump_until timed out");
    };
    pump_until(&mut b, &mut |b| {
        b.active_jobs() == 2 && b.job_caps().iter().all(|(_, c)| c.is_some())
    });
    check_gauge(&b);
    let total = allocated(&b);
    assert!((total - budget.value()).abs() < 3.0, "pre-outage {total}");

    // Job 1's endpoint dies; its lease expires and the watts come back.
    drop(c1);
    pump_until(&mut b, &mut |b| {
        b.job_session(JobId(1)) == Some(SessionState::Gone)
    });
    check_gauge(&b);
    let reclaimed = b.reclaimed_watts().value();
    assert!(reclaimed > 0.0, "expiry must reclaim watts");
    // Extra pumps must not double-count the reclaim.
    for _ in 0..20 {
        b.pump(budget).unwrap();
    }
    check_gauge(&b);
    assert_eq!(b.reclaimed_watts().value(), reclaimed, "no double count");
    assert_eq!(telemetry.counter("leases_expired_total", &[]).get(), 1);
    // The survivor re-absorbs the whole budget.
    pump_until(&mut b, &mut |b| (allocated(b) - budget.value()).abs() < 3.0);

    // Job 1 resumes: reclaimed watts return to the pool and the gauge
    // drains back to zero.
    let mut c1b = anor_cluster::FramedStream::new(
        std::net::TcpStream::connect(addr).unwrap(),
        anor_cluster::StreamOptions::default(),
    )
    .unwrap();
    c1b.send(
        JobToCluster::Resume {
            job: JobId(1),
            type_name: "cg.D.32".into(),
            nodes: 1,
            believed_cap: Watts(180.0),
            cause: 9,
        }
        .encode(),
    )
    .unwrap();
    pump_until(&mut b, &mut |b| {
        b.job_session(JobId(1)) == Some(SessionState::Connected)
    });
    check_gauge(&b);
    assert_eq!(b.reclaimed_watts(), Watts::ZERO, "lease restored");
    pump_until(&mut b, &mut |b| {
        (allocated(b) - budget.value()).abs() < 3.0 && b.active_jobs() == 2
    });
    // The resume ack is addressed to the rejoining connection.
    let mut acked = false;
    for _ in 0..1000 {
        b.pump(budget).unwrap();
        c1b.flush_some().unwrap();
        for body in c1b.recv_frames().unwrap() {
            if matches!(
                ClusterToJob::decode(body),
                Ok(ClusterToJob::ResumeAck { .. })
            ) {
                acked = true;
            }
        }
        if acked {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(acked, "resume must be acknowledged");
}

/// Strategy: an arbitrary fault plan of up to 6 scheduled faults over
/// the first 24 frames.
fn arb_plan() -> impl Strategy<Value = Vec<(u8, u64, u32)>> {
    proptest::collection::vec((0u8..5, 1u64..24, 1u32..4), 0..6)
}

fn build_plan(raw: &[(u8, u64, u32)], seed: u64) -> FaultPlan {
    use anor_cluster::{FaultKind, FaultSpec};
    let specs = raw
        .iter()
        .map(|&(k, at, arg)| FaultSpec {
            at,
            kind: match k {
                0 => FaultKind::Drop,
                1 => FaultKind::Delay(arg),
                2 => FaultKind::Duplicate,
                3 => FaultKind::Truncate,
                _ => FaultKind::Corrupt,
            },
        })
        .collect();
    FaultPlan::new(specs).seeded(seed)
}

proptest! {
    /// Any fault plan — any mix of drops, delays, duplicates,
    /// truncations and corruptions at any frames — must never panic the
    /// codec on either side. The receiver may see errors (that is the
    /// point) but must keep returning typed results.
    #[test]
    fn arbitrary_fault_plans_never_panic_the_codec(
        raw in arb_plan(),
        seed in 0u64..u64::MAX,
    ) {
        use anor_cluster::{FramedStream, StreamOptions};
        use anor_types::msg::JobToCluster;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (server_raw, _) = listener.accept().unwrap();
        let plan = build_plan(&raw, seed);
        let mut client =
            FramedStream::new(client, StreamOptions::default().faults(plan.clone())).unwrap();
        let mut server = FramedStream::new(server_raw, StreamOptions::default()).unwrap();
        for i in 0..24u64 {
            // Send errors are tolerated (a Drop/Truncate fault cuts the
            // link mid-run) — what is forbidden is a panic.
            let _ = client.send(
                JobToCluster::Hello {
                    job: JobId(i),
                    type_name: "bt.D.81".into(),
                    nodes: 2,
                }
                .encode(),
            );
            let _ = client.flush_some();
            match server.recv_frames() {
                Ok(bodies) => {
                    for body in bodies {
                        // Corrupt frames may or may not decode; both
                        // outcomes are fine, panics are not.
                        let _ = JobToCluster::decode(body);
                    }
                }
                Err(_) => break, // oversize reject closed the stream
            }
        }
        // The plan's counters stayed coherent.
        prop_assert!(plan.injected() <= raw.len() as u64);
        prop_assert!(plan.frames_seen() <= 24);
    }
}
