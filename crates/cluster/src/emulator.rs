//! The emulated 16-node cluster harness.
//!
//! Substitutes for the paper's real 16-node Xeon cluster (DESIGN.md):
//! simulated nodes run synthetic NPB-shaped workloads under a GEOPM
//! runtime per job, one job-tier endpoint process per job talks real
//! localhost TCP to the cluster budgeter daemon, and everything is pumped
//! under a single virtual clock so an hour-long schedule replays in
//! seconds while exercising the same code paths end to end.

use crate::budgeter::{BudgeterConfig, ClusterBudgeter, LeaseConfig};
use crate::endpoint::JobEndpoint;
use crate::session::{FaultPlan, RetryPolicy};
use crate::transport::{TransportKind, TransportOptions};
use anor_aqa::{PowerTarget, TrackingRecorder};
use anor_geopm::{JobReport, JobRuntime};
use anor_model::{DriftDetector, ModelerConfig, PowerModeler};
use anor_platform::{Node, PerformanceVariation, Phase};
use anor_telemetry::{FlightRecorder, Telemetry, Timer, Tracer};
use anor_types::{AnorError, Catalog, JobId, NodeId, Result, Seconds, Watts};

pub use crate::budgeter::BudgetPolicy;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct EmulatorConfig {
    /// Cluster size (paper: 16).
    pub nodes: u32,
    /// Budget distribution policy.
    pub policy: BudgetPolicy,
    /// Fold job-tier model feedback into the budgeter's views?
    pub feedback: bool,
    /// Virtual tick.
    pub tick: Seconds,
    /// Idle CPU power per node.
    pub idle_power: Watts,
    /// Job-type catalog.
    pub catalog: Catalog,
    /// Determinism seed.
    pub seed: u64,
    /// Enable the modeler's exploratory cap dither (only useful together
    /// with `feedback`).
    pub dither: bool,
    /// Per-node performance-variation σ (0 = nominal hardware).
    pub variation_sigma: f64,
    /// Override the modeler's retrain threshold (paper default: 10
    /// epochs). Used by the ablation benches.
    pub retrain_epochs: Option<u64>,
    /// Override the modeler's dither amplitude (fraction of the cap
    /// span). Used by the ablation benches.
    pub dither_fraction: Option<f64>,
    /// Batch-system setup and teardown time per job (Section 7.2): the
    /// job's nodes are held but draw only idle power before the
    /// application starts and after it finishes.
    pub setup_teardown: Seconds,
    /// Telemetry handle shared by the budgeter, every endpoint and the
    /// harness loop itself. Defaults to an in-memory handle; runners
    /// pass `Telemetry::to_dir(..)` for `--telemetry <dir>`.
    pub telemetry: Telemetry,
    /// Causal tracer shared by the budgeter, every endpoint/runtime and
    /// the per-job modelers. `None` disables tracing entirely; runners
    /// pass `Tracer::to_dir(..)` for `--trace <dir>`.
    pub tracer: Option<Tracer>,
    /// Seeded chaos schedule injected into every endpoint's transport
    /// (each job gets an independent [`FaultPlan::fork`] so the schedule
    /// stays deterministic per job). `None` runs fault-free.
    pub faults: Option<FaultPlan>,
    /// Endpoint reconnect policy for lost budgeter links.
    pub retry: RetryPolicy,
    /// Budgeter-side lease policy for silent/disconnected jobs.
    pub lease: LeaseConfig,
    /// Flight recorder attached to the budgeter: every inbound frame,
    /// connection/lease transition and emitted cap decision is logged
    /// for `anor-replay`. `None` disables recording.
    pub recorder: Option<FlightRecorder>,
    /// Budgeter connection plane: blocking (default) or the sharded
    /// reactor. Decisions are byte-identical either way; the reactor
    /// trades one pump thread for per-shard socket sweeps.
    pub transport: TransportOptions,
}

impl EmulatorConfig {
    /// The paper's 16-node platform with a given policy/feedback setting.
    pub fn paper(policy: BudgetPolicy, feedback: bool) -> Self {
        EmulatorConfig {
            nodes: 16,
            policy,
            feedback,
            tick: Seconds(0.5),
            idle_power: Watts(90.0),
            catalog: anor_types::standard_catalog(),
            seed: 1,
            dither: feedback,
            variation_sigma: 0.0,
            retrain_epochs: None,
            dither_fraction: None,
            setup_teardown: Seconds::ZERO,
            telemetry: Telemetry::new(),
            tracer: None,
            faults: None,
            retry: RetryPolicy::default(),
            lease: LeaseConfig::default(),
            recorder: None,
            transport: TransportOptions::default(),
        }
    }

    /// Record the run into `telemetry` (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Causally trace the run into `tracer` (builder style).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Inject a seeded chaos schedule into every endpoint's transport
    /// (builder style). Pairs naturally with [`LeaseConfig::after_misses`]
    /// so reclaimed leases are observable within short runs.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Override the endpoint reconnect policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Override the budgeter lease policy (builder style).
    pub fn with_lease(mut self, lease: LeaseConfig) -> Self {
        self.lease = lease;
        self
    }

    /// Flight-record the budgeter side of the run (builder style). Pair
    /// with [`crate::recorder_meta`] so `anor-replay` can reconstruct the
    /// exact budgeter configuration from the recording header.
    pub fn with_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Select the budgeter's connection plane (builder style). The
    /// blocking default sweeps sockets inline on the pump thread; the
    /// reactor fans socket I/O out across shard threads.
    pub fn with_transport(mut self, kind: TransportKind) -> Self {
        self.transport.kind = kind;
        self
    }
}

/// One job to run in the emulated cluster.
#[derive(Debug, Clone)]
pub struct JobSetup {
    /// The job's true type (catalog name) — what it actually executes as.
    pub true_type: String,
    /// The type name announced to the budgeter (misclassification = a
    /// different name; unknown names hit the budgeter's default rule).
    pub announced: String,
    /// Node-count override (defaults to the true spec's footprint).
    pub nodes: Option<u32>,
    /// Submission time.
    pub submit: Seconds,
    /// Multi-phase profile (Section 8); `None` runs the plain workload.
    pub phases: Option<Vec<Phase>>,
}

impl JobSetup {
    /// A correctly classified job submitted at t = 0.
    pub fn known(name: &str) -> Self {
        JobSetup {
            true_type: name.to_string(),
            announced: name.to_string(),
            nodes: None,
            submit: Seconds::ZERO,
            phases: None,
        }
    }

    /// A job of `true_type` misclassified as `announced`, at t = 0.
    pub fn misclassified(true_type: &str, announced: &str) -> Self {
        JobSetup {
            true_type: true_type.to_string(),
            announced: announced.to_string(),
            nodes: None,
            submit: Seconds::ZERO,
            phases: None,
        }
    }

    /// Set the submission time.
    pub fn at(mut self, submit: Seconds) -> Self {
        self.submit = submit;
        self
    }

    /// Run as a multi-phase job with the given phase profile.
    pub fn with_phases(mut self, phases: Vec<Phase>) -> Self {
        self.phases = Some(phases);
        self
    }
}

/// Outcome of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Cluster job id (submission order).
    pub job: JobId,
    /// True type name.
    pub true_type: String,
    /// Announced type name.
    pub announced: String,
    /// Submission time.
    pub submit: Seconds,
    /// Start time.
    pub start: Seconds,
    /// Application runtime (GEOPM report "Application Totals").
    pub elapsed: Seconds,
    /// Execution slowdown vs the type's nominal uncapped time.
    pub slowdown: f64,
}

/// Power-objective mode for a run.
#[derive(Debug, Clone)]
enum PowerMode {
    /// A constant budget shared by the busy nodes only (Figs. 6–8).
    StaticBusyBudget(Watts),
    /// A whole-cluster moving target (Figs. 9–10); the busy budget is the
    /// target minus idle-node power.
    Target(PowerTarget),
}

/// Summary of one emulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobResult>,
    /// 90th-percentile tracking error (target mode only).
    pub tracking_p90: Option<f64>,
    /// Fraction of ticks within 30% error (target mode only).
    pub tracking_within_30: Option<f64>,
    /// Time series of (time, target, measured) when requested.
    pub power_trace: Vec<(Seconds, Watts, Watts)>,
    /// Per-job GEOPM reports ("Application Totals"), in submission order.
    pub reports: Vec<JobReport>,
}

impl RunReport {
    /// Mean slowdown across jobs whose true type is `name`.
    pub fn mean_slowdown(&self, name: &str) -> Option<f64> {
        let xs: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| j.true_type == name)
            .map(|j| j.slowdown)
            .collect();
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    }
}

struct ActiveJob {
    runtime: JobRuntime,
    endpoint: JobEndpoint,
    setup_idx: usize,
    started_at: Seconds,
}

/// A job holding nodes while the batch system sets it up or tears it
/// down (nodes draw idle power only).
struct HeldJob {
    setup_idx: usize,
    nodes: Vec<Node>,
    remaining: Seconds,
    held_since: Seconds,
}

/// The emulated cluster.
pub struct EmulatedCluster {
    cfg: EmulatorConfig,
}

impl EmulatedCluster {
    /// Build a harness.
    pub fn new(cfg: EmulatorConfig) -> Self {
        EmulatedCluster { cfg }
    }

    /// Run co-scheduled jobs under a constant busy-node budget (the
    /// Fig. 6–8 setup: "a static power budget that is shared across 4
    /// nodes").
    pub fn run_static(&self, jobs: &[JobSetup], busy_budget: Watts) -> Result<RunReport> {
        self.run(jobs, PowerMode::StaticBusyBudget(busy_budget), false)
    }

    /// Run a schedule against a whole-cluster moving power target
    /// (the Fig. 9–10 setup). `trace` retains the per-tick power series.
    pub fn run_demand_response(
        &self,
        jobs: &[JobSetup],
        target: PowerTarget,
        trace: bool,
    ) -> Result<RunReport> {
        self.run(jobs, PowerMode::Target(target), trace)
    }

    fn modeler_for(&self, believed: &anor_types::JobTypeSpec) -> PowerModeler {
        let mut mcfg = ModelerConfig::paper();
        mcfg.cap_range = believed.cap_range;
        if !self.cfg.dither {
            mcfg.dither_fraction = 0.0;
        }
        if let Some(n) = self.cfg.retrain_epochs {
            mcfg.retrain_epochs = n;
        }
        if let Some(f) = self.cfg.dither_fraction {
            mcfg.dither_fraction = f;
        }
        let mut modeler = PowerModeler::with_precharacterized(mcfg, believed.epoch_curve());
        modeler.attach_telemetry(&self.cfg.telemetry);
        if self.cfg.feedback {
            // Feedback runs also watch for phase changes (Section 8).
            modeler.with_drift_detection(DriftDetector::paper())
        } else {
            modeler
        }
    }

    /// Build and connect one job-tier endpoint with the harness-wide
    /// session knobs (retry, per-job fault fork, telemetry, tracer).
    #[allow(clippy::too_many_arguments)]
    fn connect_endpoint(
        &self,
        addr: std::net::SocketAddr,
        job_id: JobId,
        announced: &str,
        nodes: u32,
        modeler_side: anor_geopm::EndpointModeler,
        believed: &anor_types::JobTypeSpec,
        telemetry: &Telemetry,
    ) -> Result<JobEndpoint> {
        let cfg = &self.cfg;
        let mut b = JobEndpoint::builder(
            addr,
            job_id,
            announced,
            nodes,
            modeler_side,
            self.modeler_for(believed),
        )
        .telemetry(telemetry.clone())
        .retry(cfg.retry);
        if let Some(plan) = &cfg.faults {
            // Independent per-job schedule: same spec, salted seed, own
            // frame counter — deterministic across runs with one seed.
            b = b.faults(plan.fork(job_id.0));
        }
        if let Some(t) = &cfg.tracer {
            b = b.tracer(t);
        }
        b.connect()
    }

    fn run(&self, setups: &[JobSetup], mode: PowerMode, trace: bool) -> Result<RunReport> {
        if setups.is_empty() {
            return Ok(RunReport {
                jobs: Vec::new(),
                tracking_p90: None,
                tracking_within_30: None,
                power_trace: Vec::new(),
                reports: Vec::new(),
            });
        }
        let cfg = &self.cfg;
        let variation = if cfg.variation_sigma > 0.0 {
            PerformanceVariation::with_sigma(cfg.nodes as usize, cfg.variation_sigma, cfg.seed)
        } else {
            PerformanceVariation::none(cfg.nodes as usize)
        };
        // Node pool.
        let mut pool: Vec<Node> = (0..cfg.nodes)
            .map(|i| {
                Node::new(
                    NodeId(i),
                    anor_platform::NodeConfig::paper(),
                    variation.coeff(NodeId(i)),
                )
            })
            .collect();
        // Budgeter daemon.
        let telemetry = cfg.telemetry.clone();
        let tick_hist = telemetry.histogram("emulator_tick_seconds", &[]);
        let active_gauge = telemetry.gauge("emulator_active_jobs", &[]);
        let free_gauge = telemetry.gauge("emulator_free_nodes", &[]);
        let measured_gauge = telemetry.gauge("emulator_measured_watts", &[]);
        let mut bcfg = BudgeterConfig::new(cfg.policy, cfg.feedback);
        bcfg.catalog = cfg.catalog.clone();
        let mut builder = ClusterBudgeter::builder(bcfg)
            .telemetry(telemetry.clone())
            .lease(cfg.lease)
            .transport(cfg.transport.kind)
            .shards(cfg.transport.shards)
            .conn_queue_depth(cfg.transport.conn_queue_depth);
        if let Some(t) = &cfg.tracer {
            builder = builder.tracer(t);
        }
        if let Some(rec) = &cfg.recorder {
            builder = builder.recorder(rec.clone());
        }
        let (mut budgeter, addr) = builder.bind()?;
        telemetry.event(
            "run_started",
            &[
                ("policy", cfg.policy.name().into()),
                ("feedback", cfg.feedback.into()),
                ("jobs", setups.len().into()),
                ("nodes", u64::from(cfg.nodes).into()),
            ],
        );
        // Sort submissions by time (stable: preserves input order for ties).
        let mut order: Vec<usize> = (0..setups.len()).collect();
        order.sort_by(|&a, &b| {
            setups[a]
                .submit
                .value()
                .total_cmp(&setups[b].submit.value())
        });
        let mut next_arrival = 0usize;
        let mut pending: Vec<usize> = Vec::new();
        let mut active: Vec<ActiveJob> = Vec::new();
        let mut starting: Vec<HeldJob> = Vec::new();
        let mut finishing: Vec<HeldJob> = Vec::new();
        let mut results: Vec<Option<JobResult>> = vec![None; setups.len()];
        let mut reports: Vec<Option<JobReport>> = vec![None; setups.len()];
        let reserve = match &mode {
            PowerMode::Target(t) => t.reserve.max(Watts(1.0)),
            PowerMode::StaticBusyBudget(_) => Watts(1.0),
        };
        let mut tracking = TrackingRecorder::new(reserve);
        tracking.attach_telemetry(&telemetry);
        let mut power_trace = Vec::new();
        let mut now = Seconds::ZERO;
        let mut done_count = 0usize;
        // Generous runaway guard: total serial work × slowdown margin.
        let total_work: f64 = setups
            .iter()
            .map(|s| {
                self.true_spec(s)
                    .map(|t| t.time_uncapped.value() * 3.0)
                    .unwrap_or(0.0)
            })
            .sum();
        let max_time = 7200.0
            + total_work
            + setups.len() as f64 * 2.0 * cfg.setup_teardown.value()
            + setups.iter().map(|s| s.submit.value()).fold(0.0, f64::max);
        while done_count < setups.len() {
            if now.value() > max_time {
                return Err(AnorError::config(format!(
                    "emulation exceeded {max_time} virtual seconds; {} jobs unfinished",
                    setups.len() - done_count
                )));
            }
            let tick_timer = Timer::start(tick_hist.clone());
            // 1. Arrivals.
            while next_arrival < order.len()
                && setups[order[next_arrival]].submit.value() <= now.value()
            {
                let idx = order[next_arrival];
                telemetry.event(
                    "job_submitted",
                    &[
                        ("t_virtual", now.value().into()),
                        ("job", (idx as u64).into()),
                        ("type", setups[idx].true_type.as_str().into()),
                        ("announced", setups[idx].announced.as_str().into()),
                    ],
                );
                pending.push(idx);
                next_arrival += 1;
            }
            // 2. Start pending jobs when nodes are free (FCFS).
            let mut still_pending = Vec::new();
            for idx in pending.drain(..) {
                let setup = &setups[idx];
                let spec = self.true_spec(setup)?;
                let mut spec = spec.clone();
                if let Some(n) = setup.nodes {
                    spec.nodes = n;
                }
                if (spec.nodes as usize) <= pool.len() {
                    let nodes: Vec<Node> = pool.drain(..spec.nodes as usize).collect();
                    if cfg.setup_teardown.value() > 0.0 {
                        starting.push(HeldJob {
                            setup_idx: idx,
                            nodes,
                            remaining: cfg.setup_teardown,
                            held_since: now,
                        });
                        continue;
                    }
                    let job_id = JobId(idx as u64);
                    let (mut runtime, modeler_side) = match &setup.phases {
                        Some(phases) => JobRuntime::launch_phased(
                            job_id,
                            spec.clone(),
                            phases,
                            nodes,
                            cfg.seed ^ (idx as u64),
                        )?,
                        None => JobRuntime::launch(
                            job_id,
                            spec.clone(),
                            nodes,
                            cfg.seed ^ (idx as u64),
                        )?,
                    };
                    runtime.attach_telemetry(&telemetry);
                    let believed = cfg.catalog.find(&setup.announced).unwrap_or(&spec).clone();
                    let endpoint = self.connect_endpoint(
                        addr,
                        job_id,
                        &setup.announced,
                        spec.nodes,
                        modeler_side,
                        &believed,
                        &telemetry,
                    )?;
                    if let Some(t) = &cfg.tracer {
                        runtime.attach_tracer(t);
                    }
                    telemetry.event(
                        "job_started",
                        &[
                            ("t_virtual", now.value().into()),
                            ("job", job_id.0.into()),
                            ("type", setup.true_type.as_str().into()),
                            ("nodes", u64::from(spec.nodes).into()),
                        ],
                    );
                    active.push(ActiveJob {
                        runtime,
                        endpoint,
                        setup_idx: idx,
                        started_at: now,
                    });
                } else {
                    still_pending.push(idx);
                }
            }
            pending = still_pending;
            // 2b. Advance batch setup/teardown holds.
            let mut still_starting = Vec::new();
            for mut h in starting.drain(..) {
                h.remaining -= cfg.tick;
                if h.remaining.value() > 0.0 {
                    still_starting.push(h);
                    continue;
                }
                let idx = h.setup_idx;
                let setup = &setups[idx];
                let spec = self.true_spec(setup)?;
                let mut spec = spec.clone();
                spec.nodes = h.nodes.len() as u32;
                let job_id = JobId(idx as u64);
                let (mut runtime, modeler_side) = match &setup.phases {
                    Some(phases) => JobRuntime::launch_phased(
                        job_id,
                        spec.clone(),
                        phases,
                        h.nodes,
                        cfg.seed ^ (idx as u64),
                    )?,
                    None => {
                        JobRuntime::launch(job_id, spec.clone(), h.nodes, cfg.seed ^ (idx as u64))?
                    }
                };
                runtime.attach_telemetry(&telemetry);
                let believed = cfg.catalog.find(&setup.announced).unwrap_or(&spec).clone();
                let endpoint = self.connect_endpoint(
                    addr,
                    job_id,
                    &setup.announced,
                    spec.nodes,
                    modeler_side,
                    &believed,
                    &telemetry,
                )?;
                if let Some(t) = &cfg.tracer {
                    runtime.attach_tracer(t);
                }
                telemetry.event(
                    "job_started",
                    &[
                        ("t_virtual", now.value().into()),
                        ("job", job_id.0.into()),
                        ("type", setup.true_type.as_str().into()),
                        ("nodes", u64::from(spec.nodes).into()),
                    ],
                );
                active.push(ActiveJob {
                    runtime,
                    endpoint,
                    setup_idx: idx,
                    started_at: h.held_since,
                });
            }
            starting = still_starting;
            let mut still_finishing = Vec::new();
            for mut h in finishing.drain(..) {
                h.remaining -= cfg.tick;
                if h.remaining.value() > 0.0 {
                    still_finishing.push(h);
                } else {
                    pool.extend(h.nodes);
                }
            }
            finishing = still_finishing;
            // 3. Advance hardware and workloads.
            for a in &mut active {
                a.runtime.step(cfg.tick)?;
            }
            now += cfg.tick;
            // 4. Pump job-tier endpoints.
            for a in &mut active {
                a.endpoint.pump(now)?;
            }
            // 5. Cluster power accounting and budgeting.
            let busy_power: Watts = active.iter().map(|a| a.runtime.power()).sum();
            let held_nodes: usize = starting
                .iter()
                .chain(&finishing)
                .map(|h| h.nodes.len())
                .sum();
            let idle_power = cfg.idle_power * (pool.len() + held_nodes) as f64;
            let measured = busy_power + idle_power;
            measured_gauge.set(measured.value());
            let busy_budget = match &mode {
                PowerMode::StaticBusyBudget(b) => *b,
                PowerMode::Target(t) => {
                    let target_now = t.at(now);
                    tracking.push(target_now, measured);
                    if trace {
                        power_trace.push((now, target_now, measured));
                    }
                    (target_now - idle_power).max(Watts::ZERO)
                }
            };
            budgeter.pump(busy_budget)?;
            // 6. Let endpoints see fresh caps promptly.
            for a in &mut active {
                a.endpoint.pump(now)?;
            }
            // 7. Retire finished jobs.
            let mut still_active = Vec::new();
            for mut a in active.drain(..) {
                if a.runtime.is_done() {
                    let elapsed = a.runtime.elapsed();
                    a.endpoint.finish(elapsed)?;
                    reports[a.setup_idx] = Some(a.runtime.report());
                    let setup = &setups[a.setup_idx];
                    let spec = self.true_spec(setup)?;
                    telemetry.event(
                        "job_done",
                        &[
                            ("t_virtual", now.value().into()),
                            ("job", (a.setup_idx as u64).into()),
                            ("type", setup.true_type.as_str().into()),
                            ("elapsed_s", elapsed.value().into()),
                            (
                                "slowdown",
                                (elapsed.value() / spec.time_uncapped.value()).into(),
                            ),
                        ],
                    );
                    results[a.setup_idx] = Some(JobResult {
                        job: JobId(a.setup_idx as u64),
                        true_type: setup.true_type.clone(),
                        announced: setup.announced.clone(),
                        submit: setup.submit,
                        start: a.started_at,
                        elapsed,
                        slowdown: elapsed.value() / spec.time_uncapped.value(),
                    });
                    let idx = a.setup_idx;
                    let nodes = a.runtime.into_nodes();
                    if cfg.setup_teardown.value() > 0.0 {
                        finishing.push(HeldJob {
                            setup_idx: idx,
                            nodes,
                            remaining: cfg.setup_teardown,
                            held_since: now,
                        });
                    } else {
                        pool.extend(nodes);
                    }
                    done_count += 1;
                } else {
                    still_active.push(a);
                }
            }
            active = still_active;
            active_gauge.set(active.len() as f64);
            free_gauge.set(pool.len() as f64);
            drop(tick_timer);
        }
        telemetry.event(
            "run_finished",
            &[
                ("t_virtual", now.value().into()),
                ("jobs", setups.len().into()),
            ],
        );
        // Every setup slot must have completed by now; a hole means the
        // scheduler lost a job, which is a reportable failure of the run,
        // not grounds for aborting the process.
        let jobs = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| AnorError::schedule(format!("job {i} never finished emulation")))
            })
            .collect::<Result<Vec<_>>>()?;
        let reports = reports
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| AnorError::schedule(format!("job {i} never produced a report")))
            })
            .collect::<Result<Vec<_>>>()?;
        let (p90, within) = match mode {
            PowerMode::Target(_) if !tracking.is_empty() => (
                Some(tracking.percentile_error(90.0)),
                Some(tracking.fraction_within(0.30)),
            ),
            _ => (None, None),
        };
        Ok(RunReport {
            jobs,
            tracking_p90: p90,
            tracking_within_30: within,
            power_trace,
            reports,
        })
    }

    fn true_spec<'a>(&'a self, setup: &JobSetup) -> Result<&'a anor_types::JobTypeSpec> {
        self.cfg.catalog.find(&setup.true_type).ok_or_else(|| {
            AnorError::config(format!("unknown true job type `{}`", setup.true_type))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_aqa::RegulationSignal;

    fn cluster(policy: BudgetPolicy, feedback: bool) -> EmulatedCluster {
        EmulatedCluster::new(EmulatorConfig::paper(policy, feedback))
    }

    #[test]
    fn single_job_uncapped_runs_at_nominal_speed() {
        let c = cluster(BudgetPolicy::Uniform, false);
        let report = c
            .run_static(&[JobSetup::known("is.D.32")], Watts(10_000.0))
            .unwrap();
        assert_eq!(report.jobs.len(), 1);
        let s = report.jobs[0].slowdown;
        assert!((0.9..1.15).contains(&s), "uncapped slowdown {s}");
    }

    #[test]
    fn shared_budget_slows_sensitive_job_more_under_uniform() {
        // BT + SP under 840 W / 4 nodes, performance-agnostic: BT (high
        // sensitivity) slows more than SP (low sensitivity) — Fig. 6's
        // "Performance Agnostic" bar.
        let c = cluster(BudgetPolicy::Uniform, false);
        let report = c
            .run_static(
                &[JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")],
                Watts(840.0),
            )
            .unwrap();
        let bt = report.mean_slowdown("bt.D.81").unwrap();
        let sp = report.mean_slowdown("sp.D.81").unwrap();
        assert!(bt > sp, "bt {bt} vs sp {sp}");
        assert!(bt > 1.05, "bt must visibly slow down: {bt}");
    }

    #[test]
    fn even_slowdown_narrows_the_gap() {
        let agnostic = cluster(BudgetPolicy::Uniform, false)
            .run_static(
                &[JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")],
                Watts(840.0),
            )
            .unwrap();
        let aware = cluster(BudgetPolicy::EvenSlowdown, false)
            .run_static(
                &[JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")],
                Watts(840.0),
            )
            .unwrap();
        let bt_agnostic = agnostic.mean_slowdown("bt.D.81").unwrap();
        let bt_aware = aware.mean_slowdown("bt.D.81").unwrap();
        assert!(
            bt_aware < bt_agnostic,
            "performance-aware must help BT: {bt_aware} vs {bt_agnostic}"
        );
    }

    #[test]
    fn misclassification_hurts_and_feedback_recovers() {
        let jobs = [
            JobSetup::misclassified("bt.D.81", "is.D.32"),
            JobSetup::known("sp.D.81"),
        ];
        let known = cluster(BudgetPolicy::EvenSlowdown, false)
            .run_static(
                &[JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")],
                Watts(840.0),
            )
            .unwrap()
            .mean_slowdown("bt.D.81")
            .unwrap();
        let mis = cluster(BudgetPolicy::EvenSlowdown, false)
            .run_static(&jobs, Watts(840.0))
            .unwrap()
            .mean_slowdown("bt.D.81")
            .unwrap();
        let fed = cluster(BudgetPolicy::EvenSlowdown, true)
            .run_static(&jobs, Watts(840.0))
            .unwrap()
            .mean_slowdown("bt.D.81")
            .unwrap();
        assert!(
            mis > known + 0.01,
            "misclassification must hurt BT: {mis} vs {known}"
        );
        assert!(fed < mis, "feedback must recover: {fed} vs {mis}");
    }

    #[test]
    fn demand_response_tracks_target() {
        let c = cluster(BudgetPolicy::EvenSlowdown, false);
        // Keep the target inside the achievable band: 2×BT (2 nodes each)
        // + LU keep 5 nodes busy (1690–2346 W incl. 11 idle nodes).
        let jobs = [
            JobSetup::known("bt.D.81"),
            JobSetup::known("bt.D.81"),
            JobSetup::known("lu.D.42").at(Seconds(10.0)),
        ];
        let target = PowerTarget {
            avg: Watts(1950.0),
            reserve: Watts(250.0),
            signal: RegulationSignal::Sinusoid {
                period: Seconds(120.0),
                amplitude: 0.8,
            },
        };
        let report = c.run_demand_response(&jobs, target, true).unwrap();
        assert_eq!(report.jobs.len(), 3);
        let within = report.tracking_within_30.unwrap();
        assert!(within > 0.55, "tracking within 30% only {within}");
        assert!(!report.power_trace.is_empty());
    }

    #[test]
    fn queueing_when_nodes_exhausted() {
        // 16 nodes, nine 2-node jobs: one must queue.
        let c = cluster(BudgetPolicy::Uniform, false);
        let jobs: Vec<JobSetup> = (0..9).map(|_| JobSetup::known("ft.D.64")).collect();
        let report = c.run_static(&jobs, Watts(100_000.0)).unwrap();
        assert_eq!(report.jobs.len(), 9);
        let max_start = report
            .jobs
            .iter()
            .map(|j| j.start.value())
            .fold(0.0f64, f64::max);
        assert!(
            max_start > 60.0,
            "ninth job must wait for nodes: {max_start}"
        );
    }

    #[test]
    fn phased_job_runs_through_the_full_stack() {
        use anor_platform::Phase;
        // A two-phase job: insensitive first half, highly sensitive
        // second half, co-scheduled with SP under a tight budget.
        let phased = JobSetup::known("bt.D.81").with_phases(vec![
            Phase {
                fraction: 0.5,
                sensitivity: 0.1,
                max_draw: Watts(225.0),
            },
            Phase {
                fraction: 0.5,
                sensitivity: 0.8,
                max_draw: Watts(278.0),
            },
        ]);
        let jobs = [phased, JobSetup::known("sp.D.81")];
        let run = |feedback: bool| {
            cluster(BudgetPolicy::EvenSlowdown, feedback)
                .run_static(&jobs, Watts(840.0))
                .unwrap()
                .mean_slowdown("bt.D.81")
                .unwrap()
        };
        let static_model = run(false);
        let adaptive = run(true);
        // Both complete; the adaptive run must not be slower — drift
        // detection re-learns the sensitive phase and wins it more power.
        assert!(static_model.is_finite() && adaptive.is_finite());
        assert!(
            adaptive <= static_model + 0.02,
            "adaptive {adaptive} vs static {static_model}"
        );
    }

    #[test]
    fn run_report_includes_geopm_reports() {
        let c = cluster(BudgetPolicy::Uniform, false);
        let report = c
            .run_static(
                &[JobSetup::known("is.D.32"), JobSetup::known("mg.D.32")],
                Watts(2000.0),
            )
            .unwrap();
        assert_eq!(report.reports.len(), 2);
        let is_report = &report.reports[0];
        assert_eq!(is_report.type_name, "is.D.32");
        assert_eq!(is_report.epoch_count, 40);
        assert!(is_report.energy.value() > 0.0);
        assert!(is_report.render().contains("Application Totals"));
    }

    #[test]
    fn setup_teardown_extends_occupancy_but_not_app_time() {
        let mut cfg = EmulatorConfig::paper(BudgetPolicy::Uniform, false);
        cfg.setup_teardown = Seconds(15.0);
        let c = EmulatedCluster::new(cfg);
        // Two sequential 1-node jobs on a deliberately tiny pool force
        // the second to wait through the first's teardown.
        let mut small = EmulatorConfig::paper(BudgetPolicy::Uniform, false);
        small.nodes = 1;
        small.setup_teardown = Seconds(15.0);
        let c_small = EmulatedCluster::new(small);
        let report = c_small
            .run_static(
                &[JobSetup::known("is.D.32"), JobSetup::known("is.D.32")],
                Watts(10_000.0),
            )
            .unwrap();
        // App elapsed stays ~20 s, but the second job starts only after
        // the first's app time + both holds (~>35 s in).
        for job in &report.jobs {
            assert!(
                (15.0..30.0).contains(&job.elapsed.value()),
                "{:?}",
                job.elapsed
            );
        }
        let second_start = report.jobs[1].start.value();
        assert!(
            second_start >= 45.0,
            "second job must wait through setup+teardown: started {second_start}"
        );
        // And the 16-node variant still completes normally.
        let report = c
            .run_static(&[JobSetup::known("is.D.32")], Watts(10_000.0))
            .unwrap();
        assert_eq!(report.jobs.len(), 1);
    }

    #[test]
    fn telemetry_captures_lifecycle_and_rebalances() {
        let telemetry = Telemetry::new();
        let mut cfg = EmulatorConfig::paper(BudgetPolicy::EvenSlowdown, true);
        cfg = cfg.with_telemetry(telemetry.clone());
        let c = EmulatedCluster::new(cfg);
        c.run_static(
            &[JobSetup::known("bt.D.81"), JobSetup::known("sp.D.81")],
            Watts(840.0),
        )
        .unwrap();
        let lines = telemetry.memory_event_lines();
        for needed in [
            "\"event\":\"run_started\"",
            "\"event\":\"job_submitted\"",
            "\"event\":\"job_started\"",
            "\"event\":\"job_done\"",
            "\"event\":\"run_finished\"",
        ] {
            assert!(
                lines.iter().any(|l| l.contains(needed)),
                "missing {needed} in event log"
            );
        }
        assert!(
            telemetry
                .histogram("budgeter_rebalance_seconds", &[])
                .count()
                >= 1,
            "budgeter rebalances must flow into the shared handle"
        );
        assert!(
            telemetry.histogram("emulator_tick_seconds", &[]).count() >= 10,
            "tick durations must be observed"
        );
        assert!(
            telemetry
                .counter("transport_frames_rx_total", &[("role", "budgeter")])
                .get()
                >= 2,
            "endpoint traffic must be counted"
        );
    }

    #[test]
    fn empty_job_list_is_trivial() {
        let c = cluster(BudgetPolicy::Uniform, false);
        let report = c.run_static(&[], Watts(1000.0)).unwrap();
        assert!(report.jobs.is_empty());
    }

    #[test]
    fn unknown_true_type_is_an_error() {
        let c = cluster(BudgetPolicy::Uniform, false);
        let err = c
            .run_static(&[JobSetup::known("not-a-benchmark")], Watts(1000.0))
            .unwrap_err();
        assert!(err.to_string().contains("unknown true job type"));
    }
}
