//! Non-blocking framed TCP streams.
//!
//! The cluster daemon and the job endpoints are *pumped* state machines
//! driven by the experiment harness's virtual clock, so their sockets are
//! non-blocking: reads drain whatever the kernel has, writes queue into
//! an outbound buffer that is flushed opportunistically. This exercises a
//! real sockets code path (localhost TCP) without tying experiment time
//! to wall-clock time.

use crate::session::{corrupt_byte, FaultKind, FaultPlan};
use anor_telemetry::{Counter, Telemetry};
use anor_types::msg::{take_frame, MAX_FRAME_LEN};
use anor_types::{AnorError, Result};
use bytes::{Bytes, BytesMut};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};

/// Cached counter handles for one side of the wire protocol. Cloning is
/// cheap (each counter is an `Arc`'d atomic); every [`FramedStream`] on
/// the same role shares the same series.
#[derive(Clone, Debug)]
pub struct TransportMetrics {
    frames_tx: Counter,
    frames_rx: Counter,
    bytes_tx: Counter,
    bytes_rx: Counter,
    reconnects: Counter,
    oversize_rejected: Counter,
    faults_injected: Counter,
}

impl TransportMetrics {
    /// Register the transport series under `role` (e.g. "budgeter",
    /// "endpoint") so both ends of a localhost test stay distinguishable.
    pub fn new(telemetry: &Telemetry, role: &str) -> Self {
        let labels = &[("role", role)];
        TransportMetrics {
            frames_tx: telemetry.counter("transport_frames_tx_total", labels),
            frames_rx: telemetry.counter("transport_frames_rx_total", labels),
            bytes_tx: telemetry.counter("transport_bytes_tx_total", labels),
            bytes_rx: telemetry.counter("transport_bytes_rx_total", labels),
            reconnects: telemetry.counter("transport_reconnects_total", labels),
            oversize_rejected: telemetry.counter("transport_oversize_rejected_total", labels),
            faults_injected: telemetry.counter("transport_faults_injected_total", labels),
        }
    }

    /// Count a (re-)established connection on this role.
    pub fn connection_opened(&self) {
        self.reconnects.inc();
    }

    /// Connections (re-)established on this role so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }

    /// Frames rejected for an oversized length prefix so far.
    pub fn oversize_rejected(&self) -> u64 {
        self.oversize_rejected.get()
    }

    /// Chaos faults injected into streams on this role so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.get()
    }
}

/// Construction options for a [`FramedStream`]: optional transport
/// metrics and an optional chaos [`FaultPlan`]. Replaces the old
/// `new`/`with_metrics` constructor pair.
#[derive(Debug, Default, Clone)]
pub struct StreamOptions {
    metrics: Option<TransportMetrics>,
    faults: Option<FaultPlan>,
}

impl StreamOptions {
    /// Count frames/bytes/connections into the given transport series.
    pub fn metrics(mut self, metrics: TransportMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Inject the given chaos schedule into the stream's send path.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// A length-prefix-framed, non-blocking TCP stream.
#[derive(Debug)]
pub struct FramedStream {
    stream: TcpStream,
    inbuf: BytesMut,
    outbuf: BytesMut,
    closed: bool,
    metrics: Option<TransportMetrics>,
    faults: Option<FaultPlan>,
    /// Frames held back by an injected [`FaultKind::Delay`], with the
    /// number of further sends to wait before queueing each.
    delayed: Vec<(u32, Bytes)>,
}

impl FramedStream {
    /// Wrap a connected stream: switches it to non-blocking mode and
    /// disables Nagle (control messages are tiny and latency-sensitive).
    /// When `opts` carries metrics, the connection itself is counted.
    pub fn new(stream: TcpStream, opts: StreamOptions) -> Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        if let Some(m) = &opts.metrics {
            m.connection_opened();
        }
        Ok(FramedStream {
            stream,
            inbuf: BytesMut::with_capacity(4096),
            outbuf: BytesMut::with_capacity(4096),
            closed: false,
            metrics: opts.metrics,
            faults: opts.faults,
            delayed: Vec::new(),
        })
    }

    /// Like [`FramedStream::new`], but counting frames/bytes into the
    /// given transport series (also counts the connection itself).
    #[deprecated(
        note = "use FramedStream::new(stream, StreamOptions::default().metrics(..)); \
                         removed after one release"
    )]
    pub fn with_metrics(stream: TcpStream, metrics: TransportMetrics) -> Result<Self> {
        FramedStream::new(stream, StreamOptions::default().metrics(metrics))
    }

    /// Attach transport metrics to an already-wrapped stream.
    pub fn set_metrics(&mut self, metrics: TransportMetrics) {
        self.metrics = Some(metrics);
    }

    /// Queue an encoded frame and try to flush. An attached [`FaultPlan`]
    /// is consulted here: the session's cumulative frame counter advances
    /// once per call and a scheduled fault rewrites, delays, duplicates
    /// or drops the frame (possibly cutting the connection).
    pub fn send(&mut self, frame: Bytes) -> Result<()> {
        if let Some(m) = &self.metrics {
            m.frames_tx.inc();
        }
        let held = self.delayed.len();
        match self.faults.as_ref().and_then(|p| p.on_frame()) {
            None => self.outbuf.extend_from_slice(&frame),
            Some((kind, seed)) => self.inject(kind, seed, frame),
        }
        // Only age holdbacks that predate this call: a frame delayed by
        // this very send must wait for *further* frames, not release
        // behind itself.
        self.release_delayed(held);
        self.flush_some()
    }

    /// Apply one scheduled fault to the frame about to be queued.
    fn inject(&mut self, kind: FaultKind, seed: u64, frame: Bytes) {
        if let Some(m) = &self.metrics {
            m.faults_injected.inc();
        }
        match kind {
            FaultKind::Drop => {
                // The frame is lost and the connection dies with it.
                self.closed = true;
                let _ = self.stream.shutdown(Shutdown::Both);
            }
            FaultKind::Delay(holdback) => {
                self.delayed.push((holdback.max(1), frame));
            }
            FaultKind::Duplicate => {
                self.outbuf.extend_from_slice(&frame);
                self.outbuf.extend_from_slice(&frame);
            }
            FaultKind::Truncate => {
                // Half the frame goes out, then the connection is cut
                // mid-frame; flush eagerly so the prefix actually lands.
                self.outbuf.extend_from_slice(&frame[..frame.len() / 2]);
                let _ = self.flush_some();
                self.closed = true;
                let _ = self.stream.shutdown(Shutdown::Both);
            }
            FaultKind::Corrupt => {
                let bad = corrupt_byte(&frame, seed);
                self.outbuf.extend_from_slice(&bad);
            }
        }
    }

    /// Queue any delayed frames whose holdback has elapsed. Only the
    /// first `aging` entries count this send against their holdback;
    /// entries past that index were pushed by the current call.
    fn release_delayed(&mut self, aging: usize) {
        if aging == 0 || self.delayed.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.delayed);
        for (i, (countdown, frame)) in pending.into_iter().enumerate() {
            if i >= aging {
                self.delayed.push((countdown, frame));
            } else if countdown <= 1 {
                self.outbuf.extend_from_slice(&frame);
            } else {
                self.delayed.push((countdown - 1, frame));
            }
        }
    }

    /// Write as much buffered output as the socket accepts right now.
    pub fn flush_some(&mut self) -> Result<()> {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => {
                    self.closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    if let Some(m) = &self.metrics {
                        m.bytes_tx.add(n as u64);
                    }
                    let _ = self.outbuf.split_to(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == ErrorKind::BrokenPipe
                        || e.kind() == ErrorKind::ConnectionReset =>
                {
                    self.closed = true;
                    return Ok(());
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Drain the socket and return every complete frame body received.
    pub fn recv_frames(&mut self) -> Result<Vec<Bytes>> {
        let mut scratch = [0u8; 4096];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    if let Some(m) = &self.metrics {
                        m.bytes_rx.add(n as u64);
                    }
                    self.inbuf.extend_from_slice(&scratch[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                    self.closed = true;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
        let mut frames = Vec::new();
        loop {
            // Reject a corrupt length prefix *here*, before `take_frame`
            // is ever in a position to size a buffer from it, so the
            // rejection is both typed and counted per transport role.
            if self.inbuf.len() >= 4 {
                let len = u32::from_be_bytes([
                    self.inbuf[0],
                    self.inbuf[1],
                    self.inbuf[2],
                    self.inbuf[3],
                ]) as usize;
                if len > MAX_FRAME_LEN {
                    if let Some(m) = &self.metrics {
                        m.oversize_rejected.inc();
                        m.frames_rx.add(frames.len() as u64);
                    }
                    self.closed = true;
                    return Err(AnorError::protocol(format!(
                        "oversized frame length prefix {len} (max {MAX_FRAME_LEN}); \
                         dropping connection"
                    )));
                }
            }
            match take_frame(&mut self.inbuf)? {
                Some(body) => frames.push(body),
                None => break,
            }
        }
        if let Some(m) = &self.metrics {
            m.frames_rx.add(frames.len() as u64);
        }
        Ok(frames)
    }

    /// True once the peer closed or reset the connection.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Bytes queued but not yet written.
    pub fn pending_out(&self) -> usize {
        self.outbuf.len()
    }

    /// Cut the connection now: mark the stream closed and shut the
    /// socket down both ways so the peer sees EOF immediately. The
    /// budgeter uses this to quarantine a misbehaving peer instead of
    /// letting a reject-storm spin the pump loop.
    pub fn shutdown_now(&mut self) {
        self.closed = true;
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::msg::{ClusterToJob, JobToCluster};
    use anor_types::{JobId, Seconds, Watts};
    use std::net::TcpListener;

    // `Telemetry` / `TransportMetrics` come through `super::*`.

    fn pair() -> (FramedStream, FramedStream) {
        pair_with(StreamOptions::default())
    }

    fn pair_with(client_opts: StreamOptions) -> (FramedStream, FramedStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (
            FramedStream::new(client, client_opts).unwrap(),
            FramedStream::new(server, StreamOptions::default()).unwrap(),
        )
    }

    fn pump_until<F: FnMut() -> bool>(mut done: F) {
        for _ in 0..1000 {
            if done() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("pump_until timed out");
    }

    #[test]
    fn messages_round_trip_over_tcp() {
        let (mut client, mut server) = pair();
        client
            .send(
                ClusterToJob::SetPowerCap {
                    cap: Watts(205.0),
                    cause: 0,
                }
                .encode(),
            )
            .unwrap();
        let mut got = Vec::new();
        pump_until(|| {
            client.flush_some().unwrap();
            got.extend(server.recv_frames().unwrap());
            !got.is_empty()
        });
        let msg = ClusterToJob::decode(got.remove(0)).unwrap();
        assert_eq!(
            msg,
            ClusterToJob::SetPowerCap {
                cap: Watts(205.0),
                cause: 0
            }
        );
    }

    #[test]
    fn many_frames_in_one_burst() {
        let (mut client, mut server) = pair();
        for i in 0..100u64 {
            client
                .send(
                    JobToCluster::Done {
                        job: JobId(i),
                        elapsed: Seconds(i as f64),
                    }
                    .encode(),
                )
                .unwrap();
        }
        let mut got = Vec::new();
        pump_until(|| {
            client.flush_some().unwrap();
            got.extend(server.recv_frames().unwrap());
            got.len() == 100
        });
        for (i, body) in got.into_iter().enumerate() {
            let JobToCluster::Done { job, .. } = JobToCluster::decode(body).unwrap() else {
                panic!("wrong message kind");
            };
            assert_eq!(job, JobId(i as u64));
        }
    }

    #[test]
    fn closed_peer_detected() {
        let (client, mut server) = pair();
        drop(client);
        pump_until(|| {
            server.recv_frames().unwrap();
            server.is_closed()
        });
    }

    #[test]
    fn recv_on_quiet_socket_is_empty_not_blocking() {
        let (_client, mut server) = pair();
        let start = std::time::Instant::now();
        let frames = server.recv_frames().unwrap();
        assert!(frames.is_empty());
        assert!(start.elapsed().as_millis() < 100, "recv must not block");
    }

    #[test]
    fn metrics_count_frames_and_bytes_both_ways() {
        let t = Telemetry::new();
        let (client_raw, server_raw) = pair();
        let mut client = client_raw;
        client.set_metrics(TransportMetrics::new(&t, "endpoint"));
        let mut server = server_raw;
        server.set_metrics(TransportMetrics::new(&t, "budgeter"));
        let frame = ClusterToJob::SetPowerCap {
            cap: Watts(190.0),
            cause: 0,
        }
        .encode();
        let frame_len = frame.len() as u64;
        client.send(frame).unwrap();
        pump_until(|| {
            client.flush_some().unwrap();
            !server.recv_frames().unwrap().is_empty()
        });
        let ep = &[("role", "endpoint")];
        let bd = &[("role", "budgeter")];
        assert_eq!(t.counter("transport_frames_tx_total", ep).get(), 1);
        assert_eq!(t.counter("transport_bytes_tx_total", ep).get(), frame_len);
        assert_eq!(t.counter("transport_frames_rx_total", bd).get(), 1);
        assert_eq!(t.counter("transport_bytes_rx_total", bd).get(), frame_len);
    }

    #[test]
    fn oversized_prefix_is_typed_error_and_counted() {
        use bytes::BufMut;
        let t = Telemetry::new();
        let metrics = TransportMetrics::new(&t, "budgeter");
        let (mut client, mut server) = pair();
        server.set_metrics(metrics.clone());
        let mut junk = BytesMut::new();
        junk.put_u32(u32::MAX); // absurd length prefix
        junk.put_slice(&[0u8; 16]);
        client.send(junk.freeze()).unwrap();
        let mut err = None;
        pump_until(|| {
            client.flush_some().unwrap();
            match server.recv_frames() {
                Ok(_) => false,
                Err(e) => {
                    err = Some(e);
                    true
                }
            }
        });
        assert!(
            matches!(err, Some(anor_types::AnorError::Protocol(_))),
            "want a typed protocol error, got {err:?}"
        );
        assert!(server.is_closed(), "a corrupt peer drops the connection");
        assert_eq!(metrics.oversize_rejected(), 1);
        assert_eq!(
            t.counter("transport_oversize_rejected_total", &[("role", "budgeter")])
                .get(),
            1
        );
    }

    #[test]
    fn metrics_option_counts_the_connection() {
        let t = Telemetry::new();
        let metrics = TransportMetrics::new(&t, "endpoint");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        for _ in 0..3 {
            let stream = TcpStream::connect(addr).unwrap();
            let _ = listener.accept().unwrap();
            let _fs = FramedStream::new(stream, StreamOptions::default().metrics(metrics.clone()))
                .unwrap();
        }
        assert_eq!(
            t.counter("transport_reconnects_total", &[("role", "endpoint")])
                .get(),
            3
        );
        assert_eq!(metrics.reconnects(), 3);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_metrics_shim_delegates() {
        let t = Telemetry::new();
        let metrics = TransportMetrics::new(&t, "endpoint");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).unwrap();
        let _ = listener.accept().unwrap();
        let _fs = FramedStream::with_metrics(stream, metrics.clone()).unwrap();
        assert_eq!(metrics.reconnects(), 1);
    }

    // ---- chaos injection ----------------------------------------------

    use crate::session::FaultPlan;

    fn drain_ok(server: &mut FramedStream) -> Vec<Bytes> {
        // Chaos plans may corrupt framing; protocol errors are expected
        // and must not panic — they just end the drain.
        server.recv_frames().unwrap_or_default()
    }

    #[test]
    fn drop_fault_cuts_the_connection_at_the_scheduled_frame() {
        let plan = FaultPlan::parse("drop@2").unwrap();
        let (mut client, mut server) = pair_with(StreamOptions::default().faults(plan.clone()));
        client.send(ClusterToJob::RequestSample.encode()).unwrap();
        client.send(ClusterToJob::Shutdown.encode()).unwrap(); // dropped
        assert!(client.is_closed());
        assert_eq!(plan.injected(), 1);
        let mut got = Vec::new();
        pump_until(|| {
            got.extend(drain_ok(&mut server));
            server.is_closed()
        });
        // Only the first frame ever arrived.
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn duplicate_fault_repeats_the_frame() {
        let plan = FaultPlan::parse("dup@1").unwrap();
        let (mut client, mut server) = pair_with(StreamOptions::default().faults(plan));
        client.send(ClusterToJob::Shutdown.encode()).unwrap();
        let mut got = Vec::new();
        pump_until(|| {
            client.flush_some().unwrap();
            got.extend(drain_ok(&mut server));
            got.len() == 2
        });
        for body in got {
            assert_eq!(ClusterToJob::decode(body).unwrap(), ClusterToJob::Shutdown);
        }
    }

    #[test]
    fn delay_fault_reorders_behind_later_frames() {
        let plan = FaultPlan::parse("delay@1:1").unwrap();
        let (mut client, mut server) = pair_with(StreamOptions::default().faults(plan));
        client.send(ClusterToJob::Shutdown.encode()).unwrap(); // held back
        client.send(ClusterToJob::RequestSample.encode()).unwrap();
        let mut got = Vec::new();
        pump_until(|| {
            client.flush_some().unwrap();
            got.extend(drain_ok(&mut server));
            got.len() == 2
        });
        let first = ClusterToJob::decode(got.remove(0)).unwrap();
        let second = ClusterToJob::decode(got.remove(0)).unwrap();
        assert_eq!(first, ClusterToJob::RequestSample);
        assert_eq!(second, ClusterToJob::Shutdown);
    }

    #[test]
    fn corrupt_fault_never_panics_the_receiver() {
        let plan = FaultPlan::parse("corrupt@1").unwrap().seeded(7);
        let (mut client, mut server) = pair_with(StreamOptions::default().faults(plan));
        client.send(ClusterToJob::Shutdown.encode()).unwrap();
        for _ in 0..10 {
            client.flush_some().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        drop(client);
        // Whatever the flipped byte did (desync, oversize, bad tag), the
        // receiver must surface it as data/err, never a panic.
        pump_until(|| match server.recv_frames() {
            Ok(frames) => {
                for b in frames {
                    let _ = ClusterToJob::decode(b);
                }
                server.is_closed()
            }
            Err(_) => true,
        });
    }

    #[test]
    fn truncate_fault_cuts_mid_frame() {
        let plan = FaultPlan::parse("trunc@1").unwrap();
        let (mut client, mut server) = pair_with(StreamOptions::default().faults(plan));
        client
            .send(
                ClusterToJob::SetPowerCap {
                    cap: Watts(200.0),
                    cause: 9,
                }
                .encode(),
            )
            .unwrap();
        assert!(client.is_closed());
        let mut got = Vec::new();
        pump_until(|| {
            got.extend(drain_ok(&mut server));
            server.is_closed()
        });
        assert!(got.is_empty(), "a half frame must never decode");
    }

    #[test]
    fn pending_out_drains() {
        let (mut client, mut server) = pair();
        client.send(ClusterToJob::RequestSample.encode()).unwrap();
        pump_until(|| {
            client.flush_some().unwrap();
            !server.recv_frames().unwrap().is_empty() || client.pending_out() == 0
        });
        assert_eq!(client.pending_out(), 0);
    }
}
