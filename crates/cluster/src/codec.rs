//! Non-blocking framed TCP streams.
//!
//! The cluster daemon and the job endpoints are *pumped* state machines
//! driven by the experiment harness's virtual clock, so their sockets are
//! non-blocking: reads drain whatever the kernel has, writes queue into
//! an outbound buffer that is flushed opportunistically. This exercises a
//! real sockets code path (localhost TCP) without tying experiment time
//! to wall-clock time.

use anor_telemetry::{Counter, Telemetry};
use anor_types::msg::{take_frame, MAX_FRAME_LEN};
use anor_types::{AnorError, Result};
use bytes::{Bytes, BytesMut};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Cached counter handles for one side of the wire protocol. Cloning is
/// cheap (each counter is an `Arc`'d atomic); every [`FramedStream`] on
/// the same role shares the same series.
#[derive(Clone, Debug)]
pub struct TransportMetrics {
    frames_tx: Counter,
    frames_rx: Counter,
    bytes_tx: Counter,
    bytes_rx: Counter,
    reconnects: Counter,
    oversize_rejected: Counter,
}

impl TransportMetrics {
    /// Register the transport series under `role` (e.g. "budgeter",
    /// "endpoint") so both ends of a localhost test stay distinguishable.
    pub fn new(telemetry: &Telemetry, role: &str) -> Self {
        let labels = &[("role", role)];
        TransportMetrics {
            frames_tx: telemetry.counter("transport_frames_tx_total", labels),
            frames_rx: telemetry.counter("transport_frames_rx_total", labels),
            bytes_tx: telemetry.counter("transport_bytes_tx_total", labels),
            bytes_rx: telemetry.counter("transport_bytes_rx_total", labels),
            reconnects: telemetry.counter("transport_reconnects_total", labels),
            oversize_rejected: telemetry.counter("transport_oversize_rejected_total", labels),
        }
    }

    /// Count a (re-)established connection on this role.
    pub fn connection_opened(&self) {
        self.reconnects.inc();
    }

    /// Frames rejected for an oversized length prefix so far.
    pub fn oversize_rejected(&self) -> u64 {
        self.oversize_rejected.get()
    }
}

/// A length-prefix-framed, non-blocking TCP stream.
#[derive(Debug)]
pub struct FramedStream {
    stream: TcpStream,
    inbuf: BytesMut,
    outbuf: BytesMut,
    closed: bool,
    metrics: Option<TransportMetrics>,
}

impl FramedStream {
    /// Wrap a connected stream: switches it to non-blocking mode and
    /// disables Nagle (control messages are tiny and latency-sensitive).
    pub fn new(stream: TcpStream) -> Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(FramedStream {
            stream,
            inbuf: BytesMut::with_capacity(4096),
            outbuf: BytesMut::with_capacity(4096),
            closed: false,
            metrics: None,
        })
    }

    /// Like [`FramedStream::new`], but counting frames/bytes into the
    /// given transport series (also counts the connection itself).
    pub fn with_metrics(stream: TcpStream, metrics: TransportMetrics) -> Result<Self> {
        metrics.connection_opened();
        let mut s = FramedStream::new(stream)?;
        s.metrics = Some(metrics);
        Ok(s)
    }

    /// Attach transport metrics to an already-wrapped stream.
    pub fn set_metrics(&mut self, metrics: TransportMetrics) {
        self.metrics = Some(metrics);
    }

    /// Queue an encoded frame and try to flush.
    pub fn send(&mut self, frame: Bytes) -> Result<()> {
        if let Some(m) = &self.metrics {
            m.frames_tx.inc();
        }
        self.outbuf.extend_from_slice(&frame);
        self.flush_some()
    }

    /// Write as much buffered output as the socket accepts right now.
    pub fn flush_some(&mut self) -> Result<()> {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => {
                    self.closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    if let Some(m) = &self.metrics {
                        m.bytes_tx.add(n as u64);
                    }
                    let _ = self.outbuf.split_to(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == ErrorKind::BrokenPipe
                        || e.kind() == ErrorKind::ConnectionReset =>
                {
                    self.closed = true;
                    return Ok(());
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Drain the socket and return every complete frame body received.
    pub fn recv_frames(&mut self) -> Result<Vec<Bytes>> {
        let mut scratch = [0u8; 4096];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    if let Some(m) = &self.metrics {
                        m.bytes_rx.add(n as u64);
                    }
                    self.inbuf.extend_from_slice(&scratch[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                    self.closed = true;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
        let mut frames = Vec::new();
        loop {
            // Reject a corrupt length prefix *here*, before `take_frame`
            // is ever in a position to size a buffer from it, so the
            // rejection is both typed and counted per transport role.
            if self.inbuf.len() >= 4 {
                let len = u32::from_be_bytes([
                    self.inbuf[0],
                    self.inbuf[1],
                    self.inbuf[2],
                    self.inbuf[3],
                ]) as usize;
                if len > MAX_FRAME_LEN {
                    if let Some(m) = &self.metrics {
                        m.oversize_rejected.inc();
                        m.frames_rx.add(frames.len() as u64);
                    }
                    self.closed = true;
                    return Err(AnorError::protocol(format!(
                        "oversized frame length prefix {len} (max {MAX_FRAME_LEN}); \
                         dropping connection"
                    )));
                }
            }
            match take_frame(&mut self.inbuf)? {
                Some(body) => frames.push(body),
                None => break,
            }
        }
        if let Some(m) = &self.metrics {
            m.frames_rx.add(frames.len() as u64);
        }
        Ok(frames)
    }

    /// True once the peer closed or reset the connection.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Bytes queued but not yet written.
    pub fn pending_out(&self) -> usize {
        self.outbuf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::msg::{ClusterToJob, JobToCluster};
    use anor_types::{JobId, Seconds, Watts};
    use std::net::TcpListener;

    // `Telemetry` / `TransportMetrics` come through `super::*`.

    fn pair() -> (FramedStream, FramedStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (
            FramedStream::new(client).unwrap(),
            FramedStream::new(server).unwrap(),
        )
    }

    fn pump_until<F: FnMut() -> bool>(mut done: F) {
        for _ in 0..1000 {
            if done() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("pump_until timed out");
    }

    #[test]
    fn messages_round_trip_over_tcp() {
        let (mut client, mut server) = pair();
        client
            .send(
                ClusterToJob::SetPowerCap {
                    cap: Watts(205.0),
                    cause: 0,
                }
                .encode(),
            )
            .unwrap();
        let mut got = Vec::new();
        pump_until(|| {
            client.flush_some().unwrap();
            got.extend(server.recv_frames().unwrap());
            !got.is_empty()
        });
        let msg = ClusterToJob::decode(got.remove(0)).unwrap();
        assert_eq!(
            msg,
            ClusterToJob::SetPowerCap {
                cap: Watts(205.0),
                cause: 0
            }
        );
    }

    #[test]
    fn many_frames_in_one_burst() {
        let (mut client, mut server) = pair();
        for i in 0..100u64 {
            client
                .send(
                    JobToCluster::Done {
                        job: JobId(i),
                        elapsed: Seconds(i as f64),
                    }
                    .encode(),
                )
                .unwrap();
        }
        let mut got = Vec::new();
        pump_until(|| {
            client.flush_some().unwrap();
            got.extend(server.recv_frames().unwrap());
            got.len() == 100
        });
        for (i, body) in got.into_iter().enumerate() {
            let JobToCluster::Done { job, .. } = JobToCluster::decode(body).unwrap() else {
                panic!("wrong message kind");
            };
            assert_eq!(job, JobId(i as u64));
        }
    }

    #[test]
    fn closed_peer_detected() {
        let (client, mut server) = pair();
        drop(client);
        pump_until(|| {
            server.recv_frames().unwrap();
            server.is_closed()
        });
    }

    #[test]
    fn recv_on_quiet_socket_is_empty_not_blocking() {
        let (_client, mut server) = pair();
        let start = std::time::Instant::now();
        let frames = server.recv_frames().unwrap();
        assert!(frames.is_empty());
        assert!(start.elapsed().as_millis() < 100, "recv must not block");
    }

    #[test]
    fn metrics_count_frames_and_bytes_both_ways() {
        let t = Telemetry::new();
        let (client_raw, server_raw) = pair();
        let mut client = client_raw;
        client.set_metrics(TransportMetrics::new(&t, "endpoint"));
        let mut server = server_raw;
        server.set_metrics(TransportMetrics::new(&t, "budgeter"));
        let frame = ClusterToJob::SetPowerCap {
            cap: Watts(190.0),
            cause: 0,
        }
        .encode();
        let frame_len = frame.len() as u64;
        client.send(frame).unwrap();
        pump_until(|| {
            client.flush_some().unwrap();
            !server.recv_frames().unwrap().is_empty()
        });
        let ep = &[("role", "endpoint")];
        let bd = &[("role", "budgeter")];
        assert_eq!(t.counter("transport_frames_tx_total", ep).get(), 1);
        assert_eq!(t.counter("transport_bytes_tx_total", ep).get(), frame_len);
        assert_eq!(t.counter("transport_frames_rx_total", bd).get(), 1);
        assert_eq!(t.counter("transport_bytes_rx_total", bd).get(), frame_len);
    }

    #[test]
    fn oversized_prefix_is_typed_error_and_counted() {
        use bytes::BufMut;
        let t = Telemetry::new();
        let metrics = TransportMetrics::new(&t, "budgeter");
        let (mut client, mut server) = pair();
        server.set_metrics(metrics.clone());
        let mut junk = BytesMut::new();
        junk.put_u32(u32::MAX); // absurd length prefix
        junk.put_slice(&[0u8; 16]);
        client.send(junk.freeze()).unwrap();
        let mut err = None;
        pump_until(|| {
            client.flush_some().unwrap();
            match server.recv_frames() {
                Ok(_) => false,
                Err(e) => {
                    err = Some(e);
                    true
                }
            }
        });
        assert!(
            matches!(err, Some(anor_types::AnorError::Protocol(_))),
            "want a typed protocol error, got {err:?}"
        );
        assert!(server.is_closed(), "a corrupt peer drops the connection");
        assert_eq!(metrics.oversize_rejected(), 1);
        assert_eq!(
            t.counter("transport_oversize_rejected_total", &[("role", "budgeter")])
                .get(),
            1
        );
    }

    #[test]
    fn with_metrics_counts_the_connection() {
        let t = Telemetry::new();
        let metrics = TransportMetrics::new(&t, "endpoint");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        for _ in 0..3 {
            let stream = TcpStream::connect(addr).unwrap();
            let _ = listener.accept().unwrap();
            let _fs = FramedStream::with_metrics(stream, metrics.clone()).unwrap();
        }
        assert_eq!(
            t.counter("transport_reconnects_total", &[("role", "endpoint")])
                .get(),
            3
        );
    }

    #[test]
    fn pending_out_drains() {
        let (mut client, mut server) = pair();
        client.send(ClusterToJob::RequestSample.encode()).unwrap();
        pump_until(|| {
            client.flush_some().unwrap();
            !server.recv_frames().unwrap().is_empty() || client.pending_out() == 0
        });
        assert_eq!(client.pending_out(), 0);
    }
}
