//! Non-blocking framed TCP streams.
//!
//! The cluster daemon and the job endpoints are *pumped* state machines
//! driven by the experiment harness's virtual clock, so their sockets are
//! non-blocking: reads drain whatever the kernel has, writes queue into
//! an outbound buffer that is flushed opportunistically. This exercises a
//! real sockets code path (localhost TCP) without tying experiment time
//! to wall-clock time.

use anor_types::msg::take_frame;
use anor_types::Result;
use bytes::{Bytes, BytesMut};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// A length-prefix-framed, non-blocking TCP stream.
#[derive(Debug)]
pub struct FramedStream {
    stream: TcpStream,
    inbuf: BytesMut,
    outbuf: BytesMut,
    closed: bool,
}

impl FramedStream {
    /// Wrap a connected stream: switches it to non-blocking mode and
    /// disables Nagle (control messages are tiny and latency-sensitive).
    pub fn new(stream: TcpStream) -> Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(FramedStream {
            stream,
            inbuf: BytesMut::with_capacity(4096),
            outbuf: BytesMut::with_capacity(4096),
            closed: false,
        })
    }

    /// Queue an encoded frame and try to flush.
    pub fn send(&mut self, frame: Bytes) -> Result<()> {
        self.outbuf.extend_from_slice(&frame);
        self.flush_some()
    }

    /// Write as much buffered output as the socket accepts right now.
    pub fn flush_some(&mut self) -> Result<()> {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => {
                    self.closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    let _ = self.outbuf.split_to(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == ErrorKind::BrokenPipe
                        || e.kind() == ErrorKind::ConnectionReset =>
                {
                    self.closed = true;
                    return Ok(());
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Drain the socket and return every complete frame body received.
    pub fn recv_frames(&mut self) -> Result<Vec<Bytes>> {
        let mut scratch = [0u8; 4096];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => self.inbuf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                    self.closed = true;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }
        let mut frames = Vec::new();
        while let Some(body) = take_frame(&mut self.inbuf)? {
            frames.push(body);
        }
        Ok(frames)
    }

    /// True once the peer closed or reset the connection.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Bytes queued but not yet written.
    pub fn pending_out(&self) -> usize {
        self.outbuf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::msg::{ClusterToJob, JobToCluster};
    use anor_types::{JobId, Seconds, Watts};
    use std::net::TcpListener;

    fn pair() -> (FramedStream, FramedStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (
            FramedStream::new(client).unwrap(),
            FramedStream::new(server).unwrap(),
        )
    }

    fn pump_until<F: FnMut() -> bool>(mut done: F) {
        for _ in 0..1000 {
            if done() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("pump_until timed out");
    }

    #[test]
    fn messages_round_trip_over_tcp() {
        let (mut client, mut server) = pair();
        client
            .send(ClusterToJob::SetPowerCap { cap: Watts(205.0) }.encode())
            .unwrap();
        let mut got = Vec::new();
        pump_until(|| {
            client.flush_some().unwrap();
            got.extend(server.recv_frames().unwrap());
            !got.is_empty()
        });
        let msg = ClusterToJob::decode(got.remove(0)).unwrap();
        assert_eq!(msg, ClusterToJob::SetPowerCap { cap: Watts(205.0) });
    }

    #[test]
    fn many_frames_in_one_burst() {
        let (mut client, mut server) = pair();
        for i in 0..100u64 {
            client
                .send(
                    JobToCluster::Done {
                        job: JobId(i),
                        elapsed: Seconds(i as f64),
                    }
                    .encode(),
                )
                .unwrap();
        }
        let mut got = Vec::new();
        pump_until(|| {
            client.flush_some().unwrap();
            got.extend(server.recv_frames().unwrap());
            got.len() == 100
        });
        for (i, body) in got.into_iter().enumerate() {
            let JobToCluster::Done { job, .. } = JobToCluster::decode(body).unwrap() else {
                panic!("wrong message kind");
            };
            assert_eq!(job, JobId(i as u64));
        }
    }

    #[test]
    fn closed_peer_detected() {
        let (client, mut server) = pair();
        drop(client);
        pump_until(|| {
            server.recv_frames().unwrap();
            server.is_closed()
        });
    }

    #[test]
    fn recv_on_quiet_socket_is_empty_not_blocking() {
        let (_client, mut server) = pair();
        let start = std::time::Instant::now();
        let frames = server.recv_frames().unwrap();
        assert!(frames.is_empty());
        assert!(start.elapsed().as_millis() < 100, "recv must not block");
    }

    #[test]
    fn pending_out_drains() {
        let (mut client, mut server) = pair();
        client
            .send(ClusterToJob::RequestSample.encode())
            .unwrap();
        pump_until(|| {
            client.flush_some().unwrap();
            !server.recv_frames().unwrap().is_empty() || client.pending_out() == 0
        });
        assert_eq!(client.pending_out(), 0);
    }
}
