//! The `anor-load` synthetic-endpoint harness: N endpoints × reconnect
//! storms × fault specs against a live budgeter.
//!
//! The harness answers the capacity question behind ROADMAP item 2: how
//! many concurrent job endpoints can one budgeter observe and re-cap per
//! pump while keeping control-loop latency predictable? It drives a real
//! daemon (default: the sharded reactor plane) with driver threads full
//! of scripted endpoints that register, stream samples, absorb caps, and
//! — on every storm — drop their sockets en masse and resume, exactly
//! the session dance a cluster-wide network blip would cause.
//!
//! The run is stage-gated so the numbers mean something: all endpoints
//! registered, all capped, then per storm all resumed again. The report
//! carries sustained endpoint (re)connects per second, pump latency
//! percentiles, backpressure drops, and the invariant auditor's verdict
//! on watts conservation.

use crate::budgeter::{BudgetPolicy, BudgeterConfig, ClusterBudgeter, LeaseConfig};
use crate::codec::{FramedStream, StreamOptions, TransportMetrics};
use crate::session::{FaultPlan, SessionState};
use crate::transport::{TransportKind, TransportOptions};
use anor_telemetry::Telemetry;
use anor_types::msg::{ClusterToJob, EpochSample, JobToCluster};
use anor_types::{AnorError, JobId, Joules, Result, Seconds, Watts};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Job type names the synthetic endpoints announce, rotated per index so
/// non-uniform policies see a realistic type mix.
const TYPE_NAMES: [&str; 6] = [
    "bt.D.81", "sp.D.81", "is.D.32", "mg.D.32", "lu.D.42", "cg.D.32",
];

/// How many driver sweeps (~0.5 ms apart) between `Sample` messages per
/// endpoint — steady inbound traffic without drowning a single core.
const SAMPLE_EVERY_SWEEPS: u64 = 50;

/// `anor-load` run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent synthetic endpoints.
    pub endpoints: usize,
    /// Reconnect storms: each drops every endpoint's socket at once and
    /// resumes them all.
    pub storms: usize,
    /// Server-side chaos: each accepted connection gets its own fork of
    /// this plan (so `drop@17` kills every conn at its 17th outbound
    /// frame, forcing organic reconnects on top of the storms).
    pub faults: Option<FaultPlan>,
    /// Busy power budget. `Watts::ZERO` means auto: 200 W per endpoint —
    /// comfortably above the standard catalog's 140 W per-node cap floor,
    /// so the assignment stays feasible and caps have room to move.
    pub budget: Watts,
    /// Distribution policy under test.
    pub policy: BudgetPolicy,
    /// Connection plane for the daemon (default: reactor).
    pub transport: TransportOptions,
    /// Driver threads sharing the endpoints. Each driver connects its
    /// endpoints serially, which also keeps concurrent pending connects
    /// below the listener backlog.
    pub drivers: usize,
    /// Budgeter lease miss budget (pumps a dropped endpoint may stay
    /// disconnected before its watts are reclaimed).
    pub lease_miss_pumps: u32,
    /// Record into a shared telemetry handle (default: private).
    pub telemetry: Option<Telemetry>,
    /// Per-stage deadline before the run is declared stalled.
    pub stage_deadline: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            endpoints: 64,
            storms: 1,
            faults: None,
            budget: Watts::ZERO,
            policy: BudgetPolicy::Uniform,
            transport: TransportOptions {
                kind: TransportKind::Reactor,
                ..TransportOptions::default()
            },
            drivers: 2,
            lease_miss_pumps: 5_000,
            telemetry: None,
            stage_deadline: Duration::from_secs(60),
        }
    }
}

/// What an `anor-load` run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Configured endpoint count.
    pub endpoints: usize,
    /// Configured storm count.
    pub storms: usize,
    /// Endpoints registered and holding a lease when the run ended.
    pub connected: usize,
    /// Connections the daemon accepted in total.
    pub accepted: u64,
    /// Endpoint re-establishments (storm resumes + fault-driven).
    pub reconnects: u64,
    /// Sustained endpoint (re)connects per second over the whole run:
    /// (initial registrations + reconnects) / elapsed.
    pub endpoints_per_sec: f64,
    /// Budgeter pump latency, milliseconds.
    pub pump_p50_ms: f64,
    /// Budgeter pump latency, milliseconds.
    pub pump_p99_ms: f64,
    /// Outbound frames dropped to egress backpressure.
    pub backpressure_drops: u64,
    /// Continuous-auditor violations (watts conservation and friends);
    /// must be zero for a healthy run.
    pub invariant_violations: u64,
    /// Σ cap × nodes over lease holders at the end of the run.
    pub allocated_watts: f64,
    /// The busy budget the run distributed.
    pub budget_watts: f64,
    /// Wall-clock for the whole gated run.
    pub elapsed_s: f64,
    /// Control passes executed.
    pub pumps: u64,
    /// Stages that hit their deadline (empty for a clean run).
    pub stalled_stages: Vec<String>,
}

impl LoadReport {
    /// Did the run hold the line: every stage completed, every endpoint
    /// connected at the end, zero invariant violations?
    pub fn ok(&self) -> bool {
        self.stalled_stages.is_empty()
            && self.connected == self.endpoints
            && self.invariant_violations == 0
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "anor-load: {} endpoint(s), {} storm(s), {:.1} endpoints/s sustained",
            self.endpoints, self.storms, self.endpoints_per_sec
        )?;
        writeln!(
            f,
            "  connected {}/{}  accepted {}  reconnects {}",
            self.connected, self.endpoints, self.accepted, self.reconnects
        )?;
        writeln!(
            f,
            "  pump p50 {:.3} ms  p99 {:.3} ms  over {} pump(s) in {:.2} s",
            self.pump_p50_ms, self.pump_p99_ms, self.pumps, self.elapsed_s
        )?;
        writeln!(
            f,
            "  watts: allocated {:.1} of budget {:.1}  backpressure drops {}",
            self.allocated_watts, self.budget_watts, self.backpressure_drops
        )?;
        if self.stalled_stages.is_empty() {
            write!(f, "  invariant violations: {}", self.invariant_violations)
        } else {
            write!(
                f,
                "  invariant violations: {}  STALLED: {}",
                self.invariant_violations,
                self.stalled_stages.join(", ")
            )
        }
    }
}

/// One synthetic endpoint's driver-side state machine.
struct Endpoint {
    job: JobId,
    type_name: &'static str,
    stream: Option<FramedStream>,
    registered: bool,
    last_cap: Watts,
    sweeps: u64,
    samples_sent: u64,
}

impl Endpoint {
    /// (Re)establish the connection: `Hello` on first contact, `Resume`
    /// (carrying the believed cap) afterwards. Connect failures are left
    /// for the next sweep — under a storm the listener backlog may need
    /// a moment to drain.
    fn ensure_connected(
        &mut self,
        addr: SocketAddr,
        metrics: &TransportMetrics,
        reconnects: &AtomicU64,
    ) {
        if self.stream.as_ref().is_some_and(|s| !s.is_closed()) {
            return;
        }
        self.stream = None;
        let Ok(tcp) = TcpStream::connect(addr) else {
            return;
        };
        let opts = StreamOptions::default().metrics(metrics.clone());
        let Ok(mut stream) = FramedStream::new(tcp, opts) else {
            return;
        };
        let intro = if self.registered {
            JobToCluster::Resume {
                job: self.job,
                type_name: self.type_name.to_string(),
                nodes: 1,
                believed_cap: self.last_cap,
                cause: 0,
            }
        } else {
            JobToCluster::Hello {
                job: self.job,
                type_name: self.type_name.to_string(),
                nodes: 1,
            }
        };
        if stream.send(intro.encode()).is_err() {
            return;
        }
        if self.registered {
            reconnects.fetch_add(1, Ordering::Relaxed);
        }
        self.registered = true;
        self.stream = Some(stream);
    }

    /// One sweep: drain caps, stream the periodic sample, keep the
    /// outbound buffer moving. Transport errors mark the stream closed
    /// and the next sweep reconnects.
    fn sweep(&mut self) {
        self.sweeps += 1;
        let Some(stream) = self.stream.as_mut() else {
            return;
        };
        let frames = match stream.recv_frames() {
            Ok(frames) => frames,
            Err(_) => {
                stream.shutdown_now();
                return;
            }
        };
        for body in frames {
            match ClusterToJob::decode(body) {
                Ok(ClusterToJob::SetPowerCap { cap, .. }) => self.last_cap = cap,
                Ok(ClusterToJob::ResumeAck { cap, .. }) if cap.value() >= 0.0 => {
                    self.last_cap = cap;
                }
                // Corrupt-fault debris: the frame is noise, the session
                // machinery recovers via reconnect when the daemon cuts
                // the conn.
                _ => {}
            }
        }
        if self.sweeps.is_multiple_of(SAMPLE_EVERY_SWEEPS) {
            let draw = if self.last_cap.value() > 0.0 {
                self.last_cap * 0.9
            } else {
                Watts(100.0)
            };
            self.samples_sent += 1;
            let sample = JobToCluster::Sample(EpochSample {
                job: self.job,
                epoch_count: self.samples_sent,
                energy: Joules(draw.value()),
                avg_power: draw,
                avg_cap: self.last_cap.max(Watts::ZERO),
                timestamp: Seconds(self.samples_sent as f64),
                cause: 0,
            });
            let _ = stream.send(sample.encode());
        }
        let _ = stream.flush_some();
    }
}

/// Shared driver coordination.
struct DriverCtl {
    stop: AtomicBool,
    /// Bumped once per storm; drivers drop every socket when it moves.
    storm_epoch: AtomicUsize,
    reconnects: AtomicU64,
}

fn run_driver(
    ctl: &DriverCtl,
    addr: SocketAddr,
    metrics: &TransportMetrics,
    mut endpoints: Vec<Endpoint>,
) {
    let mut seen_epoch = 0usize;
    while !ctl.stop.load(Ordering::SeqCst) {
        let epoch = ctl.storm_epoch.load(Ordering::SeqCst);
        if epoch != seen_epoch {
            seen_epoch = epoch;
            for ep in endpoints.iter_mut() {
                if let Some(stream) = ep.stream.as_mut() {
                    stream.shutdown_now();
                }
                ep.stream = None;
            }
        }
        for ep in endpoints.iter_mut() {
            ep.ensure_connected(addr, metrics, &ctl.reconnects);
            ep.sweep();
        }
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// Pump the daemon until `done` holds or the deadline lapses; parks on
/// transport readiness between passes. Alternates the budget ±5% every
/// 20 pumps so caps keep moving — real cap traffic is what loads the
/// egress path (and what trips `drop@N` fault schedules).
fn pump_stage(
    b: &mut ClusterBudgeter,
    budget: Watts,
    deadline: Duration,
    mut done: impl FnMut(&ClusterBudgeter) -> bool,
) -> Result<bool> {
    let started = Instant::now();
    let mut pump_no = 0u64;
    loop {
        pump_no += 1;
        let wobble = if (pump_no / 20).is_multiple_of(2) {
            budget
        } else {
            budget * 1.05
        };
        b.pump(wobble)?;
        if done(b) {
            return Ok(true);
        }
        if started.elapsed() > deadline {
            return Ok(false);
        }
        b.wait_readable(Duration::from_millis(1));
    }
}

/// Run the harness: build a budgeter on the configured plane, storm it,
/// and report. A stalled stage is reported, not an error — the report's
/// [`LoadReport::ok`] is the pass/fail verdict.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport> {
    if cfg.endpoints == 0 {
        return Err(AnorError::config("anor-load needs at least one endpoint"));
    }
    let telemetry = cfg.telemetry.clone().unwrap_or_default();
    let budget = if cfg.budget.value() > 0.0 {
        cfg.budget
    } else {
        Watts(200.0 * cfg.endpoints as f64)
    };
    let mut builder = ClusterBudgeter::builder(BudgeterConfig::new(cfg.policy, false))
        .telemetry(telemetry.clone())
        .lease(LeaseConfig::after_misses(cfg.lease_miss_pumps))
        .transport(cfg.transport.kind)
        .shards(cfg.transport.shards)
        .conn_queue_depth(cfg.transport.conn_queue_depth);
    if let Some(plan) = cfg.faults.clone() {
        builder = builder.faults(plan);
    }
    let (mut b, addr) = builder.bind()?;
    let ctl = Arc::new(DriverCtl {
        stop: AtomicBool::new(false),
        storm_epoch: AtomicUsize::new(0),
        reconnects: AtomicU64::new(0),
    });
    let client_metrics = TransportMetrics::new(&telemetry, "load-endpoint");
    let drivers = cfg.drivers.clamp(1, cfg.endpoints);
    let mut threads = Vec::new();
    for d in 0..drivers {
        let endpoints: Vec<Endpoint> = (0..cfg.endpoints)
            .filter(|i| i % drivers == d)
            .map(|i| Endpoint {
                job: JobId(i as u64 + 1),
                type_name: TYPE_NAMES[i % TYPE_NAMES.len()],
                stream: None,
                registered: false,
                last_cap: Watts(-1.0),
                sweeps: 0,
                samples_sent: 0,
            })
            .collect();
        let ctl = Arc::clone(&ctl);
        let metrics = client_metrics.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("anor-load-driver{d}"))
                .spawn(move || run_driver(&ctl, addr, &metrics, endpoints))?,
        );
    }
    let started = Instant::now();
    let mut stalled: Vec<String> = Vec::new();
    let want = cfg.endpoints;
    // Stage: every endpoint registered and holding a lease.
    if !pump_stage(&mut b, budget, cfg.stage_deadline, |b| {
        b.active_jobs() == want
    })? {
        stalled.push("register".to_string());
    }
    // Stage: every endpoint capped at least once.
    if stalled.is_empty()
        && !pump_stage(&mut b, budget, cfg.stage_deadline, |b| {
            b.job_caps().iter().all(|(_, cap)| cap.is_some())
        })?
    {
        stalled.push("cap".to_string());
    }
    // Stages: reconnect storms. Each bumps the epoch (drivers cut every
    // socket) and waits until every session is Connected again.
    for storm in 1..=cfg.storms {
        if !stalled.is_empty() {
            break;
        }
        ctl.storm_epoch.store(storm, Ordering::SeqCst);
        let floor = ctl.reconnects.load(Ordering::SeqCst) + want as u64;
        let ok = pump_stage(&mut b, budget, cfg.stage_deadline, |b| {
            ctl.reconnects.load(Ordering::SeqCst) >= floor
                && b.session_states()
                    .iter()
                    .all(|(_, s)| *s == SessionState::Connected)
        })?;
        if !ok {
            stalled.push(format!("storm{storm}"));
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    ctl.stop.store(true, Ordering::SeqCst);
    for t in threads {
        let _ = t.join();
    }
    let pump_h = telemetry.histogram("budgeter_pump_seconds", &[]);
    let snapshot = b.status_snapshot();
    let reconnects = ctl.reconnects.load(Ordering::SeqCst);
    Ok(LoadReport {
        endpoints: cfg.endpoints,
        storms: cfg.storms,
        connected: b.active_jobs(),
        accepted: snapshot.accepted,
        reconnects,
        endpoints_per_sec: (cfg.endpoints as u64 + reconnects) as f64 / elapsed,
        pump_p50_ms: pump_h.quantile(0.5) * 1e3,
        pump_p99_ms: pump_h.quantile(0.99) * 1e3,
        backpressure_drops: b.backpressure_drops(),
        invariant_violations: b.invariant_violations(),
        allocated_watts: snapshot.allocated_watts,
        budget_watts: budget.value(),
        elapsed_s: elapsed,
        pumps: b.pump_count(),
        stalled_stages: stalled,
    })
}
