//! The per-job job-tier endpoint process.
//!
//! Fig. 2's middle box: one of these runs per job, bridging the GEOPM
//! endpoint (shared memory to the agent root) to the cluster budgeter
//! (TCP). It owns the job's [`PowerModeler`]: endpoint samples feed the
//! model; re-trains push `Model` messages up; `SetPowerCap` messages from
//! the budgeter become agent policies — optionally dithered while the
//! model is under-identified.

use crate::codec::{FramedStream, StreamOptions, TransportMetrics};
use crate::session::{FaultPlan, RetryPolicy, SessionState};
use anor_geopm::{AgentPolicy, EndpointModeler};
use anor_model::{ModelSource, PowerModeler};
use anor_telemetry::{CauseId, Counter, FlightRecorder, RecEvent, Telemetry, TraceStage, Tracer};
use anor_types::msg::{ClusterToJob, EpochSample, JobToCluster};
use anor_types::{AnorError, JobId, Result, Seconds, Watts};
use std::net::{SocketAddr, TcpStream};

/// Cached counters for one endpoint's budgeter round-trips.
#[derive(Debug)]
struct EndpointMetrics {
    telemetry: Telemetry,
    policies_applied: Counter,
    samples_forwarded: Counter,
    models_pushed: Counter,
    session_reconnects: Counter,
    sessions_gone: Counter,
}

impl EndpointMetrics {
    fn new(telemetry: Telemetry) -> Self {
        EndpointMetrics {
            policies_applied: telemetry.counter("endpoint_policies_applied_total", &[]),
            samples_forwarded: telemetry.counter("endpoint_samples_forwarded_total", &[]),
            models_pushed: telemetry.counter("endpoint_models_pushed_total", &[]),
            session_reconnects: telemetry.counter("endpoint_session_reconnects_total", &[]),
            sessions_gone: telemetry.counter("endpoint_sessions_gone_total", &[]),
            telemetry,
        }
    }
}

/// Everything needed to (re-)establish the budgeter link and introduce
/// the job: kept on the endpoint so a reconnect can replay the
/// registration without help from the caller.
#[derive(Debug, Clone)]
struct SessionConfig {
    addr: SocketAddr,
    announced_type: String,
    retry: RetryPolicy,
    faults: Option<FaultPlan>,
}

/// Builds a [`JobEndpoint`]. Replaces the old `connect`/`connect_with`
/// constructor pair and is where new session knobs land: retry policy,
/// chaos fault plan, telemetry and tracing.
#[derive(Debug)]
pub struct EndpointBuilder {
    addr: SocketAddr,
    job: JobId,
    announced_type: String,
    nodes: u32,
    endpoint: EndpointModeler,
    modeler: PowerModeler,
    telemetry: Option<Telemetry>,
    tracer: Option<Tracer>,
    retry: RetryPolicy,
    faults: Option<FaultPlan>,
    recorder: Option<FlightRecorder>,
}

impl EndpointBuilder {
    /// Record transport and round-trip series into a shared handle.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Trace cap receipt, policy writes, sample forwarding, retrains and
    /// session transitions.
    pub fn tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Reconnect policy for lost budgeter connections (defaults to
    /// [`RetryPolicy::default`]; use [`RetryPolicy::disabled`] to make
    /// the first disconnect final).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Inject a chaos [`FaultPlan`] into the endpoint's send path. The
    /// plan's cumulative frame counter spans reconnects.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Flight-record the endpoint's wire traffic: every inbound budgeter
    /// frame, every frame sent up, and session open/close transitions.
    /// Endpoint recordings carry role `endpoint` — `anor-replay` reads
    /// them for inspection and diffing, not reconstruction.
    pub fn recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Connect to the budgeter and introduce the job.
    pub fn connect(self) -> Result<JobEndpoint> {
        let telemetry = self.telemetry.unwrap_or_default();
        self.endpoint.attach_telemetry(&telemetry);
        let transport = TransportMetrics::new(&telemetry, "endpoint");
        let session = SessionConfig {
            addr: self.addr,
            announced_type: self.announced_type.clone(),
            retry: self.retry,
            faults: self.faults,
        };
        let mut opts = StreamOptions::default().metrics(transport.clone());
        if let Some(p) = &session.faults {
            opts = opts.faults(p.clone());
        }
        let mut stream = FramedStream::new(TcpStream::connect(session.addr)?, opts)?;
        let hello = JobToCluster::Hello {
            job: self.job,
            type_name: self.announced_type,
            nodes: self.nodes,
        }
        .encode();
        if let Some(rec) = &self.recorder {
            rec.record(&RecEvent::ConnOpen { conn: 0 });
            rec.record(&RecEvent::DecisionTx {
                conn: 0,
                frame: hello.to_vec(),
            });
        }
        stream.send(hello)?;
        let mut modeler = self.modeler;
        let tracer = self.tracer;
        if let Some(t) = &tracer {
            modeler.attach_tracer(t);
        }
        Ok(JobEndpoint {
            job: self.job,
            nodes: self.nodes,
            stream,
            endpoint: self.endpoint,
            modeler,
            last_sample_seq: 0,
            budget_cap: None,
            last_policy_at: None,
            control_interval: Seconds(2.0),
            sample_interval: Seconds(1.0),
            last_sample_sent_at: None,
            models_sent: 0,
            shutdown_requested: false,
            metrics: EndpointMetrics::new(telemetry),
            tracer,
            budget_cause: 0,
            disconnect_dumped: false,
            session,
            transport,
            state: SessionState::Connected,
            next_attempt_at: None,
            last_model: None,
            recorder: self.recorder,
        })
    }
}

/// The job-tier process for one job (pump-driven).
#[derive(Debug)]
pub struct JobEndpoint {
    job: JobId,
    nodes: u32,
    stream: FramedStream,
    endpoint: EndpointModeler,
    modeler: PowerModeler,
    last_sample_seq: u64,
    budget_cap: Option<Watts>,
    last_policy_at: Option<Seconds>,
    control_interval: Seconds,
    sample_interval: Seconds,
    last_sample_sent_at: Option<Seconds>,
    models_sent: u64,
    shutdown_requested: bool,
    metrics: EndpointMetrics,
    tracer: Option<Tracer>,
    /// Cause of the budget cap currently in force (0 = untraced).
    budget_cause: u64,
    /// Postmortem already dumped for the current disconnect episode.
    disconnect_dumped: bool,
    /// How to re-establish and re-introduce the session.
    session: SessionConfig,
    /// Transport series shared across reconnected streams.
    transport: TransportMetrics,
    /// Where the budgeter link currently stands.
    state: SessionState,
    /// Virtual deadline of the next reconnect attempt.
    next_attempt_at: Option<Seconds>,
    /// Last model pushed (or queued) — replayed after a resume, since
    /// models are not individually acknowledged.
    last_model: Option<JobToCluster>,
    /// Endpoint-side flight recorder (wire traffic + session events).
    recorder: Option<FlightRecorder>,
}

impl JobEndpoint {
    /// Start building an endpoint for `job`. `announced_type` is the
    /// type name the batch system believes (possibly wrong).
    pub fn builder(
        addr: SocketAddr,
        job: JobId,
        announced_type: &str,
        nodes: u32,
        endpoint: EndpointModeler,
        modeler: PowerModeler,
    ) -> EndpointBuilder {
        EndpointBuilder {
            addr,
            job,
            announced_type: announced_type.to_string(),
            nodes,
            endpoint,
            modeler,
            telemetry: None,
            tracer: None,
            retry: RetryPolicy::default(),
            faults: None,
            recorder: None,
        }
    }

    /// Connect to the budgeter and introduce the job. `announced_type` is
    /// the type name the batch system believes (possibly wrong).
    #[deprecated(note = "use JobEndpoint::builder(..).connect(); removed after one release")]
    pub fn connect(
        addr: SocketAddr,
        job: JobId,
        announced_type: &str,
        nodes: u32,
        endpoint: EndpointModeler,
        modeler: PowerModeler,
    ) -> Result<Self> {
        Self::builder(addr, job, announced_type, nodes, endpoint, modeler).connect()
    }

    /// Like `connect`, recording transport and round-trip series into a
    /// shared [`Telemetry`] handle.
    #[deprecated(
        note = "use JobEndpoint::builder(..).telemetry(..).connect(); removed after one release"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with(
        addr: SocketAddr,
        job: JobId,
        announced_type: &str,
        nodes: u32,
        endpoint: EndpointModeler,
        modeler: PowerModeler,
        telemetry: Telemetry,
    ) -> Result<Self> {
        Self::builder(addr, job, announced_type, nodes, endpoint, modeler)
            .telemetry(telemetry)
            .connect()
    }

    /// Trace cap receipt, policy writes, sample forwarding and retrains
    /// into `tracer` (also threads it into the owned modeler).
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.modeler.attach_tracer(tracer);
        self.tracer = Some(tracer.clone());
    }

    /// One pass of the endpoint's control loop at virtual time `now`.
    pub fn pump(&mut self, now: Seconds) -> Result<()> {
        if self.state.is_connected() {
            self.pump_stream(now)?;
            if self.stream.is_closed() {
                self.on_disconnect(now);
            }
        } else {
            self.try_reconnect(now);
        }
        // Fresh agent samples -> modeler (+ model push on retrain). The
        // modeler keeps learning even while the link is down; the model
        // is replayed on resume.
        if let Some((sample, seq)) = self.endpoint.read_sample() {
            if seq != self.last_sample_seq {
                self.last_sample_seq = seq;
                let per_node_cap = sample.cap / self.nodes as f64;
                let retrained =
                    self.modeler
                        .observe(sample.epoch_count, sample.timestamp, per_node_cap);
                if retrained {
                    let model = JobToCluster::Model {
                        job: self.job,
                        curve: self.modeler.curve(),
                        samples: self.modeler.observation_count() as u32,
                        cause: self.modeler.cause(),
                    };
                    self.last_model = Some(model.clone());
                    if self.state.is_connected() {
                        let frame = model.encode();
                        self.rec_tx(&frame);
                        self.stream.send(frame)?;
                        self.models_sent += 1;
                        self.metrics.models_pushed.inc();
                    }
                }
                self.forward_sample(now, false)?;
            }
        }
        // Periodic policy refresh (lets the dither alternate). The
        // believed cap stays in force while reconnecting — power safety
        // does not lapse with the TCP link — but a `Gone` session stops
        // pretending it has a live budget.
        let due = self
            .last_policy_at
            .is_none_or(|t| (now - t).value() >= self.control_interval.value());
        if due && self.budget_cap.is_some() && !self.state.is_gone() {
            self.apply_policy();
            self.last_policy_at = Some(now);
        }
        Ok(())
    }

    /// Flush, drain and dispatch inbound budgeter frames on the live
    /// stream.
    fn pump_stream(&mut self, now: Seconds) -> Result<()> {
        self.stream.flush_some()?;
        // Inbound budgeter messages. A malformed frame or corrupt length
        // prefix from the budgeter must not kill the job: the endpoint
        // dumps its flight recorder, keeps the last-known cap, and carries
        // on driving the agent.
        let frames = match self.stream.recv_frames() {
            Ok(frames) => frames,
            Err(AnorError::Protocol(e)) => {
                if let Some(t) = &self.tracer {
                    t.record_detail(TraceStage::TransportError, CauseId::NONE, &e);
                    t.dump_postmortem("endpoint-protocol-error");
                }
                Vec::new()
            }
            Err(e) => return Err(e),
        };
        for body in frames {
            if let Some(rec) = &self.recorder {
                rec.record(&RecEvent::FrameIn {
                    conn: 0,
                    body: body.to_vec(),
                });
            }
            let msg = match ClusterToJob::decode(body) {
                Ok(m) => m,
                Err(e) => {
                    if let Some(t) = &self.tracer {
                        t.record_detail(
                            TraceStage::TransportError,
                            CauseId::NONE,
                            &format!("malformed budgeter frame: {e}"),
                        );
                        t.dump_postmortem("endpoint-malformed-frame");
                    }
                    continue;
                }
            };
            match msg {
                ClusterToJob::SetPowerCap { cap, cause } => {
                    if let Some(t) = &self.tracer {
                        t.record_job(
                            TraceStage::CapRx,
                            CauseId(cause),
                            self.job.0,
                            Some(cap.value()),
                        );
                    }
                    self.adopt_cap(cap, cause, now);
                }
                ClusterToJob::ResumeAck { cap, cause } => {
                    if let Some(t) = &self.tracer {
                        t.record_job(
                            TraceStage::Resume,
                            CauseId(cause),
                            self.job.0,
                            Some(cap.value()),
                        );
                    }
                    // A non-positive cap means the budgeter has nothing
                    // on record (e.g. it restarted); keep the believed
                    // cap until the next rebalance re-caps us.
                    if cap.value() > 0.0 {
                        self.adopt_cap(cap, cause, now);
                    }
                }
                ClusterToJob::RequestSample => self.forward_sample(now, true)?,
                ClusterToJob::Shutdown => self.shutdown_requested = true,
            }
        }
        Ok(())
    }

    /// Record an outbound frame into the endpoint flight recorder.
    fn rec_tx(&self, frame: &bytes::Bytes) {
        if let Some(rec) = &self.recorder {
            rec.record(&RecEvent::DecisionTx {
                conn: 0,
                frame: frame.to_vec(),
            });
        }
    }

    /// Adopt a budgeter-supplied cap and apply it promptly.
    fn adopt_cap(&mut self, cap: Watts, cause: u64, now: Seconds) {
        self.budget_cap = Some(cap);
        self.budget_cause = cause;
        self.modeler.set_cause(cause);
        self.apply_policy();
        self.last_policy_at = Some(now);
    }

    /// The live stream just died: dump the flight recorder once and move
    /// to `Reconnecting` (or straight to `Gone` when retry is disabled).
    fn on_disconnect(&mut self, now: Seconds) {
        if !self.disconnect_dumped {
            self.disconnect_dumped = true;
            if let Some(rec) = &self.recorder {
                rec.record(&RecEvent::ConnClosed { conn: 0 });
            }
            if let Some(t) = &self.tracer {
                t.record_job(
                    TraceStage::Disconnect,
                    CauseId(self.budget_cause),
                    self.job.0,
                    self.budget_cap.map(|c| c.value()),
                );
                t.dump_postmortem("budgeter-disconnect");
            }
        }
        if self.session.retry.enabled() {
            self.state = SessionState::Reconnecting { attempt: 0 };
            self.next_attempt_at = Some(Seconds(now.value() + self.session.retry.delay(1).value()));
        } else {
            self.go_gone();
        }
    }

    /// Declared dead: retry budget exhausted (or retry disabled).
    fn go_gone(&mut self) {
        self.state = SessionState::Gone;
        self.next_attempt_at = None;
        self.metrics.sessions_gone.inc();
        if let Some(t) = &self.tracer {
            t.record_detail(
                TraceStage::Disconnect,
                CauseId(self.budget_cause),
                "session gone: reconnect attempts exhausted",
            );
            t.dump_postmortem("session-gone");
        }
    }

    /// Attempt one reconnect if its backoff deadline has passed.
    fn try_reconnect(&mut self, now: Seconds) {
        let SessionState::Reconnecting { attempt } = self.state else {
            return;
        };
        let due = self
            .next_attempt_at
            .is_some_and(|t| now.value() >= t.value());
        if !due {
            return;
        }
        let attempt = attempt + 1;
        match self.reopen() {
            Ok(()) => {
                self.state = SessionState::Connected;
                self.next_attempt_at = None;
                self.disconnect_dumped = false;
                self.metrics.session_reconnects.inc();
                if let Some(t) = &self.tracer {
                    t.record_job(
                        TraceStage::Reconnect,
                        CauseId(self.budget_cause),
                        self.job.0,
                        self.budget_cap.map(|c| c.value()),
                    );
                }
            }
            Err(_) if attempt >= self.session.retry.max_attempts => self.go_gone(),
            Err(_) => {
                self.state = SessionState::Reconnecting { attempt };
                self.next_attempt_at = Some(Seconds(
                    now.value() + self.session.retry.delay(attempt + 1).value(),
                ));
            }
        }
    }

    /// Dial the budgeter again and replay the session introduction: a
    /// `Resume` carrying the believed cap, then the last model (models
    /// are not individually acknowledged, so the latest one is replayed
    /// wholesale).
    fn reopen(&mut self) -> Result<()> {
        let mut opts = StreamOptions::default().metrics(self.transport.clone());
        if let Some(p) = &self.session.faults {
            opts = opts.faults(p.clone());
        }
        let mut stream = FramedStream::new(TcpStream::connect(self.session.addr)?, opts)?;
        if let Some(rec) = &self.recorder {
            rec.record(&RecEvent::ConnOpen { conn: 0 });
        }
        let resume = JobToCluster::Resume {
            job: self.job,
            type_name: self.session.announced_type.clone(),
            nodes: self.nodes,
            believed_cap: self.budget_cap.unwrap_or(Watts(-1.0)),
            cause: self.budget_cause,
        }
        .encode();
        self.rec_tx(&resume);
        stream.send(resume)?;
        if let Some(model) = self.last_model.clone() {
            let frame = model.encode();
            self.rec_tx(&frame);
            stream.send(frame)?;
        }
        self.stream = stream;
        Ok(())
    }

    fn apply_policy(&mut self) {
        if let Some(budget) = self.budget_cap {
            let cap = self.modeler.recommend_cap(budget);
            self.endpoint
                .write_policy(AgentPolicy::caused(cap, self.budget_cause));
            if let Some(t) = &self.tracer {
                t.record_job(
                    TraceStage::PolicyWrite,
                    CauseId(self.budget_cause),
                    self.job.0,
                    Some(cap.value()),
                );
            }
            self.metrics.policies_applied.inc();
            self.metrics
                .telemetry
                .gauge(
                    "endpoint_node_cap_watts",
                    &[("job", &self.job.0.to_string())],
                )
                .set(cap.value());
        }
    }

    fn forward_sample(&mut self, now: Seconds, force: bool) -> Result<()> {
        if !self.state.is_connected() {
            // Samples taken during an outage are not spooled: the cap is
            // re-synced on resume and fresh samples follow immediately.
            return Ok(());
        }
        let Some((s, _)) = self.endpoint.read_sample() else {
            return Ok(());
        };
        let due = force
            || self
                .last_sample_sent_at
                .is_none_or(|t| (now - t).value() >= self.sample_interval.value());
        if !due {
            return Ok(());
        }
        self.last_sample_sent_at = Some(now);
        self.metrics.samples_forwarded.inc();
        if let Some(t) = &self.tracer {
            t.record_job(
                TraceStage::SampleTx,
                CauseId(s.cause),
                self.job.0,
                Some(s.power.value()),
            );
        }
        let frame = JobToCluster::Sample(EpochSample {
            job: self.job,
            epoch_count: s.epoch_count,
            energy: s.energy,
            avg_power: s.power,
            avg_cap: s.cap / self.nodes as f64,
            timestamp: s.timestamp,
            cause: s.cause,
        })
        .encode();
        self.rec_tx(&frame);
        self.stream.send(frame)
    }

    /// Announce job completion with its final application runtime.
    pub fn finish(&mut self, elapsed: Seconds) -> Result<()> {
        let frame = JobToCluster::Done {
            job: self.job,
            elapsed,
        }
        .encode();
        self.rec_tx(&frame);
        self.stream.send(frame)?;
        self.stream.flush_some()
    }

    /// The job this endpoint serves.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// Latest per-node budget received from the budgeter. `None` once
    /// the session is [`SessionState::Gone`] — a dead endpoint must not
    /// report a stale cap as live (the silent-stranding bug).
    pub fn budget_cap(&self) -> Option<Watts> {
        if self.state.is_gone() {
            None
        } else {
            self.budget_cap
        }
    }

    /// Where the budgeter link currently stands.
    pub fn session_state(&self) -> SessionState {
        self.state
    }

    /// Where the modeler's current curve came from.
    pub fn model_source(&self) -> ModelSource {
        self.modeler.source()
    }

    /// Number of `Model` messages pushed up so far.
    pub fn models_sent(&self) -> u64 {
        self.models_sent
    }

    /// Did the budgeter ask us to shut down?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_geopm::{endpoint_pair, AgentSample};
    use anor_model::ModelerConfig;
    use anor_types::msg::take_frame;
    use anor_types::{CapRange, Joules, PowerCurve};
    use bytes::BytesMut;
    use std::net::TcpListener;

    struct Harness {
        endpoint: JobEndpoint,
        server: FramedStream,
        agent: anor_geopm::EndpointAgent,
    }

    fn harness(dither: bool) -> Harness {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (modeler_side, agent_side) = endpoint_pair();
        let mut cfg = ModelerConfig::paper();
        if !dither {
            cfg.dither_fraction = 0.0;
        }
        // Tests drive the dither without epoch traffic: flip per call.
        cfg.dither_hold_epochs = 0;
        let default = PowerCurve::from_anchor(Seconds(0.5), 0.1, CapRange::paper_node());
        let pm = PowerModeler::with_default(cfg, default);
        let je = JobEndpoint::builder(addr, JobId(1), "bt.D.81", 2, modeler_side, pm)
            .connect()
            .unwrap();
        let (stream, _) = listener.accept().unwrap();
        Harness {
            endpoint: je,
            server: FramedStream::new(stream, StreamOptions::default()).unwrap(),
            agent: agent_side,
        }
    }

    fn drain(server: &mut FramedStream) -> Vec<JobToCluster> {
        let mut out = Vec::new();
        for _ in 0..200 {
            for body in server.recv_frames().unwrap() {
                out.push(JobToCluster::decode(body).unwrap());
            }
            if !out.is_empty() {
                return out;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        out
    }

    #[test]
    fn hello_arrives_first() {
        let mut h = harness(false);
        h.endpoint.pump(Seconds(0.0)).unwrap();
        let msgs = drain(&mut h.server);
        assert!(matches!(
            msgs[0],
            JobToCluster::Hello {
                job: JobId(1),
                nodes: 2,
                ..
            }
        ));
    }

    #[test]
    fn cap_from_budgeter_reaches_agent_policy() {
        let mut h = harness(false);
        h.server
            .send(
                ClusterToJob::SetPowerCap {
                    cap: Watts(190.0),
                    cause: 0,
                }
                .encode(),
            )
            .unwrap();
        // Give TCP a moment, then pump.
        for i in 0..100 {
            h.server.flush_some().unwrap();
            h.endpoint.pump(Seconds(i as f64 * 0.1)).unwrap();
            if h.endpoint.budget_cap() == Some(Watts(190.0)) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.endpoint.budget_cap(), Some(Watts(190.0)));
        let (policy, _) = h.agent.read_policy().expect("policy written");
        assert_eq!(policy.node_cap, Watts(190.0), "no dither when disabled");
    }

    #[test]
    fn dither_alternates_around_budget() {
        let mut h = harness(true);
        h.server
            .send(
                ClusterToJob::SetPowerCap {
                    cap: Watts(200.0),
                    cause: 0,
                }
                .encode(),
            )
            .unwrap();
        let mut caps = Vec::new();
        let mut t = 0.0;
        for _ in 0..200 {
            h.server.flush_some().unwrap();
            h.endpoint.pump(Seconds(t)).unwrap();
            t += 2.5; // beyond the control interval so the dither flips
            if let Some((p, seq)) = h.agent.read_policy() {
                if caps.last() != Some(&(p.node_cap, seq)) {
                    caps.push((p.node_cap, seq));
                }
            }
            if caps.len() >= 4 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(caps.len() >= 4, "policies: {caps:?}");
        let values: Vec<f64> = caps.iter().map(|(c, _)| c.value()).collect();
        // Alternating above/below 200, mean 200.
        assert!(values.iter().any(|v| *v > 200.0));
        assert!(values.iter().any(|v| *v < 200.0));
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 200.0).abs() < 8.0, "mean {mean}");
    }

    #[test]
    fn samples_forwarded_with_per_node_cap() {
        let mut h = harness(false);
        h.endpoint.pump(Seconds(0.0)).unwrap();
        drain(&mut h.server); // consume hello
        h.agent.write_sample(AgentSample {
            epoch_count: 3,
            energy: Joules(500.0),
            power: Watts(380.0),
            cap: Watts(400.0), // summed over 2 nodes
            timestamp: Seconds(4.0),
            cause: 0,
        });
        h.endpoint.pump(Seconds(5.0)).unwrap();
        let msgs = drain(&mut h.server);
        let JobToCluster::Sample(s) = &msgs[0] else {
            panic!("expected sample, got {msgs:?}");
        };
        assert_eq!(s.epoch_count, 3);
        assert_eq!(s.avg_cap, Watts(200.0), "cap reported per node");
        assert_eq!(s.avg_power, Watts(380.0));
    }

    #[test]
    fn retrain_pushes_model_message() {
        let mut h = harness(false);
        h.endpoint.pump(Seconds(0.0)).unwrap();
        drain(&mut h.server);
        // Feed epochs at two cap levels so the modeler can fit; the agent
        // reports the summed 2-node cap.
        let mut t = 0.0;
        let mut count = 0u64;
        for (cap2, tau) in [(320.0, 3.0), (520.0, 2.0)] {
            for _ in 0..12 {
                t += tau;
                count += 1;
                h.agent.write_sample(AgentSample {
                    epoch_count: count,
                    energy: Joules(t * 300.0),
                    power: Watts(cap2),
                    cap: Watts(cap2),
                    timestamp: Seconds(t),
                    cause: 0,
                });
                h.endpoint.pump(Seconds(t)).unwrap();
            }
        }
        assert!(
            h.endpoint.models_sent() >= 1,
            "a retrain must push a Model message"
        );
        assert!(matches!(
            h.endpoint.model_source(),
            ModelSource::Fitted { .. }
        ));
    }

    #[test]
    fn done_message_sent_on_finish() {
        let mut h = harness(false);
        h.endpoint.pump(Seconds(0.0)).unwrap();
        drain(&mut h.server);
        h.endpoint.finish(Seconds(617.0)).unwrap();
        let msgs = drain(&mut h.server);
        assert!(matches!(
            msgs[0],
            JobToCluster::Done { job: JobId(1), elapsed } if elapsed == Seconds(617.0)
        ));
    }

    #[test]
    fn shutdown_request_latches() {
        let mut h = harness(false);
        h.server.send(ClusterToJob::Shutdown.encode()).unwrap();
        for i in 0..100 {
            h.server.flush_some().unwrap();
            h.endpoint.pump(Seconds(i as f64)).unwrap();
            if h.endpoint.shutdown_requested() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("shutdown never observed");
    }

    #[test]
    fn telemetry_counts_policies_samples_and_transport() {
        let telemetry = Telemetry::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (modeler_side, agent) = endpoint_pair();
        let mut cfg = ModelerConfig::paper();
        cfg.dither_fraction = 0.0;
        let default = PowerCurve::from_anchor(Seconds(0.5), 0.1, CapRange::paper_node());
        let pm = PowerModeler::with_default(cfg, default);
        let mut je = JobEndpoint::builder(addr, JobId(4), "bt.D.81", 2, modeler_side, pm)
            .telemetry(telemetry.clone())
            .connect()
            .unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut server = FramedStream::new(stream, StreamOptions::default()).unwrap();
        server
            .send(
                ClusterToJob::SetPowerCap {
                    cap: Watts(190.0),
                    cause: 0,
                }
                .encode(),
            )
            .unwrap();
        agent.write_sample(AgentSample {
            epoch_count: 1,
            energy: Joules(100.0),
            power: Watts(350.0),
            cap: Watts(380.0),
            timestamp: Seconds(1.0),
            cause: 0,
        });
        for i in 0..100 {
            server.flush_some().unwrap();
            je.pump(Seconds(i as f64 * 0.1)).unwrap();
            if je.budget_cap().is_some() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(
            telemetry
                .counter("endpoint_policies_applied_total", &[])
                .get()
                >= 1
        );
        assert!(
            telemetry
                .counter("endpoint_samples_forwarded_total", &[])
                .get()
                >= 1
        );
        assert!(
            telemetry
                .counter("transport_frames_tx_total", &[("role", "endpoint")])
                .get()
                >= 2,
            "hello + sample at least"
        );
        assert_eq!(
            telemetry
                .counter("transport_reconnects_total", &[("role", "endpoint")])
                .get(),
            1
        );
        assert_eq!(
            telemetry
                .gauge("endpoint_node_cap_watts", &[("job", "4")])
                .get(),
            190.0
        );
    }

    fn modeler() -> PowerModeler {
        let mut cfg = ModelerConfig::paper();
        cfg.dither_fraction = 0.0;
        let default = PowerCurve::from_anchor(Seconds(0.5), 0.1, CapRange::paper_node());
        PowerModeler::with_default(cfg, default)
    }

    #[test]
    fn reconnects_and_resumes_with_identical_cap() {
        use crate::session::{RetryPolicy, SessionState};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (modeler_side, _agent) = endpoint_pair();
        let retry = RetryPolicy {
            base_delay: Seconds(0.5),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut je = JobEndpoint::builder(addr, JobId(9), "bt.D.81", 2, modeler_side, modeler())
            .retry(retry)
            .connect()
            .unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut server = FramedStream::new(stream, StreamOptions::default()).unwrap();
        server
            .send(
                ClusterToJob::SetPowerCap {
                    cap: Watts(205.0),
                    cause: 11,
                }
                .encode(),
            )
            .unwrap();
        for i in 0..100 {
            server.flush_some().unwrap();
            je.pump(Seconds(i as f64 * 0.01)).unwrap();
            if je.budget_cap() == Some(Watts(205.0)) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(je.budget_cap(), Some(Watts(205.0)));
        // Kill the budgeter side of the link.
        drop(server);
        let mut t = 1.0;
        for _ in 0..100 {
            je.pump(Seconds(t)).unwrap();
            if !je.session_state().is_connected() {
                break;
            }
            t += 0.1;
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(
            matches!(je.session_state(), SessionState::Reconnecting { .. }),
            "{:?}",
            je.session_state()
        );
        // The believed cap stays in force while reconnecting.
        assert_eq!(je.budget_cap(), Some(Watts(205.0)));
        // Advance virtual time past the backoff; the endpoint redials.
        t += 1.0;
        je.pump(Seconds(t)).unwrap();
        assert!(je.session_state().is_connected(), "redial should succeed");
        let (stream, _) = listener.accept().unwrap();
        let mut server = FramedStream::new(stream, StreamOptions::default()).unwrap();
        // The first frame on the new connection is the Resume, carrying
        // the cap the endpoint still believes.
        let mut msgs = Vec::new();
        for _ in 0..200 {
            for body in server.recv_frames().unwrap() {
                msgs.push(JobToCluster::decode(body).unwrap());
            }
            if !msgs.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let JobToCluster::Resume {
            job,
            believed_cap,
            cause,
            ..
        } = &msgs[0]
        else {
            panic!("expected Resume first, got {msgs:?}");
        };
        assert_eq!(*job, JobId(9));
        assert_eq!(*believed_cap, Watts(205.0));
        assert_eq!(*cause, 11);
        // Ack with the cap on record; the endpoint keeps an identical cap.
        server
            .send(
                ClusterToJob::ResumeAck {
                    cap: Watts(205.0),
                    cause: 11,
                }
                .encode(),
            )
            .unwrap();
        for _ in 0..100 {
            server.flush_some().unwrap();
            t += 0.1;
            je.pump(Seconds(t)).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(je.budget_cap(), Some(Watts(205.0)));
        assert!(je.session_state().is_connected());
    }

    #[test]
    fn retry_disabled_goes_gone_and_stops_reporting_a_live_cap() {
        use crate::session::RetryPolicy;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (modeler_side, _agent) = endpoint_pair();
        let mut je = JobEndpoint::builder(addr, JobId(2), "sp.D.64", 1, modeler_side, modeler())
            .retry(RetryPolicy::disabled())
            .connect()
            .unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut server = FramedStream::new(stream, StreamOptions::default()).unwrap();
        server
            .send(
                ClusterToJob::SetPowerCap {
                    cap: Watts(190.0),
                    cause: 0,
                }
                .encode(),
            )
            .unwrap();
        for i in 0..100 {
            server.flush_some().unwrap();
            je.pump(Seconds(i as f64 * 0.01)).unwrap();
            if je.budget_cap().is_some() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(je.budget_cap(), Some(Watts(190.0)));
        drop(server);
        drop(listener);
        for i in 0..100 {
            je.pump(Seconds(1.0 + i as f64 * 0.1)).unwrap();
            if je.session_state().is_gone() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(je.session_state().is_gone());
        assert_eq!(
            je.budget_cap(),
            None,
            "a Gone session must not report a live cap"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_connect_shims_still_work() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (modeler_side, _agent) = endpoint_pair();
        let je = JobEndpoint::connect(addr, JobId(1), "bt.D.81", 2, modeler_side, modeler());
        assert!(je.is_ok());
        let _ = listener.accept().unwrap();
        let (modeler_side, _agent) = endpoint_pair();
        let je = JobEndpoint::connect_with(
            addr,
            JobId(2),
            "bt.D.81",
            2,
            modeler_side,
            modeler(),
            Telemetry::new(),
        );
        assert!(je.is_ok());
    }

    #[test]
    fn frame_helper_sanity() {
        // Guards against the test-only frame plumbing rotting: a frame we
        // build by hand must parse.
        let frame = ClusterToJob::RequestSample.encode();
        let mut buf = BytesMut::from(&frame[..]);
        let body = take_frame(&mut buf).unwrap().unwrap();
        assert_eq!(
            ClusterToJob::decode(body).unwrap(),
            ClusterToJob::RequestSample
        );
    }
}
