//! The budgeter's live status surface.
//!
//! The budgeter publishes a [`StatusSnapshot`] of its session, lease and
//! pool state into a [`StatusBoard`] once per control pass; the ops
//! endpoint (`anord --status-addr`) serves the board's pre-rendered JSON
//! on `GET /status` and `anor-top` polls it. Publishing renders the JSON
//! *outside* the board lock and swaps a `String` under it, so neither the
//! pump hot path nor a slow scraper ever holds the lock for more than a
//! pointer swap or a clone.
//!
//! The module also carries [`parse_json`], a minimal nested-JSON reader
//! (objects, arrays, strings, numbers, booleans, null). The telemetry
//! crate's `parse_line` is flat-only by design; `anor-top` and the
//! integration tests need to walk the `jobs` array, and the workspace
//! takes no serde dependency.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;

/// Per-job row in a [`StatusSnapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobStatus {
    /// Job id.
    pub job: u64,
    /// Session-state label: `connected`, `reconnecting` or `gone`.
    pub state: String,
    /// Control passes spent disconnected (lease countdown).
    pub missed_pumps: u32,
    /// Last cap sent, watts per node (absent before the first cap).
    pub cap: Option<f64>,
    /// Nodes the job occupies.
    pub nodes: u32,
    /// Samples ingested from the job tier.
    pub samples: u64,
    /// Models ingested from the job tier.
    pub models: u64,
    /// Watts reclaimed from this job's expired lease, still owed on resume.
    pub reclaimed: Option<f64>,
    /// Has the job reported completion?
    pub done: bool,
}

/// Latency percentiles for one named pump phase (the
/// `pump_phase_seconds{phase=...}` histogram family, snapshotted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseStat {
    /// Phase name (`ingest`, `lease-audit`, `model-observe`, `decide`,
    /// `actuate`, `invariant-audit`).
    pub phase: String,
    /// Median phase latency, seconds.
    pub p50: f64,
    /// 90th-percentile phase latency, seconds.
    pub p90: f64,
    /// 99th-percentile phase latency, seconds.
    pub p99: f64,
}

/// One coherent, cheap-to-take snapshot of a running budgeter: pool and
/// lease watts, per-connection session state, pump-latency percentiles,
/// flight-recorder depth and the invariant-auditor verdict. Rendered to
/// JSON for `GET /status`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatusSnapshot {
    /// Busy budget handed to the most recent pump (watts).
    pub budget: f64,
    /// Control passes executed so far.
    pub pumps: u64,
    /// Jobs registered, not done, holding a live lease.
    pub active_jobs: usize,
    /// Connection slots currently open.
    pub conns_open: usize,
    /// Connections accepted over the daemon's lifetime.
    pub accepted: u64,
    /// Jobs that reported completion.
    pub completed: usize,
    /// Σ last-cap × nodes over lease holders (watts allocated out of the pool).
    pub allocated_watts: f64,
    /// Watts reclaimed from expired leases, not yet restored.
    pub reclaimed_watts: f64,
    /// Invariant-auditor violations observed so far (0 in a healthy run).
    pub invariant_violations: u64,
    /// Pump latency percentiles, seconds.
    pub pump_p50: f64,
    /// 90th-percentile pump latency, seconds.
    pub pump_p90: f64,
    /// 99th-percentile pump latency, seconds.
    pub pump_p99: f64,
    /// Events currently buffered in the trace flight recorder.
    pub ring_depth: usize,
    /// Trace events recorded over the run.
    pub trace_recorded: u64,
    /// Postmortem dumps written so far.
    pub postmortems: u64,
    /// Version of the binary that produced this snapshot.
    pub build_version: String,
    /// Git hash of the binary that produced this snapshot.
    pub git_hash: String,
    /// Pump-phase latency percentiles, in execution order.
    pub phases: Vec<PhaseStat>,
    /// Per-job rows, sorted by job id.
    pub jobs: Vec<JobStatus>,
}

fn push_json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `f64` → JSON number: finite values render plainly, non-finite ones
/// (which JSON cannot carry) clamp to `null`-free sentinels.
fn push_json_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

impl StatusSnapshot {
    /// Render the snapshot as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(256 + self.jobs.len() * 128);
        let _ = write!(
            o,
            "{{\"budget\":{},\"pumps\":{},\"active_jobs\":{},\"conns_open\":{},\
             \"accepted\":{},\"completed\":{},",
            fnum(self.budget),
            self.pumps,
            self.active_jobs,
            self.conns_open,
            self.accepted,
            self.completed
        );
        let _ = write!(
            o,
            "\"allocated_watts\":{},\"reclaimed_watts\":{},\"invariant_violations\":{},",
            fnum(self.allocated_watts),
            fnum(self.reclaimed_watts),
            self.invariant_violations
        );
        let _ = write!(
            o,
            "\"pump_p50\":{},\"pump_p90\":{},\"pump_p99\":{},",
            fnum(self.pump_p50),
            fnum(self.pump_p90),
            fnum(self.pump_p99)
        );
        let _ = write!(
            o,
            "\"ring_depth\":{},\"trace_recorded\":{},\"postmortems\":{},",
            self.ring_depth, self.trace_recorded, self.postmortems
        );
        o.push_str("\"build_version\":");
        push_json_str(&mut o, &self.build_version);
        o.push_str(",\"git_hash\":");
        push_json_str(&mut o, &self.git_hash);
        o.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"phase\":");
            push_json_str(&mut o, &p.phase);
            let _ = write!(
                o,
                ",\"p50\":{},\"p90\":{},\"p99\":{}}}",
                fnum(p.p50),
                fnum(p.p90),
                fnum(p.p99)
            );
        }
        o.push_str("],\"jobs\":[");
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{{\"job\":{},\"state\":", j.job);
            push_json_str(&mut o, &j.state);
            let _ = write!(o, ",\"missed_pumps\":{},\"cap\":", j.missed_pumps);
            match j.cap {
                Some(c) => push_json_num(&mut o, c),
                None => o.push_str("null"),
            }
            let _ = write!(
                o,
                ",\"nodes\":{},\"samples\":{},\"models\":{},\"reclaimed\":",
                j.nodes, j.samples, j.models
            );
            match j.reclaimed {
                Some(w) => push_json_num(&mut o, w),
                None => o.push_str("null"),
            }
            let _ = write!(o, ",\"done\":{}}}", j.done);
        }
        o.push_str("]}");
        o
    }
}

fn fnum(v: f64) -> String {
    let mut s = String::new();
    push_json_num(&mut s, v);
    s
}

/// Shared hand-off point between the budgeter (writer, once per pump) and
/// the ops endpoint (reader, once per `GET /status`). Clone freely — all
/// clones share the same board.
#[derive(Debug, Clone)]
pub struct StatusBoard {
    board: Arc<Mutex<String>>,
}

impl Default for StatusBoard {
    fn default() -> Self {
        StatusBoard::new()
    }
}

impl StatusBoard {
    /// An empty board (renders a default snapshot until first publish).
    pub fn new() -> Self {
        StatusBoard {
            board: Arc::new(Mutex::new(StatusSnapshot::default().to_json())),
        }
    }

    /// Render `snapshot` and swap it in. Rendering happens outside the
    /// lock; the hold is a single `String` swap.
    pub fn publish(&self, snapshot: &StatusSnapshot) {
        let json = snapshot.to_json();
        *self.board.lock() = json;
    }

    /// The most recently published JSON (a clone; the lock hold is short).
    pub fn render_json(&self) -> String {
        self.board.lock().clone()
    }
}

// ---- minimal JSON reader -------------------------------------------------

/// A parsed JSON value. Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value truncated to u64 (0 floor), if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|v| if v >= 0.0 { v as u64 } else { 0 })
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one JSON document. Strict enough for round-tripping
/// [`StatusSnapshot::to_json`]; not a general validator (it tolerates
/// trailing garbage after the top-level value).
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null").map(|()| Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err(format!("unexpected end of JSON at byte {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        } else {
            break;
        }
    }
    let raw = bytes.get(start..*pos).unwrap_or_default();
    std::str::from_utf8(raw)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("malformed number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    // Caller checked the opening quote.
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).unwrap_or_default();
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = bytes.get(*pos..).unwrap_or_default();
                let s = std::str::from_utf8(rest)
                    .map_err(|_| format!("non-UTF-8 string at byte {pos}"))?;
                match s.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> StatusSnapshot {
        StatusSnapshot {
            budget: 400.0,
            pumps: 17,
            active_jobs: 2,
            conns_open: 2,
            accepted: 3,
            completed: 1,
            allocated_watts: 399.5,
            reclaimed_watts: 120.0,
            invariant_violations: 0,
            pump_p50: 0.0004,
            pump_p90: 0.0011,
            pump_p99: 0.0032,
            ring_depth: 812,
            trace_recorded: 2048,
            postmortems: 1,
            build_version: "0.1.0".to_string(),
            git_hash: "abc123def456".to_string(),
            phases: vec![
                PhaseStat {
                    phase: "ingest".to_string(),
                    p50: 0.0001,
                    p90: 0.0002,
                    p99: 0.0009,
                },
                PhaseStat {
                    phase: "decide".to_string(),
                    p50: 0.0002,
                    p90: 0.0004,
                    p99: 0.0013,
                },
            ],
            jobs: vec![
                JobStatus {
                    job: 1,
                    state: "connected".to_string(),
                    missed_pumps: 0,
                    cap: Some(199.75),
                    nodes: 2,
                    samples: 40,
                    models: 3,
                    reclaimed: None,
                    done: false,
                },
                JobStatus {
                    job: 2,
                    state: "gone".to_string(),
                    missed_pumps: 8,
                    cap: Some(120.0),
                    nodes: 1,
                    samples: 12,
                    models: 1,
                    reclaimed: Some(120.0),
                    done: false,
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_through_the_parser() {
        let snap = snapshot();
        let json = snap.to_json();
        let v = parse_json(&json).unwrap();
        assert_eq!(v.get("budget").and_then(Json::as_f64), Some(400.0));
        assert_eq!(v.get("pumps").and_then(Json::as_u64), Some(17));
        assert_eq!(
            v.get("invariant_violations").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(v.get("reclaimed_watts").and_then(Json::as_f64), Some(120.0));
        assert_eq!(v.get("build_version").and_then(Json::as_str), Some("0.1.0"));
        assert_eq!(
            v.get("git_hash").and_then(Json::as_str),
            Some("abc123def456")
        );
        let phases = v.get("phases").and_then(Json::as_array).unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(
            phases[0].get("phase").and_then(Json::as_str),
            Some("ingest")
        );
        assert_eq!(phases[1].get("p99").and_then(Json::as_f64), Some(0.0013));
        let jobs = v.get("jobs").and_then(Json::as_array).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(
            jobs[0].get("state").and_then(Json::as_str),
            Some("connected")
        );
        assert_eq!(jobs[0].get("cap").and_then(Json::as_f64), Some(199.75));
        assert_eq!(jobs[1].get("reclaimed").and_then(Json::as_f64), Some(120.0));
        assert_eq!(jobs[1].get("done").and_then(Json::as_bool), Some(false));
        assert_eq!(jobs[0].get("reclaimed"), Some(&Json::Null));
    }

    #[test]
    fn board_swaps_published_snapshots() {
        let board = StatusBoard::new();
        let empty = parse_json(&board.render_json()).unwrap();
        assert_eq!(empty.get("pumps").and_then(Json::as_u64), Some(0));
        board.publish(&snapshot());
        let v = parse_json(&board.render_json()).unwrap();
        assert_eq!(v.get("pumps").and_then(Json::as_u64), Some(17));
        // Clones share the board.
        let clone = board.clone();
        assert_eq!(clone.render_json(), board.render_json());
    }

    #[test]
    fn parser_handles_escapes_nesting_and_errors() {
        let v = parse_json("{\"a\":[1,-2.5,\"x\\\"y\\n\",true,null],\"b\":{\"c\":3e2}}").unwrap();
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_str(), Some("x\"y\n"));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[4], Json::Null);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_f64),
            Some(300.0)
        );
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse_json("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
