//! A minimal command-line argument parser for the daemon binaries.
//!
//! `--key value` and `--flag` styles only — enough for `anord` and
//! `anor-job` without pulling an argument-parsing dependency into the
//! workspace.

use anor_types::{AnorError, Result};
use std::collections::HashMap;

/// Parsed arguments: `--key value` pairs and bare `--flag`s.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(AnorError::config(format!(
                    "unexpected positional argument `{arg}`"
                )));
            };
            if key.is_empty() {
                return Err(AnorError::config("empty option name"));
            }
            match iter.next_if(|next| !next.starts_with("--")) {
                Some(value) => {
                    out.values.insert(key.to_string(), value);
                }
                None => out.flags.push(key.to_string()),
            }
        }
        Ok(out)
    }

    /// Parse the process's own arguments.
    pub fn from_env() -> Result<Args> {
        Args::parse(std::env::args().skip(1))
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| AnorError::config(format!("missing required option --{key}")))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// An optional option parsed to a type, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| AnorError::config(format!("option --{key}: cannot parse `{v}`"))),
        }
    }

    /// Is a bare flag present?
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The `--faults <spec>` chaos schedule, if present — e.g.
    /// `drop@17,corrupt@42,delay@5:3` — with its corruption seed taken
    /// from `--fault-seed` (default `0x5eed`). Shared by every binary
    /// that can run under injected transport faults.
    pub fn fault_plan(&self) -> Result<Option<crate::session::FaultPlan>> {
        match self.get("faults") {
            None => Ok(None),
            Some(spec) => {
                let seed: u64 = self.get_or("fault-seed", 0x5eed)?;
                Ok(Some(crate::session::FaultPlan::parse(spec)?.seeded(seed)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn values_and_flags() {
        let a = parse("--listen 127.0.0.1:0 --feedback --policy even-slowdown");
        assert_eq!(a.required("listen").unwrap(), "127.0.0.1:0");
        assert_eq!(a.get("policy"), Some("even-slowdown"));
        assert!(a.flag("feedback"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn typed_defaults() {
        let a = parse("--nodes 4");
        assert_eq!(a.get_or("nodes", 1u32).unwrap(), 4);
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
        assert!(a.get_or::<u32>("nodes", 0).is_ok());
        let bad = parse("--nodes four");
        assert!(bad.get_or::<u32>("nodes", 0).is_err());
    }

    #[test]
    fn missing_required_is_an_error() {
        let a = parse("--other 1");
        assert!(a.required("listen").is_err());
    }

    #[test]
    fn positional_arguments_rejected() {
        assert!(Args::parse(["oops".to_string()]).is_err());
        assert!(Args::parse(["--".to_string()]).is_err());
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse("--verbose --nodes 2");
        assert!(a.flag("verbose"));
        assert_eq!(a.get_or("nodes", 0u32).unwrap(), 2);
    }
}
