//! The head-node cluster power budgeter daemon.
//!
//! Section 4: "The cluster-tier manager periodically reads cluster power
//! targets..., receives messages from nodes running jobs, calculates how
//! to distribute available power to jobs, and sends messages to inform
//! each job-tier endpoint of the job's new power cap."
//!
//! The daemon listens on TCP; each job's endpoint process connects and
//! introduces itself with `Hello { job, type_name, nodes }`. The budgeter
//! builds its *believed* [`JobView`] from the announced type name — which
//! may be wrong (misclassification) or unknown (then a configurable
//! default assumption applies, Section 6.1.2). With feedback enabled,
//! incoming `Model` messages replace the believed curve.
//!
//! ## Leases
//!
//! A registered job holds a *power lease*: when its connection drops the
//! budgeter keeps the job's watts reserved for [`LeaseConfig::miss_pumps`]
//! control passes so a quick endpoint reconnect resumes with an identical
//! cap. Once the lease expires the watts are reclaimed into the pool and
//! redistributed; a later `Resume` restores the registration (and is
//! answered with a `ResumeAck` carrying the last cap on record, or a
//! negative cap when there is none).

use crate::codec::TransportMetrics;
use crate::session::{FaultPlan, SessionState};
use crate::status::{JobStatus, PhaseStat, StatusBoard, StatusSnapshot};
use crate::transport::{build_transport, ConnId, Transport, TransportKind, TransportOptions};
use anor_policy::{Budgeter, EvenPowerBudgeter, EvenSlowdownBudgeter, JobView, UniformBudgeter};
use anor_telemetry::{
    BuildInfo, CauseId, Counter, FlightRecorder, Gauge, Histogram, RecEvent, Telemetry, Timer,
    TraceStage, Tracer,
};
use anor_types::msg::{ClusterToJob, JobToCluster};
use anor_types::{AnorError, Catalog, JobId, Result, Seconds, Watts};
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

/// Which distribution rule the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPolicy {
    /// Same cap on every node (performance-agnostic).
    Uniform,
    /// The γ-interpolating performance-unaware balancer.
    EvenPower,
    /// The model-driven even-slowdown balancer.
    EvenSlowdown,
}

impl BudgetPolicy {
    fn assign(&self, budget: Watts, jobs: &[JobView]) -> Vec<Watts> {
        match self {
            BudgetPolicy::Uniform => UniformBudgeter.assign(budget, jobs),
            BudgetPolicy::EvenPower => EvenPowerBudgeter.assign(budget, jobs),
            BudgetPolicy::EvenSlowdown => EvenSlowdownBudgeter::default().assign(budget, jobs),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BudgetPolicy::Uniform => "uniform",
            BudgetPolicy::EvenPower => "even-power",
            BudgetPolicy::EvenSlowdown => "even-slowdown",
        }
    }
}

/// Default identity assumed for job types the budgeter does not know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownDefault {
    /// Assume the least power-sensitive known type (under-prediction).
    LeastSensitive,
    /// Assume the most power-sensitive known type (over-prediction).
    MostSensitive,
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct BudgeterConfig {
    /// Distribution policy.
    pub policy: BudgetPolicy,
    /// Fold job-tier `Model` messages back into views?
    pub feedback: bool,
    /// Known job types (for resolving announced names).
    pub catalog: Catalog,
    /// Assumption for unknown names.
    pub unknown_default: UnknownDefault,
    /// Re-send a job's cap only when it moved by more than this.
    pub recap_threshold: Watts,
}

impl BudgeterConfig {
    /// A sensible default configuration over the standard catalog.
    pub fn new(policy: BudgetPolicy, feedback: bool) -> Self {
        BudgeterConfig {
            policy,
            feedback,
            catalog: anor_types::standard_catalog(),
            unknown_default: UnknownDefault::LeastSensitive,
            recap_threshold: Watts(1.0),
        }
    }
}

/// Power-lease liveness settings: how long a disconnected job keeps its
/// watts reserved before the budgeter reclaims them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// Track per-job leases at all? When off, a lost connection removes
    /// its jobs immediately (the pre-lease behaviour).
    pub enabled: bool,
    /// Control passes a job may spend disconnected before its lease
    /// expires and its watts return to the pool.
    pub miss_pumps: u32,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            enabled: true,
            miss_pumps: 200,
        }
    }
}

impl LeaseConfig {
    /// Leases off: a disconnect strands its jobs immediately.
    pub fn disabled() -> Self {
        LeaseConfig {
            enabled: false,
            miss_pumps: u32::MAX,
        }
    }

    /// Leases on with an explicit miss budget.
    pub fn after_misses(miss_pumps: u32) -> Self {
        LeaseConfig {
            enabled: true,
            miss_pumps: miss_pumps.max(1),
        }
    }
}

#[derive(Debug)]
struct JobEntry {
    view: JobView,
    conn: ConnId,
    last_cap: Option<Watts>,
    samples_seen: u64,
    models_seen: u64,
    /// Highest per-node power ever observed for the job. With feedback
    /// enabled this corrects a misclassified believed power window: a job
    /// labelled as a low-power type that is seen drawing more clearly can
    /// use more.
    peak_node_power: Watts,
    /// Consecutive samples with draw far below the assigned cap.
    under_draw_streak: u32,
    done: Option<Seconds>,
    /// Budgeter-side belief about the session carrying this job.
    state: SessionState,
    /// Control passes spent disconnected (lease countdown).
    missed_pumps: u32,
    /// Watts taken back when the lease expired — still owed to the job
    /// should it resume, and exactly what the reclaim counters reported.
    reclaimed: Option<Watts>,
}

impl JobEntry {
    fn new(view: JobView, conn: ConnId) -> Self {
        JobEntry {
            view,
            conn,
            last_cap: None,
            samples_seen: 0,
            models_seen: 0,
            peak_node_power: Watts::ZERO,
            under_draw_streak: 0,
            done: None,
            state: SessionState::Connected,
            missed_pumps: 0,
            reclaimed: None,
        }
    }

    /// Counted into the assignment? Done jobs and expired leases are not.
    fn holds_lease(&self) -> bool {
        self.done.is_none() && !self.state.is_gone()
    }
}

/// Cached metric handles for the daemon's own control loop (the
/// transport series live in [`TransportMetrics`]).
#[derive(Debug)]
struct BudgeterMetrics {
    rebalance: Histogram,
    pump: Histogram,
    /// `pump_phase_seconds{phase=...}` — the pump split into its named
    /// stages, in execution order.
    phase_ingest: Histogram,
    phase_lease_audit: Histogram,
    phase_model_observe: Histogram,
    phase_decide: Histogram,
    phase_actuate: Histogram,
    phase_invariant_audit: Histogram,
    msgs_hello: Counter,
    msgs_sample: Counter,
    msgs_model: Counter,
    msgs_done: Counter,
    msgs_resume: Counter,
    active_jobs: Gauge,
    leases_expired: Counter,
    watts_reclaimed: Gauge,
    conns_quarantined: Counter,
    audit_conservation: Counter,
    audit_double_count: Counter,
    audit_gauge_drift: Counter,
    audit_stale_session: Counter,
}

impl BudgeterMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        let audit =
            |inv: &str| telemetry.counter("anor_invariant_violations_total", &[("invariant", inv)]);
        let phase = |p: &str| telemetry.histogram("pump_phase_seconds", &[("phase", p)]);
        BudgeterMetrics {
            rebalance: telemetry.histogram("budgeter_rebalance_seconds", &[]),
            pump: telemetry.histogram("budgeter_pump_seconds", &[]),
            phase_ingest: phase("ingest"),
            phase_lease_audit: phase("lease-audit"),
            phase_model_observe: phase("model-observe"),
            phase_decide: phase("decide"),
            phase_actuate: phase("actuate"),
            phase_invariant_audit: phase("invariant-audit"),
            msgs_hello: telemetry.counter("budgeter_msgs_total", &[("kind", "hello")]),
            msgs_sample: telemetry.counter("budgeter_msgs_total", &[("kind", "sample")]),
            msgs_model: telemetry.counter("budgeter_msgs_total", &[("kind", "model")]),
            msgs_done: telemetry.counter("budgeter_msgs_total", &[("kind", "done")]),
            msgs_resume: telemetry.counter("budgeter_msgs_total", &[("kind", "resume")]),
            active_jobs: telemetry.gauge("budgeter_active_jobs", &[]),
            leases_expired: telemetry.counter("leases_expired_total", &[]),
            watts_reclaimed: telemetry.gauge("watts_reclaimed", &[]),
            conns_quarantined: telemetry.counter("budgeter_conns_quarantined_total", &[]),
            audit_conservation: audit("watts_conservation"),
            audit_double_count: audit("lease_double_count"),
            audit_gauge_drift: audit("reclaim_gauge_drift"),
            audit_stale_session: audit("stale_session"),
        }
    }

    fn violations(&self) -> u64 {
        self.audit_conservation.get()
            + self.audit_double_count.get()
            + self.audit_gauge_drift.get()
            + self.audit_stale_session.get()
    }

    /// The pump phases in execution order, for the status snapshot.
    fn phases(&self) -> [(&'static str, &Histogram); 6] {
        [
            ("ingest", &self.phase_ingest),
            ("lease-audit", &self.phase_lease_audit),
            ("model-observe", &self.phase_model_observe),
            ("decide", &self.phase_decide),
            ("actuate", &self.phase_actuate),
            ("invariant-audit", &self.phase_invariant_audit),
        ]
    }
}

/// Builder for [`ClusterBudgeter`] — the one construction path replacing
/// the old `bind`/`bind_addr`/`bind_with`/`bind_addr_with` quartet.
///
/// ```no_run
/// # use anor_cluster::budgeter::{BudgetPolicy, BudgeterConfig, ClusterBudgeter, LeaseConfig};
/// let cfg = BudgeterConfig::new(BudgetPolicy::EvenSlowdown, true);
/// let (daemon, addr) = ClusterBudgeter::builder(cfg)
///     .addr("127.0.0.1:0")
///     .lease(LeaseConfig::after_misses(50))
///     .bind()?;
/// # let _ = (daemon, addr); Ok::<(), anor_types::AnorError>(())
/// ```
#[derive(Debug)]
pub struct BudgeterBuilder {
    cfg: BudgeterConfig,
    addr: String,
    listener: Option<TcpListener>,
    telemetry: Option<Telemetry>,
    tracer: Option<Tracer>,
    lease: LeaseConfig,
    faults: Option<FaultPlan>,
    status: Option<StatusBoard>,
    recorder: Option<FlightRecorder>,
    transport: TransportOptions,
}

impl BudgeterBuilder {
    fn new(cfg: BudgeterConfig) -> Self {
        BudgeterBuilder {
            cfg,
            addr: "127.0.0.1:0".to_string(),
            listener: None,
            telemetry: None,
            tracer: None,
            lease: LeaseConfig::default(),
            faults: None,
            status: None,
            recorder: None,
            transport: TransportOptions::default(),
        }
    }

    /// Listen address (default `127.0.0.1:0`, an ephemeral port).
    pub fn addr(mut self, addr: &str) -> Self {
        self.addr = addr.to_string();
        self
    }

    /// Adopt an already-bound listener instead of binding `addr`. This is
    /// how a restarted daemon keeps its port (and how tests kill and
    /// revive a budgeter without racing `TIME_WAIT`).
    pub fn listener(mut self, listener: TcpListener) -> Self {
        self.listener = Some(listener);
        self
    }

    /// Record into a shared [`Telemetry`] handle instead of a private
    /// in-memory one.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Trace every rebalance decision, cap send, inbound sample, and
    /// lease transition into `tracer`; on peer failures the flight
    /// recorder is dumped to disk.
    pub fn tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Power-lease liveness settings (default: [`LeaseConfig::default`]).
    pub fn lease(mut self, lease: LeaseConfig) -> Self {
        self.lease = lease;
        self
    }

    /// Inject chaos into every accepted connection: each gets its own
    /// [`FaultPlan::fork`] of `plan`, salted by accept order.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Publish a [`StatusSnapshot`] into `board` at the end of every
    /// control pass (the live `GET /status` surface).
    pub fn status(mut self, board: StatusBoard) -> Self {
        self.status = Some(board);
        self
    }

    /// Flight-record every inbound wire frame, connection and lease
    /// transition, pump trigger and emitted cap decision into `recorder`
    /// so `anor-replay` can reproduce the run offline bit-for-bit. Use
    /// [`crate::replay::recorder_meta`] to stamp the recording with a
    /// replay-compatible config description.
    pub fn recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Which connection plane to run (default [`TransportKind::Blocking`]).
    /// The recorded decision stream is byte-identical across planes —
    /// [`TransportKind::Reactor`] changes fan-in capacity, not decisions.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport.kind = kind;
        self
    }

    /// Reactor shard count (ignored by the blocking plane; clamped to at
    /// least 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.transport.shards = shards.max(1);
        self
    }

    /// Per-connection bounded-queue depth: ingress pauses reads past this
    /// many undrained frames, egress drops (and counts) frames past
    /// `depth × 256` unflushed bytes. See [`crate::transport`].
    pub fn conn_queue_depth(mut self, depth: usize) -> Self {
        self.transport.conn_queue_depth = depth.max(1);
        self
    }

    /// Bind (or adopt the supplied listener) and construct the daemon.
    /// Returns the daemon and the address endpoints should connect to.
    pub fn bind(self) -> Result<(ClusterBudgeter, SocketAddr)> {
        let listener = match self.listener {
            Some(l) => l,
            None => TcpListener::bind(self.addr.as_str())?,
        };
        let addr = listener.local_addr()?;
        let telemetry = self.telemetry.unwrap_or_default();
        let transport_metrics = TransportMetrics::new(&telemetry, "budgeter");
        let metrics = BudgeterMetrics::new(&telemetry);
        let transport = build_transport(
            &self.transport,
            listener,
            &telemetry,
            transport_metrics,
            self.faults,
        )?;
        Ok((
            ClusterBudgeter {
                cfg: self.cfg,
                transport,
                jobs: BTreeMap::new(),
                completed: Vec::new(),
                telemetry,
                metrics,
                tracer: self.tracer,
                lease: self.lease,
                accepted: 0,
                status: self.status,
                pumps: 0,
                last_budget: Watts::ZERO,
                audit_dumped: AuditDumped::default(),
                recorder: self.recorder,
                replay: None,
                model_observe_s: 0.0,
            },
            addr,
        ))
    }
}

/// The invariant families the continuous auditor checks each pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AuditKind {
    Conservation,
    DoubleCount,
    GaugeDrift,
    StaleSession,
}

impl AuditKind {
    fn name(self) -> &'static str {
        match self {
            AuditKind::Conservation => "watts_conservation",
            AuditKind::DoubleCount => "lease_double_count",
            AuditKind::GaugeDrift => "reclaim_gauge_drift",
            AuditKind::StaleSession => "stale_session",
        }
    }
}

/// Tracks which invariant kinds already dumped a postmortem, so a
/// persistent violation costs one flight-recorder dump, not one per pump.
#[derive(Debug, Default)]
struct AuditDumped {
    conservation: bool,
    double_count: bool,
    gauge_drift: bool,
    stale_session: bool,
}

/// Replay-mode I/O substitution: when attached, the budgeter reads no
/// sockets — the replayer injects recorded frames and connection
/// transitions directly, outbound frames are captured instead of sent,
/// and decision cause ids come from the recorded feed rather than the
/// tracer (tracer counters are shared across components, so re-minting
/// would not reproduce the recorded wire bytes).
#[derive(Debug, Default)]
pub(crate) struct ReplayIo {
    /// Virtual connection liveness, by recorded slot index.
    open: Vec<bool>,
    /// Captured outbound frames `(conn, body)` in emission order.
    out: Vec<(usize, bytes::Bytes)>,
    /// Recorded decision cause ids, consumed in mint order.
    causes: VecDeque<u64>,
}

/// The budgeter daemon (pump-driven).
#[derive(Debug)]
pub struct ClusterBudgeter {
    cfg: BudgeterConfig,
    /// The connection plane: blocking sweeps or the sharded reactor.
    /// Session logic above this seam addresses peers by [`ConnId`] only.
    transport: Box<dyn Transport>,
    // Ordered so every pump-phase walk (lease ticks, redistribution,
    // audits, status snapshots) visits jobs in JobId order: the audit's
    // float sums and the recorded decision stream must not depend on
    // hasher seeding.
    jobs: BTreeMap<JobId, JobEntry>,
    completed: Vec<(JobId, Seconds)>,
    telemetry: Telemetry,
    metrics: BudgeterMetrics,
    tracer: Option<Tracer>,
    lease: LeaseConfig,
    accepted: u64,
    status: Option<StatusBoard>,
    pumps: u64,
    last_budget: Watts,
    audit_dumped: AuditDumped,
    recorder: Option<FlightRecorder>,
    replay: Option<ReplayIo>,
    /// Seconds spent in `Sample`/`Model` handling during the current
    /// pump (the model-observe phase, carved out of ingest).
    model_observe_s: f64,
}

impl ClusterBudgeter {
    /// Start building a daemon over `cfg`. See [`BudgeterBuilder`].
    pub fn builder(cfg: BudgeterConfig) -> BudgeterBuilder {
        BudgeterBuilder::new(cfg)
    }

    /// Bind on an ephemeral localhost port.
    #[deprecated(note = "use ClusterBudgeter::builder(cfg).bind(); removed after one release")]
    pub fn bind(cfg: BudgeterConfig) -> Result<(Self, SocketAddr)> {
        ClusterBudgeter::builder(cfg).bind()
    }

    /// Bind on an explicit address.
    #[deprecated(
        note = "use ClusterBudgeter::builder(cfg).addr(addr).bind(); removed after one release"
    )]
    pub fn bind_addr(cfg: BudgeterConfig, addr: &str) -> Result<(Self, SocketAddr)> {
        ClusterBudgeter::builder(cfg).addr(addr).bind()
    }

    /// Bind on an ephemeral port with shared telemetry.
    #[deprecated(
        note = "use ClusterBudgeter::builder(cfg).telemetry(t).bind(); removed after one release"
    )]
    pub fn bind_with(cfg: BudgeterConfig, telemetry: Telemetry) -> Result<(Self, SocketAddr)> {
        ClusterBudgeter::builder(cfg).telemetry(telemetry).bind()
    }

    /// Explicit address *and* explicit telemetry.
    #[deprecated(
        note = "use ClusterBudgeter::builder(cfg).telemetry(t).addr(addr).bind(); \
                removed after one release"
    )]
    pub fn bind_addr_with(
        cfg: BudgeterConfig,
        telemetry: Telemetry,
        addr: &str,
    ) -> Result<(Self, SocketAddr)> {
        ClusterBudgeter::builder(cfg)
            .telemetry(telemetry)
            .addr(addr)
            .bind()
    }

    /// The telemetry handle this daemon records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Trace every rebalance decision, cap send, and inbound sample into
    /// `tracer`; on peer failures the flight recorder is dumped to disk.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// Tear the daemon down but keep its bound socket: a restarted
    /// budgeter built with [`BudgeterBuilder::listener`] keeps the same
    /// address, so endpoints' reconnect loops find it again. All session
    /// state (jobs, leases, caps) dies with the daemon — resuming
    /// endpoints re-register via `Resume`. Reactor shard threads are
    /// stopped and joined before the listener is handed back.
    pub fn into_listener(self) -> TcpListener {
        self.transport.into_listener()
    }

    /// Park until inbound traffic is plausibly available or `timeout`
    /// elapses (at most one millisecond on the blocking plane, which has
    /// no readiness signal). `true` means input arrived. Callers pumping
    /// in a loop should wait here between passes instead of sleeping.
    pub fn wait_readable(&self, timeout: Duration) -> bool {
        self.transport.wait_readable(timeout)
    }

    /// Outbound frames dropped to egress backpressure so far (slow or
    /// stalled endpoints; always zero on the blocking plane).
    pub fn backpressure_drops(&self) -> u64 {
        self.transport.backpressure_drops()
    }

    /// Which connection plane this daemon runs.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport.kind()
    }

    /// One control pass: accept connections, ingest messages, advance
    /// lease countdowns, recompute the assignment over active jobs for
    /// `busy_budget` (total CPU watts for all job-occupied nodes), send
    /// changed caps, audit the watts-conservation invariants, and publish
    /// a status snapshot when a [`StatusBoard`] is attached.
    pub fn pump(&mut self, busy_budget: Watts) -> Result<()> {
        let _timer = Timer::start(self.metrics.pump.clone());
        self.pumps += 1;
        self.last_budget = busy_budget;
        if let Some(r) = &self.recorder {
            r.record(&RecEvent::PumpStart {
                pump: self.pumps,
                budget: busy_budget.value(),
            });
        }
        // Phase: ingest (minus the model-observe time carved out below).
        self.model_observe_s = 0.0;
        let ingest_started = Instant::now();
        if self.replay.is_none() {
            self.accept_new()?;
            self.ingest()?;
        }
        let ingest_s = (ingest_started.elapsed().as_secs_f64() - self.model_observe_s).max(0.0);
        self.metrics.phase_ingest.observe(ingest_s);
        self.metrics
            .phase_model_observe
            .observe(self.model_observe_s);
        // Phase: lease-audit.
        let lease_started = Instant::now();
        self.tick_leases();
        self.metrics
            .phase_lease_audit
            .observe(lease_started.elapsed().as_secs_f64());
        // Phases decide + actuate are observed inside redistribute.
        let out = self.redistribute(busy_budget);
        self.metrics.active_jobs.set(self.active_jobs() as f64);
        // Phase: invariant-audit (including status publication).
        let audit_started = Instant::now();
        self.audit(busy_budget);
        self.publish_status();
        self.metrics
            .phase_invariant_audit
            .observe(audit_started.elapsed().as_secs_f64());
        out
    }

    fn accept_new(&mut self) -> Result<()> {
        for id in self.transport.accept()? {
            self.accepted += 1;
            if let Some(r) = &self.recorder {
                r.record(&RecEvent::ConnOpen { conn: id.value() });
            }
        }
        Ok(())
    }

    fn resolve_view(&self, job: JobId, type_name: &str, nodes: u32) -> Result<JobView> {
        let fallback = || match self.cfg.unknown_default {
            UnknownDefault::LeastSensitive => self.cfg.catalog.least_sensitive(),
            UnknownDefault::MostSensitive => self.cfg.catalog.most_sensitive(),
        };
        let spec = match self.cfg.catalog.find(type_name).or_else(fallback) {
            Some(spec) => spec,
            None => {
                // An empty catalog cannot resolve anything — a daemon
                // configuration error, not grounds for a panic mid-pump.
                return Err(AnorError::config(
                    "budgeter catalog is empty; cannot resolve any job type",
                ));
            }
        };
        let mut view = JobView::from_spec(job, spec);
        view.nodes = nodes;
        Ok(view)
    }

    fn ingest(&mut self) -> Result<()> {
        // `poll_readable` yields ids in ascending accept order on every
        // plane — the deterministic drain order the recorded decision
        // stream depends on.
        for id in self.transport.poll_readable() {
            // A misbehaving peer (malformed frames, oversized length
            // prefix) must not take the daemon down — and must not spin
            // the pump loop either: quarantine the connection (hard
            // shutdown + counter + postmortem) so a reject-storm from a
            // hostile or corrupted peer costs one pass, not every pass.
            let (frames, mut closed) = match self.transport.read_frames(id) {
                Ok(drained) => drained,
                Err(AnorError::Protocol(e)) => {
                    self.transport.shutdown(id);
                    self.metrics.conns_quarantined.inc();
                    // Length-prefix corruption is caught below decode, so
                    // no FrameIn exists for the replayer to re-trip on —
                    // the quarantine is recorded as its own event and
                    // applied as such on replay.
                    if let Some(r) = &self.recorder {
                        r.record(&RecEvent::ConnQuarantined { conn: id.value() });
                    }
                    if let Some(t) = &self.tracer {
                        t.record_detail(TraceStage::TransportError, CauseId::NONE, &e);
                        t.dump_postmortem("budgeter-protocol-error");
                    }
                    (Vec::new(), true)
                }
                Err(e) => return Err(e),
            };
            for body in frames {
                if self.process_frame(id, body)? {
                    closed = true;
                    break;
                }
            }
            if closed {
                self.disconnect_conn(id);
            }
        }
        Ok(())
    }

    /// Handle one decoded-or-rejected inbound frame body on `conn`.
    /// Returns `true` when the frame poisoned its connection (malformed:
    /// the conn is quarantined and must be torn down by the caller).
    /// This is the single code path for live ingest *and* replay
    /// injection, so a recording replays through exactly the logic that
    /// produced it.
    fn process_frame(&mut self, id: ConnId, body: bytes::Bytes) -> Result<bool> {
        if let Some(r) = &self.recorder {
            r.record(&RecEvent::FrameIn {
                conn: id.value(),
                body: body.to_vec(),
            });
        }
        let msg = match JobToCluster::decode(body) {
            Ok(m) => m,
            Err(e) => {
                self.transport.shutdown(id);
                // On replay the recorded ConnQuarantined event drives the
                // counter, so re-tripping here must not double-count.
                if self.replay.is_none() {
                    self.metrics.conns_quarantined.inc();
                    if let Some(r) = &self.recorder {
                        r.record(&RecEvent::ConnQuarantined { conn: id.value() });
                    }
                }
                if let Some(t) = &self.tracer {
                    t.record_detail(
                        TraceStage::TransportError,
                        CauseId::NONE,
                        &format!("malformed frame: {e}"),
                    );
                    t.dump_postmortem("budgeter-malformed-frame");
                }
                return Ok(true);
            }
        };
        match msg {
            JobToCluster::Hello {
                job,
                type_name,
                nodes,
            } => {
                self.metrics.msgs_hello.inc();
                self.telemetry.event(
                    "budgeter_hello",
                    &[
                        ("job", job.0.into()),
                        ("type", type_name.as_str().into()),
                        ("nodes", u64::from(nodes).into()),
                    ],
                );
                let view = self.resolve_view(job, &type_name, nodes)?;
                self.jobs.insert(job, JobEntry::new(view, id));
            }
            JobToCluster::Resume {
                job,
                type_name,
                nodes,
                believed_cap,
                cause,
            } => {
                self.metrics.msgs_resume.inc();
                self.telemetry.event(
                    "budgeter_resume",
                    &[
                        ("job", job.0.into()),
                        ("believed_cap", believed_cap.value().into()),
                    ],
                );
                if let Some(t) = &self.tracer {
                    t.record_job(
                        TraceStage::Resume,
                        CauseId(cause),
                        job.0,
                        Some(believed_cap.value()),
                    );
                }
                if !self.jobs.contains_key(&job) {
                    // No record of this job (the daemon restarted,
                    // or it was evicted): re-register from the
                    // resume announcement as if it were a Hello.
                    let view = self.resolve_view(job, &type_name, nodes)?;
                    self.jobs.insert(job, JobEntry::new(view, id));
                }
                let mut restored = None;
                let mut ack_cap = Watts(-1.0);
                if let Some(e) = self.jobs.get_mut(&job) {
                    e.conn = id;
                    e.missed_pumps = 0;
                    e.state = SessionState::Connected;
                    restored = e.reclaimed.take();
                    if let Some(cap) = e.last_cap {
                        ack_cap = cap;
                    }
                }
                if let Some(w) = restored {
                    let g = &self.metrics.watts_reclaimed;
                    g.set((g.get() - w.value()).max(0.0));
                    if let Some(r) = &self.recorder {
                        r.record(&RecEvent::LeaseRestored {
                            job: job.0,
                            watts: w.value(),
                        });
                    }
                    if let Some(t) = &self.tracer {
                        t.record_full(
                            TraceStage::LeaseRestored,
                            CauseId(cause),
                            Some(job.0),
                            Some(w.value()),
                            Some(format!("{w} restored to resumed job")),
                        );
                    }
                }
                self.send_to_conn(
                    id,
                    ClusterToJob::ResumeAck {
                        cap: ack_cap,
                        cause,
                    }
                    .encode(),
                )?;
            }
            JobToCluster::Sample(s) => {
                self.metrics.msgs_sample.inc();
                let observe_started = Instant::now();
                if let Some(t) = &self.tracer {
                    t.record_job(
                        TraceStage::SampleRx,
                        CauseId(s.cause),
                        s.job.0,
                        Some(s.avg_power.value()),
                    );
                }
                if let Some(e) = self.jobs.get_mut(&s.job) {
                    e.missed_pumps = 0;
                    e.samples_seen += 1;
                    let per_node = s.avg_power / e.view.nodes.max(1) as f64;
                    e.peak_node_power = e.peak_node_power.max(per_node);
                    if self.cfg.feedback {
                        if per_node.value() > e.view.max_draw.value() + 1.0 {
                            // Observation contradicts the believed
                            // power window: widen it.
                            e.view.max_draw = per_node;
                        }
                        // Slack reclaim (Section 7.2): a job whose
                        // draw sits far below its assigned cap
                        // (setup/teardown, I/O stall) donates its
                        // headroom back to the pool; a job pinned
                        // at its cap probes upward so a shrunken
                        // window can recover.
                        if let Some(cap) = e.last_cap {
                            let ratio = per_node / cap;
                            if ratio < 0.7 {
                                e.under_draw_streak += 1;
                                if e.under_draw_streak >= 3 {
                                    e.view.max_draw = (per_node * 1.05).max(e.view.cap_range.min);
                                }
                            } else {
                                e.under_draw_streak = 0;
                                if ratio > 0.98 && e.view.max_draw.value() <= cap.value() * 1.05 {
                                    e.view.max_draw =
                                        (e.view.max_draw + Watts(10.0)).min(e.view.cap_range.max);
                                }
                            }
                        }
                    }
                }
                self.model_observe_s += observe_started.elapsed().as_secs_f64();
            }
            JobToCluster::Model {
                job, curve, cause, ..
            } => {
                self.metrics.msgs_model.inc();
                let observe_started = Instant::now();
                if let Some(t) = &self.tracer {
                    t.record_job(TraceStage::ModelRx, CauseId(cause), job.0, None);
                }
                if let Some(e) = self.jobs.get_mut(&job) {
                    e.missed_pumps = 0;
                    e.models_seen += 1;
                    // The "per-job retrain count" the summary
                    // table reports: every Model push is one
                    // retrain at the job tier.
                    self.telemetry
                        .gauge("job_retrains", &[("job", &job.0.to_string())])
                        .set(e.models_seen as f64);
                    if self.cfg.feedback {
                        e.view = e.view.clone().with_curve(curve);
                    }
                }
                self.model_observe_s += observe_started.elapsed().as_secs_f64();
            }
            JobToCluster::Done { job, elapsed } => {
                self.metrics.msgs_done.inc();
                self.telemetry.event(
                    "budgeter_job_done",
                    &[("job", job.0.into()), ("elapsed_s", elapsed.value().into())],
                );
                if let Some(e) = self.jobs.get_mut(&job) {
                    e.missed_pumps = 0;
                    e.done = Some(elapsed);
                }
                self.completed.push((job, elapsed));
            }
        }
        Ok(false)
    }

    /// Tear down connection `conn`'s session bookkeeping: postmortem any
    /// jobs it carried, start their lease countdowns (or strand them when
    /// leases are off), and free the slot. Shared between live ingest and
    /// replayed `ConnClosed` events.
    fn disconnect_conn(&mut self, conn: ConnId) {
        if let Some(r) = &self.recorder {
            r.record(&RecEvent::ConnClosed { conn: conn.value() });
        }
        let lost: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, e)| e.conn == conn && e.done.is_none() && e.state.is_connected())
            .map(|(&id, _)| id)
            .collect();
        if !lost.is_empty() {
            if let Some(t) = &self.tracer {
                t.record_detail(
                    TraceStage::Disconnect,
                    CauseId::NONE,
                    &format!("conn {conn} lost with {} active job(s)", lost.len()),
                );
                t.dump_postmortem("endpoint-disconnect");
            }
        }
        if self.lease.enabled {
            // The lease keeps these jobs' watts reserved: mark them
            // reconnecting and start the miss countdown.
            for id in lost {
                if let Some(e) = self.jobs.get_mut(&id) {
                    e.state = SessionState::Reconnecting { attempt: 0 };
                }
            }
        } else {
            // Pre-lease behaviour: a lost connection strands its jobs
            // immediately.
            self.jobs.retain(|_, e| e.conn != conn || e.done.is_some());
        }
        self.transport.release(conn);
    }

    /// Is connection `conn` live? In replay mode liveness comes from
    /// the recorded connection transitions, not real sockets.
    fn conn_slot_live(&self, conn: ConnId) -> bool {
        match &self.replay {
            Some(rio) => rio.open.get(conn.index()).copied().unwrap_or(false),
            None => self.transport.is_open(conn),
        }
    }

    /// Send `frame` (an un-length-prefixed message body) to `conn`,
    /// recording it as a `DecisionTx` exactly when a send really happens.
    /// In replay mode the frame is captured for byte-comparison instead
    /// of being written to a socket.
    fn send_to_conn(&mut self, conn: ConnId, frame: bytes::Bytes) -> Result<()> {
        if let Some(rio) = self.replay.as_mut() {
            if rio.open.get(conn.index()).copied().unwrap_or(false) {
                rio.out.push((conn.index(), frame));
            }
            return Ok(());
        }
        if self.transport.is_open(conn) {
            if let Some(r) = &self.recorder {
                r.record(&RecEvent::DecisionTx {
                    conn: conn.value(),
                    frame: frame.to_vec(),
                });
            }
            // The decision is recorded above even if the transport then
            // drops the frame to egress backpressure: recordings are the
            // *decision* stream, and delivery is the transport's problem.
            self.transport.write_frame(conn, frame)?;
        }
        Ok(())
    }

    /// Advance the lease countdown for every disconnected job; expire
    /// leases whose miss budget ran out, reclaiming their watts into the
    /// pool (the very next redistribute pass hands them to the surviving
    /// jobs).
    fn tick_leases(&mut self) {
        if !self.lease.enabled {
            return;
        }
        let mut expired: Vec<(JobId, Watts)> = Vec::new();
        for (&id, e) in self.jobs.iter_mut() {
            if !e.holds_lease() {
                continue;
            }
            let connected = match &self.replay {
                Some(rio) => rio.open.get(e.conn.index()).copied().unwrap_or(false),
                None => self.transport.is_live(e.conn),
            };
            if connected {
                continue;
            }
            e.missed_pumps = e.missed_pumps.saturating_add(1);
            e.state = SessionState::Reconnecting {
                attempt: e.missed_pumps,
            };
            if e.missed_pumps >= self.lease.miss_pumps {
                let watts = e.last_cap.unwrap_or(Watts::ZERO) * f64::from(e.view.nodes.max(1));
                e.state = SessionState::Gone;
                e.reclaimed = Some(watts);
                expired.push((id, watts));
            }
        }
        for (id, watts) in expired {
            self.metrics.leases_expired.inc();
            let g = &self.metrics.watts_reclaimed;
            g.set(g.get() + watts.value());
            if let Some(r) = &self.recorder {
                r.record(&RecEvent::LeaseExpired {
                    job: id.0,
                    watts: watts.value(),
                });
            }
            self.telemetry.event(
                "budgeter_lease_expired",
                &[("job", id.0.into()), ("watts", watts.value().into())],
            );
            if let Some(t) = &self.tracer {
                let cause = t.next_cause();
                t.record_full(
                    TraceStage::LeaseExpired,
                    cause,
                    Some(id.0),
                    Some(watts.value()),
                    Some(format!(
                        "lease expired after {} missed pump(s); {watts} reclaimed",
                        self.lease.miss_pumps
                    )),
                );
                t.dump_postmortem("lease-expired");
            }
        }
    }

    fn redistribute(&mut self, busy_budget: Watts) -> Result<()> {
        let decide_started = Instant::now();
        // Collect (id, view) pairs in one pass so `views` stays aligned
        // with the ids even if an entry were to vanish mid-iteration.
        // Expired leases are excluded: their watts are back in the pool.
        let mut active: Vec<(JobId, JobView)> = self
            .jobs
            .iter()
            .filter(|(_, e)| e.holds_lease())
            .map(|(&id, e)| (id, e.view.clone()))
            .collect();
        if active.is_empty() {
            self.metrics
                .phase_decide
                .observe(decide_started.elapsed().as_secs_f64());
            self.metrics.phase_actuate.observe(0.0);
            return Ok(());
        }
        // Latency of an actual rebalance; empty passes are not observed
        // so the percentiles describe real redistribution work.
        let _timer = Timer::start(self.metrics.rebalance.clone());
        active.sort_unstable_by_key(|(id, _)| *id);
        let views: Vec<JobView> = active.iter().map(|(_, v)| v.clone()).collect();
        let caps = self.cfg.policy.assign(busy_budget, &views);
        // Which caps moved enough to resend?
        let changed: Vec<(JobId, Watts)> = active
            .iter()
            .map(|(id, _)| id)
            .zip(caps)
            .filter(|(id, cap)| {
                self.jobs.get(id).is_some_and(|e| {
                    e.last_cap.is_none_or(|prev| {
                        (prev - *cap).abs().value() > self.cfg.recap_threshold.value()
                    })
                })
            })
            .map(|(id, cap)| (*id, cap))
            .collect();
        if changed.is_empty() {
            self.metrics
                .phase_decide
                .observe(decide_started.elapsed().as_secs_f64());
            self.metrics.phase_actuate.observe(0.0);
            return Ok(());
        }
        // One decision id covers every cap this rebalance re-issues; a
        // pass that re-sends nothing mints nothing (no phantom orphans).
        // The tracer's cause counter is shared across components, so its
        // value depends on interleaving a replay cannot reproduce: the
        // mint is recorded, and replay consumes the recorded feed so the
        // re-emitted cap frames stay byte-identical.
        let cause = if let Some(rio) = self.replay.as_mut() {
            CauseId(rio.causes.pop_front().unwrap_or(0))
        } else {
            let c = match &self.tracer {
                Some(t) => {
                    let c = t.next_cause();
                    t.record_full(
                        TraceStage::Decision,
                        c,
                        None,
                        Some(busy_budget.value()),
                        Some(format!("{} cap(s) re-issued", changed.len())),
                    );
                    c
                }
                None => CauseId::NONE,
            };
            if let Some(r) = &self.recorder {
                r.record(&RecEvent::CauseMinted { cause: c.0 });
            }
            c
        };
        self.metrics
            .phase_decide
            .observe(decide_started.elapsed().as_secs_f64());
        let actuate_started = Instant::now();
        for (id, cap) in changed {
            let Some(entry) = self.jobs.get_mut(&id) else {
                continue;
            };
            entry.last_cap = Some(cap);
            let conn = entry.conn;
            if self.conn_slot_live(conn) {
                if let Some(t) = &self.tracer {
                    t.record_job(TraceStage::CapTx, cause, id.0, Some(cap.value()));
                }
                self.send_to_conn(
                    conn,
                    ClusterToJob::SetPowerCap {
                        cap,
                        cause: cause.0,
                    }
                    .encode(),
                )?;
            }
        }
        self.metrics
            .phase_actuate
            .observe(actuate_started.elapsed().as_secs_f64());
        Ok(())
    }

    /// Continuous invariant audit, run at the tail of every control pass
    /// (the pump is single-threaded, so auditing inline *is* continuous —
    /// every pass is checked, and the checks are O(jobs) over state the
    /// pass just touched).
    ///
    /// Invariants:
    ///
    /// 1. **watts conservation** — Σ last-cap × nodes over lease holders
    ///    stays within the busy budget (or the Σ of per-job minimum-cap
    ///    floors when the budget is infeasible), plus one
    ///    `recap_threshold` of slack per job (caps within the threshold
    ///    of their ideal assignment are deliberately not re-sent);
    /// 2. **lease double-count** — watts owed on an expired lease imply
    ///    the job is `Gone`: a job that is simultaneously owed reclaimed
    ///    watts *and* holding a lease would be counted twice;
    /// 3. **reclaim gauge drift** — the `watts_reclaimed` gauge equals
    ///    the Σ of per-job owed watts;
    /// 4. **stale session** — a `Connected` job's conn slot exists, and a
    ///    `Reconnecting` job has not out-lived its lease miss budget.
    ///
    /// Each violation increments `anor_invariant_violations_total`
    /// (labelled by invariant), emits an `invariant_violation` event and
    /// trace record, and dumps one postmortem per invariant kind.
    fn audit(&mut self, busy_budget: Watts) {
        let mut violations: Vec<(AuditKind, String)> = Vec::new();
        for (&id, e) in &self.jobs {
            if e.reclaimed.is_some() && !e.state.is_gone() {
                violations.push((
                    AuditKind::DoubleCount,
                    format!(
                        "job {} owed reclaimed watts while its session is {}",
                        id.0,
                        e.state.label()
                    ),
                ));
            }
            if !e.holds_lease() {
                continue;
            }
            match e.state {
                SessionState::Connected => {
                    if !self.conn_slot_live(e.conn) {
                        violations.push((
                            AuditKind::StaleSession,
                            format!(
                                "job {} believed connected but conn slot {} is closed",
                                id.0, e.conn
                            ),
                        ));
                    }
                }
                SessionState::Reconnecting { .. } => {
                    if self.lease.enabled && e.missed_pumps >= self.lease.miss_pumps {
                        violations.push((
                            AuditKind::StaleSession,
                            format!(
                                "job {} reconnecting past its lease budget ({} >= {})",
                                id.0, e.missed_pumps, self.lease.miss_pumps
                            ),
                        ));
                    }
                }
                SessionState::Gone => {}
            }
        }
        let owed: f64 = self
            .jobs
            .values()
            .filter_map(|e| e.reclaimed)
            .fold(0.0, |acc, w| acc + w.value());
        let gauge = self.metrics.watts_reclaimed.get();
        if (owed - gauge).abs() > 0.5 {
            violations.push((
                AuditKind::GaugeDrift,
                format!("watts_reclaimed gauge reads {gauge:.2} W but {owed:.2} W owed on leases"),
            ));
        }
        let (allocated, floor, nodes) = self.allocation();
        // Caps are per node and a cap within `recap_threshold` of its
        // ideal assignment is deliberately not re-sent, so the tolerated
        // drift scales with the node count, not the job count.
        let slack = nodes * self.cfg.recap_threshold.value() + 1e-6;
        let allowed = busy_budget.value().max(floor) + slack;
        if allocated > allowed {
            violations.push((
                AuditKind::Conservation,
                format!(
                    "allocated {allocated:.2} W across {nodes} leased node(s) exceeds \
                     budget {:.2} W (min-cap floor {floor:.2} W, slack {slack:.2} W)",
                    busy_budget.value()
                ),
            ));
        }
        for (kind, detail) in violations {
            self.flag_violation(kind, &detail);
        }
    }

    /// (Σ last-cap × nodes, Σ min-cap × nodes, Σ nodes) over jobs
    /// holding a live lease.
    fn allocation(&self) -> (f64, f64, f64) {
        let mut allocated = 0.0;
        let mut floor = 0.0;
        let mut nodes_total = 0.0;
        for e in self.jobs.values().filter(|e| e.holds_lease()) {
            let nodes = f64::from(e.view.nodes.max(1));
            nodes_total += nodes;
            floor += e.view.cap_range.min.value() * nodes;
            if let Some(cap) = e.last_cap {
                allocated += cap.value() * nodes;
            }
        }
        (allocated, floor, nodes_total)
    }

    fn flag_violation(&mut self, kind: AuditKind, detail: &str) {
        let (counter, dumped) = match kind {
            AuditKind::Conservation => (
                &self.metrics.audit_conservation,
                &mut self.audit_dumped.conservation,
            ),
            AuditKind::DoubleCount => (
                &self.metrics.audit_double_count,
                &mut self.audit_dumped.double_count,
            ),
            AuditKind::GaugeDrift => (
                &self.metrics.audit_gauge_drift,
                &mut self.audit_dumped.gauge_drift,
            ),
            AuditKind::StaleSession => (
                &self.metrics.audit_stale_session,
                &mut self.audit_dumped.stale_session,
            ),
        };
        counter.inc();
        self.telemetry.event(
            "invariant_violation",
            &[("invariant", kind.name().into()), ("detail", detail.into())],
        );
        if let Some(t) = &self.tracer {
            t.record_detail(TraceStage::InvariantViolation, CauseId::NONE, detail);
            if !*dumped {
                *dumped = true;
                t.dump_postmortem(&format!("invariant-{}", kind.name()));
            }
        }
    }

    /// Build the live status snapshot served on `GET /status`: cheap
    /// reads over state the pump already maintains (no recomputation, no
    /// message traffic).
    pub fn status_snapshot(&self) -> StatusSnapshot {
        let mut jobs: Vec<JobStatus> = self
            .jobs
            .iter()
            .map(|(&id, e)| JobStatus {
                job: id.0,
                state: e.state.label().to_string(),
                missed_pumps: e.missed_pumps,
                cap: e.last_cap.map(|w| w.value()),
                nodes: e.view.nodes,
                samples: e.samples_seen,
                models: e.models_seen,
                reclaimed: e.reclaimed.map(|w| w.value()),
                done: e.done.is_some(),
            })
            .collect();
        jobs.sort_unstable_by_key(|j| j.job);
        let (allocated, _, _) = self.allocation();
        let info = BuildInfo::current();
        let mut phases: Vec<PhaseStat> = self
            .metrics
            .phases()
            .iter()
            .map(|(name, h)| PhaseStat {
                phase: (*name).to_string(),
                p50: h.quantile(0.5),
                p90: h.quantile(0.9),
                p99: h.quantile(0.99),
            })
            .collect();
        // The reactor contributes one ingest row per shard, so the PHASE
        // pane shows where fan-in time is going.
        phases.extend(self.transport.shard_phases());
        StatusSnapshot {
            budget: self.last_budget.value(),
            pumps: self.pumps,
            active_jobs: self.active_jobs(),
            conns_open: match &self.replay {
                Some(rio) => rio.open.iter().filter(|o| **o).count(),
                None => self.transport.open_conns(),
            },
            accepted: self.accepted,
            completed: self.completed.len(),
            allocated_watts: allocated,
            reclaimed_watts: self.reclaimed_watts().value(),
            invariant_violations: self.metrics.violations(),
            pump_p50: self.metrics.pump.quantile(0.5),
            pump_p90: self.metrics.pump.quantile(0.9),
            pump_p99: self.metrics.pump.quantile(0.99),
            ring_depth: self.tracer.as_ref().map_or(0, Tracer::ring_depth),
            trace_recorded: self.tracer.as_ref().map_or(0, Tracer::recorded),
            postmortems: self.tracer.as_ref().map_or(0, Tracer::postmortems),
            build_version: info.version.clone(),
            git_hash: info.git_hash.clone(),
            phases,
            jobs,
        }
    }

    fn publish_status(&self) {
        if let Some(board) = &self.status {
            board.publish(&self.status_snapshot());
        }
    }

    /// Control passes executed so far.
    pub fn pump_count(&self) -> u64 {
        self.pumps
    }

    // ---- replay-mode hooks (driven by `crate::replay`) ---------------

    /// Detach the daemon from its sockets: all subsequent I/O comes from
    /// replayed events, and outbound frames are captured for comparison.
    pub(crate) fn replay_begin(&mut self) {
        self.replay = Some(ReplayIo::default());
    }

    /// Apply a recorded `ConnOpen`: slot `conn` becomes virtually live.
    pub(crate) fn replay_conn_open(&mut self, conn: usize) {
        self.accepted += 1;
        if let Some(rio) = self.replay.as_mut() {
            if rio.open.len() <= conn {
                rio.open.resize(conn + 1, false);
            }
            if let Some(slot) = rio.open.get_mut(conn) {
                *slot = true;
            }
        }
    }

    /// Apply a recorded `ConnClosed`: mark the slot dead and run the
    /// live disconnect bookkeeping (lease countdowns, postmortems).
    pub(crate) fn replay_conn_closed(&mut self, conn: usize) {
        if let Some(rio) = self.replay.as_mut() {
            if let Some(slot) = rio.open.get_mut(conn) {
                *slot = false;
            }
        }
        self.disconnect_conn(ConnId::new(conn as u32));
    }

    /// Apply a recorded `ConnQuarantined`: count it. (Recordings pair a
    /// quarantine with a `ConnClosed`, which does the teardown; frame-
    /// level quarantines additionally re-trip inside `process_frame`,
    /// which skips the counter in replay mode to avoid double-counting.)
    pub(crate) fn replay_conn_quarantined(&mut self, _conn: usize) {
        self.metrics.conns_quarantined.inc();
    }

    /// Inject a recorded inbound frame body through the real decode and
    /// session paths. Returns `true` when the frame was malformed (the
    /// recording carries the resulting quarantine/close as events).
    pub(crate) fn replay_inject(&mut self, conn: usize, body: bytes::Bytes) -> Result<bool> {
        self.process_frame(ConnId::new(conn as u32), body)
    }

    /// Queue a recorded decision cause id for the next cap-reissuing
    /// redistribute pass.
    pub(crate) fn replay_feed_cause(&mut self, cause: u64) {
        if let Some(rio) = self.replay.as_mut() {
            rio.causes.push_back(cause);
        }
    }

    /// Drain the outbound frames captured since the last call, in
    /// emission order.
    pub(crate) fn replay_take_out(&mut self) -> Vec<(usize, bytes::Bytes)> {
        self.replay
            .as_mut()
            .map(|rio| std::mem::take(&mut rio.out))
            .unwrap_or_default()
    }

    /// Invariant-auditor violations observed so far (all kinds).
    pub fn invariant_violations(&self) -> u64 {
        self.metrics.violations()
    }

    /// Test-only corruption hook: skew a job's accounting (phantom
    /// reclaimed watts plus an inflated cap) so the continuous auditor's
    /// tripwires can be exercised end-to-end. Never call this outside a
    /// test harness.
    #[doc(hidden)]
    pub fn corrupt_for_audit(&mut self, job: JobId, skew: Watts) {
        if let Some(e) = self.jobs.get_mut(&job) {
            e.reclaimed = Some(skew);
            e.last_cap = Some(e.last_cap.unwrap_or(Watts::ZERO) + skew);
        }
    }

    /// Test-only: run the auditor against the *current* state, without
    /// the pump's redistribute pass first. An inflated cap planted by
    /// [`ClusterBudgeter::corrupt_for_audit`] is corrected by the next
    /// redistribute (which is itself the conservation mechanism working),
    /// so proving the conservation tripwire fires requires presenting the
    /// corrupted state to the auditor directly.
    #[doc(hidden)]
    pub fn audit_now(&mut self, busy_budget: Watts) {
        self.audit(busy_budget);
    }

    /// Jobs currently registered, not done, and holding a live lease.
    pub fn active_jobs(&self) -> usize {
        self.jobs.values().filter(|e| e.holds_lease()).count()
    }

    /// The last cap sent per job, sorted by job id.
    pub fn job_caps(&self) -> Vec<(JobId, Option<Watts>)> {
        let mut v: Vec<(JobId, Option<Watts>)> =
            self.jobs.iter().map(|(&id, e)| (id, e.last_cap)).collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// Samples and models ingested for a job (telemetry for tests).
    pub fn job_traffic(&self, job: JobId) -> Option<(u64, u64)> {
        self.jobs.get(&job).map(|e| (e.samples_seen, e.models_seen))
    }

    /// The believed curve currently used for a job.
    pub fn believed_view(&self, job: JobId) -> Option<&JobView> {
        self.jobs.get(&job).map(|e| &e.view)
    }

    /// The budgeter's belief about the session carrying a job.
    pub fn job_session(&self, job: JobId) -> Option<SessionState> {
        self.jobs.get(&job).map(|e| e.state)
    }

    /// Session belief per registered job, sorted by job id.
    pub fn session_states(&self) -> Vec<(JobId, SessionState)> {
        let mut v: Vec<(JobId, SessionState)> =
            self.jobs.iter().map(|(&id, e)| (id, e.state)).collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// Watts currently reclaimed from expired leases and not yet restored
    /// (the double-count invariant: reclaimed + allocated == budget is
    /// checked by summing this against live assignments).
    pub fn reclaimed_watts(&self) -> Watts {
        self.jobs
            .values()
            .filter_map(|e| e.reclaimed)
            .fold(Watts::ZERO, |acc, w| acc + w)
    }

    /// Completed jobs with their reported elapsed times.
    pub fn completed(&self) -> &[(JobId, Seconds)] {
        &self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{FramedStream, StreamOptions};
    use anor_types::msg::EpochSample;
    use anor_types::{Joules, PowerCurve};
    use std::net::TcpStream;

    fn connect(addr: SocketAddr) -> FramedStream {
        FramedStream::new(TcpStream::connect(addr).unwrap(), StreamOptions::default()).unwrap()
    }

    /// The default test daemon runs the reactor plane so the whole
    /// session suite exercises it; the blocking plane keeps its own
    /// coverage via `deprecated_bind_shims_still_work` and the
    /// `reactor_equiv` integration tests.
    fn bind(cfg: BudgeterConfig) -> (ClusterBudgeter, SocketAddr) {
        ClusterBudgeter::builder(cfg)
            .transport(TransportKind::Reactor)
            .shards(2)
            .bind()
            .unwrap()
    }

    fn hello(job: u64, name: &str, nodes: u32) -> bytes::Bytes {
        JobToCluster::Hello {
            job: JobId(job),
            type_name: name.into(),
            nodes,
        }
        .encode()
    }

    /// Pump the daemon until a predicate holds, parking on transport
    /// readiness between passes (localhost TCP is fast but not
    /// instantaneous).
    fn pump_until(
        b: &mut ClusterBudgeter,
        budget: Watts,
        mut done: impl FnMut(&ClusterBudgeter) -> bool,
    ) {
        for _ in 0..1000 {
            b.pump(budget).unwrap();
            if done(b) {
                return;
            }
            b.wait_readable(Duration::from_millis(1));
        }
        panic!("budgeter pump_until timed out");
    }

    #[test]
    fn hello_registers_job_and_cap_is_sent() {
        let (mut b, addr) = bind(BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false));
        let mut client = connect(addr);
        client.send(hello(1, "bt.D.81", 2)).unwrap();
        pump_until(&mut b, Watts(400.0), |b| b.active_jobs() == 1);
        // The endpoint should receive a SetPowerCap.
        let mut got = Vec::new();
        pump_until(&mut b, Watts(400.0), |_| {
            client.flush_some().unwrap();
            got.extend(client.recv_frames().unwrap());
            !got.is_empty()
        });
        let ClusterToJob::SetPowerCap { cap, .. } = ClusterToJob::decode(got.remove(0)).unwrap()
        else {
            panic!("expected a cap message");
        };
        // 400 W over 2 nodes -> 200 W/node.
        assert!((cap.value() - 200.0).abs() < 2.0, "cap {cap}");
        assert_eq!(b.job_session(JobId(1)), Some(SessionState::Connected));
    }

    #[test]
    fn two_jobs_split_budget_by_policy() {
        let (mut b, addr) = bind(BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false));
        let mut bt = connect(addr);
        let mut sp = connect(addr);
        bt.send(hello(1, "bt.D.81", 2)).unwrap();
        sp.send(hello(2, "sp.D.81", 2)).unwrap();
        pump_until(&mut b, Watts(840.0), |b| b.active_jobs() == 2);
        pump_until(&mut b, Watts(840.0), |b| {
            b.job_caps().iter().all(|(_, c)| c.is_some())
        });
        let caps = b.job_caps();
        let bt_cap = caps[0].1.unwrap();
        let sp_cap = caps[1].1.unwrap();
        assert!(
            bt_cap.value() > sp_cap.value() + 10.0,
            "even-slowdown steers power to BT: {bt_cap} vs {sp_cap}"
        );
        // Budget approximately spent.
        let total = 2.0 * bt_cap.value() + 2.0 * sp_cap.value();
        assert!((total - 840.0).abs() < 5.0, "total {total}");
    }

    #[test]
    fn unknown_type_uses_configured_default() {
        for (default, expect_most) in [
            (UnknownDefault::LeastSensitive, false),
            (UnknownDefault::MostSensitive, true),
        ] {
            let mut cfg = BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false);
            cfg.unknown_default = default;
            let (mut b, addr) = bind(cfg);
            let mut client = connect(addr);
            client.send(hello(9, "mystery.X.1", 1)).unwrap();
            pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
            let view = b.believed_view(JobId(9)).unwrap();
            let cat = anor_types::standard_catalog();
            let expected = if expect_most {
                cat.most_sensitive().unwrap().curve()
            } else {
                cat.least_sensitive().unwrap().curve()
            };
            assert_eq!(view.curve, expected);
            assert_eq!(view.nodes, 1, "nodes come from Hello, not the default");
        }
    }

    #[test]
    fn feedback_updates_view_only_when_enabled() {
        for feedback in [false, true] {
            let (mut b, addr) = bind(BudgeterConfig::new(BudgetPolicy::EvenSlowdown, feedback));
            let mut client = connect(addr);
            client.send(hello(3, "is.D.32", 1)).unwrap();
            pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
            let original = b.believed_view(JobId(3)).unwrap().curve;
            let fitted = PowerCurve::new(3.0e-5, -0.02, 7.7);
            client
                .send(
                    JobToCluster::Model {
                        job: JobId(3),
                        curve: fitted,
                        samples: 24,
                        cause: 0,
                    }
                    .encode(),
                )
                .unwrap();
            pump_until(&mut b, Watts(200.0), |b| {
                b.job_traffic(JobId(3)).unwrap().1 == 1
            });
            let now = b.believed_view(JobId(3)).unwrap().curve;
            if feedback {
                assert_eq!(now, fitted, "feedback on: model replaces view");
            } else {
                assert_eq!(now, original, "feedback off: model ignored");
            }
        }
    }

    #[test]
    fn done_and_disconnect_deactivate_job() {
        let (mut b, addr) = bind(BudgeterConfig::new(BudgetPolicy::Uniform, false));
        let mut client = connect(addr);
        client.send(hello(5, "mg.D.32", 1)).unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
        client
            .send(
                JobToCluster::Done {
                    job: JobId(5),
                    elapsed: Seconds(123.0),
                }
                .encode(),
            )
            .unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 0);
        assert_eq!(b.completed(), &[(JobId(5), Seconds(123.0))]);
        drop(client);
        // Pumping after the disconnect is harmless.
        b.pump(Watts(200.0)).unwrap();
    }

    #[test]
    fn abrupt_disconnect_expires_the_lease_and_reclaims_watts() {
        let (mut b, addr) =
            ClusterBudgeter::builder(BudgeterConfig::new(BudgetPolicy::Uniform, false))
                .lease(LeaseConfig::after_misses(10))
                .bind()
                .unwrap();
        let mut client = connect(addr);
        client.send(hello(6, "cg.D.32", 1)).unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
        pump_until(&mut b, Watts(200.0), |b| b.job_caps()[0].1.is_some());
        drop(client);
        // Disconnect first parks the job on its lease...
        pump_until(&mut b, Watts(200.0), |b| {
            matches!(
                b.job_session(JobId(6)),
                Some(SessionState::Reconnecting { .. })
            )
        });
        assert_eq!(b.active_jobs(), 1, "leased job still holds its watts");
        // ...then the miss budget runs out and the watts come back.
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 0);
        assert_eq!(b.job_session(JobId(6)), Some(SessionState::Gone));
        assert!(b.reclaimed_watts().value() > 0.0, "watts were reclaimed");
        assert_eq!(b.telemetry().counter("leases_expired_total", &[]).get(), 1);
    }

    #[test]
    fn lease_disabled_strands_jobs_immediately() {
        let (mut b, addr) =
            ClusterBudgeter::builder(BudgeterConfig::new(BudgetPolicy::Uniform, false))
                .lease(LeaseConfig::disabled())
                .bind()
                .unwrap();
        let mut client = connect(addr);
        client.send(hello(6, "cg.D.32", 1)).unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
        drop(client);
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 0);
        assert_eq!(b.job_session(JobId(6)), None, "entry removed outright");
    }

    #[test]
    fn resume_restores_the_lease_and_acks_the_last_cap() {
        let (mut b, addr) =
            ClusterBudgeter::builder(BudgeterConfig::new(BudgetPolicy::Uniform, false))
                .lease(LeaseConfig::after_misses(5))
                .bind()
                .unwrap();
        let mut client = connect(addr);
        client.send(hello(4, "mg.D.32", 1)).unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
        pump_until(&mut b, Watts(200.0), |b| b.job_caps()[0].1.is_some());
        let cap_before = b.job_caps()[0].1.unwrap();
        drop(client);
        // Let the lease fully expire so restore has something to undo.
        pump_until(&mut b, Watts(200.0), |b| {
            b.job_session(JobId(4)) == Some(SessionState::Gone)
        });
        assert!(b.reclaimed_watts().value() > 0.0);
        // A new connection resumes the same job id.
        let mut revived = connect(addr);
        revived
            .send(
                JobToCluster::Resume {
                    job: JobId(4),
                    type_name: "mg.D.32".into(),
                    nodes: 1,
                    believed_cap: cap_before,
                    cause: 77,
                }
                .encode(),
            )
            .unwrap();
        pump_until(&mut b, Watts(200.0), |b| {
            b.job_session(JobId(4)) == Some(SessionState::Connected)
        });
        assert_eq!(b.active_jobs(), 1, "resumed job holds its lease again");
        assert_eq!(
            b.reclaimed_watts(),
            Watts::ZERO,
            "restored, not double-counted"
        );
        // The ack carries the cap on record.
        let mut acks = Vec::new();
        pump_until(&mut b, Watts(200.0), |_| {
            revived.flush_some().unwrap();
            for f in revived.recv_frames().unwrap() {
                if let Ok(ClusterToJob::ResumeAck { cap, cause }) = ClusterToJob::decode(f) {
                    acks.push((cap, cause));
                }
            }
            !acks.is_empty()
        });
        assert_eq!(acks[0], (cap_before, 77));
    }

    #[test]
    fn resume_of_an_unknown_job_registers_like_hello() {
        // A restarted budgeter has no record: the Resume re-registers the
        // job and the ack's negative cap says "nothing on file".
        let (mut b, addr) = bind(BudgeterConfig::new(BudgetPolicy::Uniform, false));
        let mut client = connect(addr);
        client
            .send(
                JobToCluster::Resume {
                    job: JobId(12),
                    type_name: "bt.D.81".into(),
                    nodes: 2,
                    believed_cap: Watts(190.0),
                    cause: 5,
                }
                .encode(),
            )
            .unwrap();
        pump_until(&mut b, Watts(400.0), |b| b.active_jobs() == 1);
        assert_eq!(b.believed_view(JobId(12)).unwrap().nodes, 2);
        let mut acks = Vec::new();
        pump_until(&mut b, Watts(400.0), |_| {
            client.flush_some().unwrap();
            for f in client.recv_frames().unwrap() {
                if let Ok(ClusterToJob::ResumeAck { cap, cause }) = ClusterToJob::decode(f) {
                    acks.push((cap, cause));
                }
            }
            !acks.is_empty()
        });
        let (cap, cause) = acks[0];
        assert!(cap.value() < 0.0, "no cap on file after a restart");
        assert_eq!(cause, 5);
    }

    #[test]
    fn samples_are_counted() {
        let (mut b, addr) = bind(BudgeterConfig::new(BudgetPolicy::Uniform, false));
        let mut client = connect(addr);
        client.send(hello(7, "lu.D.42", 1)).unwrap();
        for i in 0..5u64 {
            client
                .send(
                    JobToCluster::Sample(EpochSample {
                        job: JobId(7),
                        epoch_count: i,
                        energy: Joules(10.0 * i as f64),
                        avg_power: Watts(150.0),
                        avg_cap: Watts(160.0),
                        timestamp: Seconds(i as f64),
                        cause: 0,
                    })
                    .encode(),
                )
                .unwrap();
        }
        pump_until(&mut b, Watts(200.0), |b| {
            b.job_traffic(JobId(7)).is_some_and(|(s, _)| s == 5)
        });
    }

    #[test]
    fn malformed_peer_is_quarantined_without_killing_the_daemon() {
        let (mut b, addr) = bind(BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false));
        // A healthy job...
        let mut good = connect(addr);
        good.send(hello(1, "bt.D.81", 2)).unwrap();
        pump_until(&mut b, Watts(500.0), |b| b.active_jobs() == 1);
        // ...and a hostile peer sending garbage: a plausible length
        // prefix followed by junk, then an oversized length prefix.
        let mut evil = connect(addr);
        let mut junk = bytes::BytesMut::new();
        bytes::BufMut::put_u32(&mut junk, 3);
        bytes::BufMut::put_slice(&mut junk, &[0xde, 0xad, 0xbe]);
        bytes::BufMut::put_u32(&mut junk, u32::MAX);
        evil.send(junk.freeze()).unwrap();
        // The daemon keeps running and the healthy job stays active.
        for _ in 0..100 {
            evil.flush_some().unwrap();
            b.pump(Watts(500.0)).unwrap();
            b.wait_readable(Duration::from_millis(1));
        }
        assert_eq!(b.active_jobs(), 1, "healthy job must survive");
        // The hostile connection was quarantined, not just ignored.
        assert!(
            b.telemetry()
                .counter("budgeter_conns_quarantined_total", &[])
                .get()
                >= 1,
            "quarantine must be counted"
        );
        // And the healthy job still gets budget updates.
        pump_until(&mut b, Watts(560.0), |b| b.job_caps()[0].1.is_some());
    }

    #[test]
    fn telemetry_records_rebalances_messages_and_retrains() {
        let telemetry = Telemetry::new();
        let (mut b, addr) =
            ClusterBudgeter::builder(BudgeterConfig::new(BudgetPolicy::EvenSlowdown, true))
                .telemetry(telemetry.clone())
                .bind()
                .unwrap();
        let mut client = connect(addr);
        client.send(hello(11, "bt.D.81", 2)).unwrap();
        pump_until(&mut b, Watts(400.0), |b| b.active_jobs() == 1);
        client
            .send(
                JobToCluster::Model {
                    job: JobId(11),
                    curve: PowerCurve::new(3.0e-5, -0.02, 7.7),
                    samples: 24,
                    cause: 0,
                }
                .encode(),
            )
            .unwrap();
        pump_until(&mut b, Watts(400.0), |b| {
            b.job_traffic(JobId(11)).unwrap().1 == 1
        });
        let h = telemetry.histogram("budgeter_rebalance_seconds", &[]);
        assert!(h.count() >= 1, "rebalances must be timed");
        assert_eq!(
            telemetry
                .counter("budgeter_msgs_total", &[("kind", "hello")])
                .get(),
            1
        );
        assert_eq!(
            telemetry.gauge("job_retrains", &[("job", "11")]).get(),
            1.0,
            "per-job retrain count published"
        );
        assert!(
            telemetry
                .counter("transport_frames_rx_total", &[("role", "budgeter")])
                .get()
                >= 2,
            "accepted connections must count frames"
        );
        let lines = telemetry.memory_event_lines();
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"budgeter_hello\"")));
    }

    #[test]
    fn caps_resent_only_on_material_change() {
        let (mut b, addr) = bind(BudgeterConfig::new(BudgetPolicy::Uniform, false));
        let mut client = connect(addr);
        client.send(hello(8, "mg.D.32", 1)).unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
        let mut frames = Vec::new();
        // Wait for the first cap to land, then pump many more times at
        // the same budget: still only one cap message.
        pump_until(&mut b, Watts(200.0), |_| {
            client.flush_some().unwrap();
            frames.extend(client.recv_frames().unwrap());
            !frames.is_empty()
        });
        for _ in 0..50 {
            b.pump(Watts(200.0)).unwrap();
            b.wait_readable(Duration::from_millis(1));
            client.flush_some().unwrap();
            frames.extend(client.recv_frames().unwrap());
        }
        assert_eq!(frames.len(), 1, "redundant caps must be elided");
        // A real budget change triggers a resend.
        for _ in 0..50 {
            b.pump(Watts(260.0)).unwrap();
            client.flush_some().unwrap();
            frames.extend(client.recv_frames().unwrap());
            if frames.len() == 2 {
                break;
            }
            b.wait_readable(Duration::from_millis(1));
        }
        assert_eq!(frames.len(), 2);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_bind_shims_still_work() {
        let (mut b, addr) =
            ClusterBudgeter::bind(BudgeterConfig::new(BudgetPolicy::Uniform, false)).unwrap();
        let mut client = connect(addr);
        client.send(hello(2, "mg.D.32", 1)).unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
        // bind_with shares the caller's telemetry handle.
        let telemetry = Telemetry::new();
        let (b2, _) = ClusterBudgeter::bind_with(
            BudgeterConfig::new(BudgetPolicy::Uniform, false),
            telemetry.clone(),
        )
        .unwrap();
        b2.telemetry().counter("shim_probe", &[]).inc();
        assert_eq!(telemetry.counter("shim_probe", &[]).get(), 1);
    }
}
