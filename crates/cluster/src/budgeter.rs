//! The head-node cluster power budgeter daemon.
//!
//! Section 4: "The cluster-tier manager periodically reads cluster power
//! targets..., receives messages from nodes running jobs, calculates how
//! to distribute available power to jobs, and sends messages to inform
//! each job-tier endpoint of the job's new power cap."
//!
//! The daemon listens on TCP; each job's endpoint process connects and
//! introduces itself with `Hello { job, type_name, nodes }`. The budgeter
//! builds its *believed* [`JobView`] from the announced type name — which
//! may be wrong (misclassification) or unknown (then a configurable
//! default assumption applies, Section 6.1.2). With feedback enabled,
//! incoming `Model` messages replace the believed curve.

use crate::codec::{FramedStream, TransportMetrics};
use anor_policy::{Budgeter, EvenPowerBudgeter, EvenSlowdownBudgeter, JobView, UniformBudgeter};
use anor_telemetry::{CauseId, Counter, Gauge, Histogram, Telemetry, Timer, TraceStage, Tracer};
use anor_types::msg::{ClusterToJob, JobToCluster};
use anor_types::{AnorError, Catalog, JobId, Result, Seconds, Watts};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};

/// Which distribution rule the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPolicy {
    /// Same cap on every node (performance-agnostic).
    Uniform,
    /// The γ-interpolating performance-unaware balancer.
    EvenPower,
    /// The model-driven even-slowdown balancer.
    EvenSlowdown,
}

impl BudgetPolicy {
    fn assign(&self, budget: Watts, jobs: &[JobView]) -> Vec<Watts> {
        match self {
            BudgetPolicy::Uniform => UniformBudgeter.assign(budget, jobs),
            BudgetPolicy::EvenPower => EvenPowerBudgeter.assign(budget, jobs),
            BudgetPolicy::EvenSlowdown => EvenSlowdownBudgeter::default().assign(budget, jobs),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BudgetPolicy::Uniform => "uniform",
            BudgetPolicy::EvenPower => "even-power",
            BudgetPolicy::EvenSlowdown => "even-slowdown",
        }
    }
}

/// Default identity assumed for job types the budgeter does not know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownDefault {
    /// Assume the least power-sensitive known type (under-prediction).
    LeastSensitive,
    /// Assume the most power-sensitive known type (over-prediction).
    MostSensitive,
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct BudgeterConfig {
    /// Distribution policy.
    pub policy: BudgetPolicy,
    /// Fold job-tier `Model` messages back into views?
    pub feedback: bool,
    /// Known job types (for resolving announced names).
    pub catalog: Catalog,
    /// Assumption for unknown names.
    pub unknown_default: UnknownDefault,
    /// Re-send a job's cap only when it moved by more than this.
    pub recap_threshold: Watts,
}

impl BudgeterConfig {
    /// A sensible default configuration over the standard catalog.
    pub fn new(policy: BudgetPolicy, feedback: bool) -> Self {
        BudgeterConfig {
            policy,
            feedback,
            catalog: anor_types::standard_catalog(),
            unknown_default: UnknownDefault::LeastSensitive,
            recap_threshold: Watts(1.0),
        }
    }
}

#[derive(Debug)]
struct JobEntry {
    view: JobView,
    conn: usize,
    last_cap: Option<Watts>,
    samples_seen: u64,
    models_seen: u64,
    /// Highest per-node power ever observed for the job. With feedback
    /// enabled this corrects a misclassified believed power window: a job
    /// labelled as a low-power type that is seen drawing more clearly can
    /// use more.
    peak_node_power: Watts,
    /// Consecutive samples with draw far below the assigned cap.
    under_draw_streak: u32,
    done: Option<Seconds>,
}

/// Cached metric handles for the daemon's own control loop (the
/// transport series live in [`TransportMetrics`]).
#[derive(Debug)]
struct BudgeterMetrics {
    rebalance: Histogram,
    msgs_hello: Counter,
    msgs_sample: Counter,
    msgs_model: Counter,
    msgs_done: Counter,
    active_jobs: Gauge,
}

impl BudgeterMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        BudgeterMetrics {
            rebalance: telemetry.histogram("budgeter_rebalance_seconds", &[]),
            msgs_hello: telemetry.counter("budgeter_msgs_total", &[("kind", "hello")]),
            msgs_sample: telemetry.counter("budgeter_msgs_total", &[("kind", "sample")]),
            msgs_model: telemetry.counter("budgeter_msgs_total", &[("kind", "model")]),
            msgs_done: telemetry.counter("budgeter_msgs_total", &[("kind", "done")]),
            active_jobs: telemetry.gauge("budgeter_active_jobs", &[]),
        }
    }
}

/// The budgeter daemon (pump-driven).
#[derive(Debug)]
pub struct ClusterBudgeter {
    cfg: BudgeterConfig,
    listener: TcpListener,
    conns: Vec<Option<FramedStream>>,
    jobs: HashMap<JobId, JobEntry>,
    completed: Vec<(JobId, Seconds)>,
    telemetry: Telemetry,
    transport: TransportMetrics,
    metrics: BudgeterMetrics,
    tracer: Option<Tracer>,
}

impl ClusterBudgeter {
    /// Bind on an ephemeral localhost port. Returns the daemon and the
    /// address endpoints should connect to.
    pub fn bind(cfg: BudgeterConfig) -> Result<(Self, SocketAddr)> {
        Self::bind_addr(cfg, "127.0.0.1:0")
    }

    /// Bind on an explicit address (the standalone `anord` daemon).
    pub fn bind_addr(cfg: BudgeterConfig, addr: &str) -> Result<(Self, SocketAddr)> {
        Self::bind_addr_with(cfg, Telemetry::new(), addr)
    }

    /// Like [`ClusterBudgeter::bind`], recording into a shared
    /// [`Telemetry`] handle instead of a private in-memory one.
    pub fn bind_with(cfg: BudgeterConfig, telemetry: Telemetry) -> Result<(Self, SocketAddr)> {
        Self::bind_addr_with(cfg, telemetry, "127.0.0.1:0")
    }

    /// Explicit address *and* explicit telemetry (the standalone daemon
    /// with `--telemetry`).
    pub fn bind_addr_with(
        cfg: BudgeterConfig,
        telemetry: Telemetry,
        addr: &str,
    ) -> Result<(Self, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let transport = TransportMetrics::new(&telemetry, "budgeter");
        let metrics = BudgeterMetrics::new(&telemetry);
        Ok((
            ClusterBudgeter {
                cfg,
                listener,
                conns: Vec::new(),
                jobs: HashMap::new(),
                completed: Vec::new(),
                telemetry,
                transport,
                metrics,
                tracer: None,
            },
            addr,
        ))
    }

    /// The telemetry handle this daemon records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Trace every rebalance decision, cap send, and inbound sample into
    /// `tracer`; on peer failures the flight recorder is dumped to disk.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// One control pass: accept connections, ingest messages, recompute
    /// the assignment over active jobs for `busy_budget` (total CPU watts
    /// for all job-occupied nodes), and send changed caps.
    pub fn pump(&mut self, busy_budget: Watts) -> Result<()> {
        self.accept_new()?;
        self.ingest()?;
        let out = self.redistribute(busy_budget);
        self.metrics.active_jobs.set(self.active_jobs() as f64);
        out
    }

    fn accept_new(&mut self) -> Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.conns.push(Some(FramedStream::with_metrics(
                    stream,
                    self.transport.clone(),
                )?)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn resolve_view(&self, job: JobId, type_name: &str, nodes: u32) -> Result<JobView> {
        let fallback = || match self.cfg.unknown_default {
            UnknownDefault::LeastSensitive => self.cfg.catalog.least_sensitive(),
            UnknownDefault::MostSensitive => self.cfg.catalog.most_sensitive(),
        };
        let spec = match self.cfg.catalog.find(type_name).or_else(fallback) {
            Some(spec) => spec,
            None => {
                // An empty catalog cannot resolve anything — a daemon
                // configuration error, not grounds for a panic mid-pump.
                return Err(AnorError::config(
                    "budgeter catalog is empty; cannot resolve any job type",
                ));
            }
        };
        let mut view = JobView::from_spec(job, spec);
        view.nodes = nodes;
        Ok(view)
    }

    fn ingest(&mut self) -> Result<()> {
        for idx in 0..self.conns.len() {
            let Some(stream) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            stream.flush_some()?;
            // A misbehaving peer (malformed frames, oversized length
            // prefix) must not take the daemon down: treat its protocol
            // errors like a disconnect and drop only that connection.
            let (frames, mut closed) = match stream.recv_frames() {
                Ok(frames) => (frames, stream.is_closed()),
                Err(AnorError::Protocol(e)) => {
                    if let Some(t) = &self.tracer {
                        t.record_detail(TraceStage::TransportError, CauseId::NONE, &e);
                        t.dump_postmortem("budgeter-protocol-error");
                    }
                    (Vec::new(), true)
                }
                Err(e) => return Err(e),
            };
            for body in frames {
                let msg = match JobToCluster::decode(body) {
                    Ok(m) => m,
                    Err(e) => {
                        if let Some(t) = &self.tracer {
                            t.record_detail(
                                TraceStage::TransportError,
                                CauseId::NONE,
                                &format!("malformed frame: {e}"),
                            );
                            t.dump_postmortem("budgeter-malformed-frame");
                        }
                        closed = true;
                        break;
                    }
                };
                match msg {
                    JobToCluster::Hello {
                        job,
                        type_name,
                        nodes,
                    } => {
                        self.metrics.msgs_hello.inc();
                        self.telemetry.event(
                            "budgeter_hello",
                            &[
                                ("job", job.0.into()),
                                ("type", type_name.as_str().into()),
                                ("nodes", u64::from(nodes).into()),
                            ],
                        );
                        let view = self.resolve_view(job, &type_name, nodes)?;
                        self.jobs.insert(
                            job,
                            JobEntry {
                                view,
                                conn: idx,
                                last_cap: None,
                                samples_seen: 0,
                                models_seen: 0,
                                peak_node_power: Watts::ZERO,
                                under_draw_streak: 0,
                                done: None,
                            },
                        );
                    }
                    JobToCluster::Sample(s) => {
                        self.metrics.msgs_sample.inc();
                        if let Some(t) = &self.tracer {
                            t.record_job(
                                TraceStage::SampleRx,
                                CauseId(s.cause),
                                s.job.0,
                                Some(s.avg_power.value()),
                            );
                        }
                        if let Some(e) = self.jobs.get_mut(&s.job) {
                            e.samples_seen += 1;
                            let per_node = s.avg_power / e.view.nodes.max(1) as f64;
                            e.peak_node_power = e.peak_node_power.max(per_node);
                            if self.cfg.feedback {
                                if per_node.value() > e.view.max_draw.value() + 1.0 {
                                    // Observation contradicts the believed
                                    // power window: widen it.
                                    e.view.max_draw = per_node;
                                }
                                // Slack reclaim (Section 7.2): a job whose
                                // draw sits far below its assigned cap
                                // (setup/teardown, I/O stall) donates its
                                // headroom back to the pool; a job pinned
                                // at its cap probes upward so a shrunken
                                // window can recover.
                                if let Some(cap) = e.last_cap {
                                    let ratio = per_node / cap;
                                    if ratio < 0.7 {
                                        e.under_draw_streak += 1;
                                        if e.under_draw_streak >= 3 {
                                            e.view.max_draw =
                                                (per_node * 1.05).max(e.view.cap_range.min);
                                        }
                                    } else {
                                        e.under_draw_streak = 0;
                                        if ratio > 0.98
                                            && e.view.max_draw.value() <= cap.value() * 1.05
                                        {
                                            e.view.max_draw = (e.view.max_draw + Watts(10.0))
                                                .min(e.view.cap_range.max);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    JobToCluster::Model {
                        job, curve, cause, ..
                    } => {
                        self.metrics.msgs_model.inc();
                        if let Some(t) = &self.tracer {
                            t.record_job(TraceStage::ModelRx, CauseId(cause), job.0, None);
                        }
                        if let Some(e) = self.jobs.get_mut(&job) {
                            e.models_seen += 1;
                            // The "per-job retrain count" the summary
                            // table reports: every Model push is one
                            // retrain at the job tier.
                            self.telemetry
                                .gauge("job_retrains", &[("job", &job.0.to_string())])
                                .set(e.models_seen as f64);
                            if self.cfg.feedback {
                                e.view = e.view.clone().with_curve(curve);
                            }
                        }
                    }
                    JobToCluster::Done { job, elapsed } => {
                        self.metrics.msgs_done.inc();
                        self.telemetry.event(
                            "budgeter_job_done",
                            &[("job", job.0.into()), ("elapsed_s", elapsed.value().into())],
                        );
                        if let Some(e) = self.jobs.get_mut(&job) {
                            e.done = Some(elapsed);
                        }
                        self.completed.push((job, elapsed));
                    }
                }
            }
            if closed {
                // Any job on this connection that never said Done is gone.
                let abandoned: Vec<JobId> = self
                    .jobs
                    .iter()
                    .filter(|(_, e)| e.conn == idx && e.done.is_none())
                    .map(|(&id, _)| id)
                    .collect();
                if !abandoned.is_empty() {
                    if let Some(t) = &self.tracer {
                        t.record_detail(
                            TraceStage::Disconnect,
                            CauseId::NONE,
                            &format!("conn {idx} lost with {} active job(s)", abandoned.len()),
                        );
                        t.dump_postmortem("endpoint-disconnect");
                    }
                }
                self.jobs.retain(|_, e| e.conn != idx || e.done.is_some());
                if let Some(slot) = self.conns.get_mut(idx) {
                    *slot = None;
                }
            }
        }
        Ok(())
    }

    fn redistribute(&mut self, busy_budget: Watts) -> Result<()> {
        // Collect (id, view) pairs in one pass so `views` stays aligned
        // with the ids even if an entry were to vanish mid-iteration.
        let mut active: Vec<(JobId, JobView)> = self
            .jobs
            .iter()
            .filter(|(_, e)| e.done.is_none())
            .map(|(&id, e)| (id, e.view.clone()))
            .collect();
        if active.is_empty() {
            return Ok(());
        }
        // Latency of an actual rebalance; empty passes are not observed
        // so the percentiles describe real redistribution work.
        let _timer = Timer::start(self.metrics.rebalance.clone());
        active.sort_unstable_by_key(|(id, _)| *id);
        let views: Vec<JobView> = active.iter().map(|(_, v)| v.clone()).collect();
        let caps = self.cfg.policy.assign(busy_budget, &views);
        // Which caps moved enough to resend?
        let changed: Vec<(JobId, Watts)> = active
            .iter()
            .map(|(id, _)| id)
            .zip(caps)
            .filter(|(id, cap)| {
                self.jobs.get(id).is_some_and(|e| {
                    e.last_cap.is_none_or(|prev| {
                        (prev - *cap).abs().value() > self.cfg.recap_threshold.value()
                    })
                })
            })
            .map(|(id, cap)| (*id, cap))
            .collect();
        if changed.is_empty() {
            return Ok(());
        }
        // One decision id covers every cap this rebalance re-issues; a
        // pass that re-sends nothing mints nothing (no phantom orphans).
        let cause = match &self.tracer {
            Some(t) => {
                let c = t.next_cause();
                t.record_full(
                    TraceStage::Decision,
                    c,
                    None,
                    Some(busy_budget.value()),
                    Some(format!("{} cap(s) re-issued", changed.len())),
                );
                c
            }
            None => CauseId::NONE,
        };
        for (id, cap) in changed {
            let Some(entry) = self.jobs.get_mut(&id) else {
                continue;
            };
            entry.last_cap = Some(cap);
            let conn = entry.conn;
            if let Some(stream) = self.conns.get_mut(conn).and_then(Option::as_mut) {
                if let Some(t) = &self.tracer {
                    t.record_job(TraceStage::CapTx, cause, id.0, Some(cap.value()));
                }
                stream.send(
                    ClusterToJob::SetPowerCap {
                        cap,
                        cause: cause.0,
                    }
                    .encode(),
                )?;
            }
        }
        Ok(())
    }

    /// Jobs currently registered and not done.
    pub fn active_jobs(&self) -> usize {
        self.jobs.values().filter(|e| e.done.is_none()).count()
    }

    /// The last cap sent per job, sorted by job id.
    pub fn job_caps(&self) -> Vec<(JobId, Option<Watts>)> {
        let mut v: Vec<(JobId, Option<Watts>)> =
            self.jobs.iter().map(|(&id, e)| (id, e.last_cap)).collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// Samples and models ingested for a job (telemetry for tests).
    pub fn job_traffic(&self, job: JobId) -> Option<(u64, u64)> {
        self.jobs.get(&job).map(|e| (e.samples_seen, e.models_seen))
    }

    /// The believed curve currently used for a job.
    pub fn believed_view(&self, job: JobId) -> Option<&JobView> {
        self.jobs.get(&job).map(|e| &e.view)
    }

    /// Completed jobs with their reported elapsed times.
    pub fn completed(&self) -> &[(JobId, Seconds)] {
        &self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anor_types::msg::EpochSample;
    use anor_types::{Joules, PowerCurve};
    use std::net::TcpStream;

    fn connect(addr: SocketAddr) -> FramedStream {
        FramedStream::new(TcpStream::connect(addr).unwrap()).unwrap()
    }

    fn hello(job: u64, name: &str, nodes: u32) -> bytes::Bytes {
        JobToCluster::Hello {
            job: JobId(job),
            type_name: name.into(),
            nodes,
        }
        .encode()
    }

    /// Pump the daemon until a predicate holds (bounded retries with tiny
    /// sleeps — localhost TCP is fast but not instantaneous).
    fn pump_until(
        b: &mut ClusterBudgeter,
        budget: Watts,
        mut done: impl FnMut(&ClusterBudgeter) -> bool,
    ) {
        for _ in 0..1000 {
            b.pump(budget).unwrap();
            if done(b) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("budgeter pump_until timed out");
    }

    #[test]
    fn hello_registers_job_and_cap_is_sent() {
        let (mut b, addr) =
            ClusterBudgeter::bind(BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false)).unwrap();
        let mut client = connect(addr);
        client.send(hello(1, "bt.D.81", 2)).unwrap();
        pump_until(&mut b, Watts(400.0), |b| b.active_jobs() == 1);
        // The endpoint should receive a SetPowerCap.
        let mut got = Vec::new();
        pump_until(&mut b, Watts(400.0), |_| {
            client.flush_some().unwrap();
            got.extend(client.recv_frames().unwrap());
            !got.is_empty()
        });
        let ClusterToJob::SetPowerCap { cap, .. } = ClusterToJob::decode(got.remove(0)).unwrap()
        else {
            panic!("expected a cap message");
        };
        // 400 W over 2 nodes -> 200 W/node.
        assert!((cap.value() - 200.0).abs() < 2.0, "cap {cap}");
    }

    #[test]
    fn two_jobs_split_budget_by_policy() {
        let (mut b, addr) =
            ClusterBudgeter::bind(BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false)).unwrap();
        let mut bt = connect(addr);
        let mut sp = connect(addr);
        bt.send(hello(1, "bt.D.81", 2)).unwrap();
        sp.send(hello(2, "sp.D.81", 2)).unwrap();
        pump_until(&mut b, Watts(840.0), |b| b.active_jobs() == 2);
        pump_until(&mut b, Watts(840.0), |b| {
            b.job_caps().iter().all(|(_, c)| c.is_some())
        });
        let caps = b.job_caps();
        let bt_cap = caps[0].1.unwrap();
        let sp_cap = caps[1].1.unwrap();
        assert!(
            bt_cap.value() > sp_cap.value() + 10.0,
            "even-slowdown steers power to BT: {bt_cap} vs {sp_cap}"
        );
        // Budget approximately spent.
        let total = 2.0 * bt_cap.value() + 2.0 * sp_cap.value();
        assert!((total - 840.0).abs() < 5.0, "total {total}");
    }

    #[test]
    fn unknown_type_uses_configured_default() {
        for (default, expect_most) in [
            (UnknownDefault::LeastSensitive, false),
            (UnknownDefault::MostSensitive, true),
        ] {
            let mut cfg = BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false);
            cfg.unknown_default = default;
            let (mut b, addr) = ClusterBudgeter::bind(cfg).unwrap();
            let mut client = connect(addr);
            client.send(hello(9, "mystery.X.1", 1)).unwrap();
            pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
            let view = b.believed_view(JobId(9)).unwrap();
            let cat = anor_types::standard_catalog();
            let expected = if expect_most {
                cat.most_sensitive().unwrap().curve()
            } else {
                cat.least_sensitive().unwrap().curve()
            };
            assert_eq!(view.curve, expected);
            assert_eq!(view.nodes, 1, "nodes come from Hello, not the default");
        }
    }

    #[test]
    fn feedback_updates_view_only_when_enabled() {
        for feedback in [false, true] {
            let (mut b, addr) =
                ClusterBudgeter::bind(BudgeterConfig::new(BudgetPolicy::EvenSlowdown, feedback))
                    .unwrap();
            let mut client = connect(addr);
            client.send(hello(3, "is.D.32", 1)).unwrap();
            pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
            let original = b.believed_view(JobId(3)).unwrap().curve;
            let fitted = PowerCurve::new(3.0e-5, -0.02, 7.7);
            client
                .send(
                    JobToCluster::Model {
                        job: JobId(3),
                        curve: fitted,
                        samples: 24,
                        cause: 0,
                    }
                    .encode(),
                )
                .unwrap();
            pump_until(&mut b, Watts(200.0), |b| {
                b.job_traffic(JobId(3)).unwrap().1 == 1
            });
            let now = b.believed_view(JobId(3)).unwrap().curve;
            if feedback {
                assert_eq!(now, fitted, "feedback on: model replaces view");
            } else {
                assert_eq!(now, original, "feedback off: model ignored");
            }
        }
    }

    #[test]
    fn done_and_disconnect_deactivate_job() {
        let (mut b, addr) =
            ClusterBudgeter::bind(BudgeterConfig::new(BudgetPolicy::Uniform, false)).unwrap();
        let mut client = connect(addr);
        client.send(hello(5, "mg.D.32", 1)).unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
        client
            .send(
                JobToCluster::Done {
                    job: JobId(5),
                    elapsed: Seconds(123.0),
                }
                .encode(),
            )
            .unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 0);
        assert_eq!(b.completed(), &[(JobId(5), Seconds(123.0))]);
        drop(client);
        // Pumping after the disconnect is harmless.
        b.pump(Watts(200.0)).unwrap();
    }

    #[test]
    fn abrupt_disconnect_without_done_removes_job() {
        let (mut b, addr) =
            ClusterBudgeter::bind(BudgeterConfig::new(BudgetPolicy::Uniform, false)).unwrap();
        let mut client = connect(addr);
        client.send(hello(6, "cg.D.32", 1)).unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
        drop(client);
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 0);
    }

    #[test]
    fn samples_are_counted() {
        let (mut b, addr) =
            ClusterBudgeter::bind(BudgeterConfig::new(BudgetPolicy::Uniform, false)).unwrap();
        let mut client = connect(addr);
        client.send(hello(7, "lu.D.42", 1)).unwrap();
        for i in 0..5u64 {
            client
                .send(
                    JobToCluster::Sample(EpochSample {
                        job: JobId(7),
                        epoch_count: i,
                        energy: Joules(10.0 * i as f64),
                        avg_power: Watts(150.0),
                        avg_cap: Watts(160.0),
                        timestamp: Seconds(i as f64),
                        cause: 0,
                    })
                    .encode(),
                )
                .unwrap();
        }
        pump_until(&mut b, Watts(200.0), |b| {
            b.job_traffic(JobId(7)).is_some_and(|(s, _)| s == 5)
        });
    }

    #[test]
    fn malformed_peer_is_dropped_without_killing_the_daemon() {
        let (mut b, addr) =
            ClusterBudgeter::bind(BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false)).unwrap();
        // A healthy job...
        let mut good = connect(addr);
        good.send(hello(1, "bt.D.81", 2)).unwrap();
        pump_until(&mut b, Watts(500.0), |b| b.active_jobs() == 1);
        // ...and a hostile peer sending garbage: a plausible length
        // prefix followed by junk, then an oversized length prefix.
        let mut evil = connect(addr);
        let mut junk = bytes::BytesMut::new();
        bytes::BufMut::put_u32(&mut junk, 3);
        bytes::BufMut::put_slice(&mut junk, &[0xde, 0xad, 0xbe]);
        bytes::BufMut::put_u32(&mut junk, u32::MAX);
        evil.send(junk.freeze()).unwrap();
        // The daemon keeps running and the healthy job stays active.
        for _ in 0..100 {
            evil.flush_some().unwrap();
            b.pump(Watts(500.0)).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(b.active_jobs(), 1, "healthy job must survive");
        // And the healthy job still gets budget updates.
        pump_until(&mut b, Watts(560.0), |b| b.job_caps()[0].1.is_some());
    }

    #[test]
    fn telemetry_records_rebalances_messages_and_retrains() {
        let telemetry = Telemetry::new();
        let (mut b, addr) = ClusterBudgeter::bind_with(
            BudgeterConfig::new(BudgetPolicy::EvenSlowdown, true),
            telemetry.clone(),
        )
        .unwrap();
        let mut client = connect(addr);
        client.send(hello(11, "bt.D.81", 2)).unwrap();
        pump_until(&mut b, Watts(400.0), |b| b.active_jobs() == 1);
        client
            .send(
                JobToCluster::Model {
                    job: JobId(11),
                    curve: PowerCurve::new(3.0e-5, -0.02, 7.7),
                    samples: 24,
                    cause: 0,
                }
                .encode(),
            )
            .unwrap();
        pump_until(&mut b, Watts(400.0), |b| {
            b.job_traffic(JobId(11)).unwrap().1 == 1
        });
        let h = telemetry.histogram("budgeter_rebalance_seconds", &[]);
        assert!(h.count() >= 1, "rebalances must be timed");
        assert_eq!(
            telemetry
                .counter("budgeter_msgs_total", &[("kind", "hello")])
                .get(),
            1
        );
        assert_eq!(
            telemetry.gauge("job_retrains", &[("job", "11")]).get(),
            1.0,
            "per-job retrain count published"
        );
        assert!(
            telemetry
                .counter("transport_frames_rx_total", &[("role", "budgeter")])
                .get()
                >= 2,
            "accepted connections must count frames"
        );
        let lines = telemetry.memory_event_lines();
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"budgeter_hello\"")));
    }

    #[test]
    fn caps_resent_only_on_material_change() {
        let (mut b, addr) =
            ClusterBudgeter::bind(BudgeterConfig::new(BudgetPolicy::Uniform, false)).unwrap();
        let mut client = connect(addr);
        client.send(hello(8, "mg.D.32", 1)).unwrap();
        pump_until(&mut b, Watts(200.0), |b| b.active_jobs() == 1);
        let mut frames = Vec::new();
        // Pump many times at the same budget: only one cap message.
        for _ in 0..50 {
            b.pump(Watts(200.0)).unwrap();
            client.flush_some().unwrap();
            frames.extend(client.recv_frames().unwrap());
        }
        assert_eq!(frames.len(), 1, "redundant caps must be elided");
        // A real budget change triggers a resend.
        for _ in 0..50 {
            b.pump(Watts(260.0)).unwrap();
            client.flush_some().unwrap();
            frames.extend(client.recv_frames().unwrap());
            if frames.len() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(frames.len(), 2);
    }
}
