//! Offline replay of budgeter flight recordings.
//!
//! A recording (see `anor_telemetry::recorder`) captures everything the
//! budgeter saw — inbound wire frames, connection and lease transitions,
//! pump triggers, minted decision cause ids — plus everything it emitted.
//! [`replay`] reconstructs a [`ClusterBudgeter`] from the recorded
//! header's config string and drives it through the *real* decode,
//! session and budget code paths, with recorded events standing in for
//! sockets and the recorded timestamps standing in for the wall clock
//! (no sleeps: virtual time only orders events, it never waits).
//!
//! In `--verify` mode every re-emitted decision frame is compared
//! byte-for-byte against the recorded one — the same guarantee as the
//! golden decision-stream tests, but against a production artifact.
//! [`diff_recordings`] compares two recordings (timestamps ignored) and
//! reports the first divergence, which is how a chaos run is triaged
//! against a clean same-seed run.

use crate::budgeter::{BudgetPolicy, BudgeterConfig, ClusterBudgeter, LeaseConfig, UnknownDefault};
use crate::status::StatusSnapshot;
use anor_telemetry::{RecEvent, Recording, RecordingMeta};
use anor_types::msg::ClusterToJob;
use anor_types::{AnorError, Result, Watts};

/// Render a budgeter configuration as the canonical `key=value` string
/// stored in a recording header. [`parse_config`] inverts it; the pair
/// is what makes a recording self-describing.
pub fn describe_config(cfg: &BudgeterConfig, lease: &LeaseConfig) -> String {
    let unknown = match cfg.unknown_default {
        UnknownDefault::LeastSensitive => "least-sensitive",
        UnknownDefault::MostSensitive => "most-sensitive",
    };
    format!(
        "policy={} feedback={} unknown_default={} recap_threshold={} catalog=standard \
         lease={} miss_pumps={}",
        cfg.policy.name(),
        cfg.feedback,
        unknown,
        cfg.recap_threshold.value(),
        if lease.enabled { "on" } else { "off" },
        lease.miss_pumps,
    )
}

/// Parse a [`describe_config`] string back into a budgeter + lease
/// configuration (over the standard catalog). Unknown keys are ignored
/// for forward compatibility; a malformed known key returns `None`.
pub fn parse_config(s: &str) -> Option<(BudgeterConfig, LeaseConfig)> {
    let mut cfg = BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false);
    let mut lease = LeaseConfig::default();
    for tok in s.split_whitespace() {
        let (key, value) = tok.split_once('=')?;
        match key {
            "policy" => {
                cfg.policy = match value {
                    "uniform" => BudgetPolicy::Uniform,
                    "even-power" => BudgetPolicy::EvenPower,
                    "even-slowdown" => BudgetPolicy::EvenSlowdown,
                    _ => return None,
                };
            }
            "feedback" => cfg.feedback = value.parse().ok()?,
            "unknown_default" => {
                cfg.unknown_default = match value {
                    "least-sensitive" => UnknownDefault::LeastSensitive,
                    "most-sensitive" => UnknownDefault::MostSensitive,
                    _ => return None,
                };
            }
            "recap_threshold" => cfg.recap_threshold = Watts(value.parse().ok()?),
            "catalog" if value != "standard" => return None,
            "catalog" => {}
            "lease" => {
                lease.enabled = match value {
                    "on" => true,
                    "off" => false,
                    _ => return None,
                };
            }
            "miss_pumps" => lease.miss_pumps = value.parse().ok()?,
            _ => {}
        }
    }
    Some((cfg, lease))
}

/// Build the [`RecordingMeta`] a budgeter-side recorder should be
/// created with: role `budgeter` and a replay-compatible config string.
pub fn recorder_meta(cfg: &BudgeterConfig, lease: &LeaseConfig, seed: u64) -> RecordingMeta {
    RecordingMeta {
        seed,
        config: describe_config(cfg, lease),
        role: "budgeter".to_string(),
    }
}

/// Replay controls.
#[derive(Debug, Clone, Default)]
pub struct ReplayOptions {
    /// Compare every re-emitted decision frame byte-for-byte against the
    /// recorded one; replay stops at the first divergence.
    pub verify: bool,
    /// Stop after replaying this pump (1-based, inclusive); the outcome
    /// snapshot then describes the budgeter's state at that pump.
    pub until: Option<u64>,
}

/// A point where the replay (or a second recording) stopped matching.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Pump during which the divergence occurred (0 = before any pump).
    pub pump: u64,
    /// Decision index within the pump ([`replay`]) or event index within
    /// the recording ([`diff_recordings`]).
    pub index: usize,
    /// What the recording said happened.
    pub expected: String,
    /// What the replay (or the other recording) produced instead.
    pub actual: String,
}

/// What a replay pass established.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Control passes re-executed.
    pub pumps_replayed: u64,
    /// Decision frames compared (verify) or captured (plain replay).
    pub decisions_checked: u64,
    /// First mismatch between recorded and recomputed decisions, if any.
    pub first_divergence: Option<Divergence>,
    /// Invariant-auditor violations flagged across the replayed pumps.
    pub invariant_violations: u64,
    /// Virtual duration of the recording (last event timestamp), seconds.
    pub recorded_wall_s: f64,
    /// Budgeter state at the stop point (`--until` or end of recording).
    pub snapshot: StatusSnapshot,
}

/// First-divergence comparison of two recordings.
#[derive(Debug, Clone, Default)]
pub struct RecordingDiff {
    /// Header-level differences (seed, config, build) — informational.
    pub notes: Vec<String>,
    /// First event at which the streams disagree (timestamps ignored).
    pub first_divergence: Option<Divergence>,
    /// Event count of the first recording.
    pub events_a: usize,
    /// Event count of the second recording.
    pub events_b: usize,
}

/// Reconstruct the recorded budgeter and drive it through the recording.
///
/// The recording must be a genesis (`segment` 0) budgeter-role segment:
/// a rotation continuation has lost the state that preceded it, and an
/// endpoint-side recording has no budgeter to reconstruct.
pub fn replay(rec: &Recording, opts: &ReplayOptions) -> Result<ReplayOutcome> {
    if rec.header.role != "budgeter" {
        return Err(AnorError::config(format!(
            "cannot replay a `{}`-role recording; only budgeter recordings \
             carry reconstructible state",
            rec.header.role
        )));
    }
    if rec.header.segment != 0 {
        return Err(AnorError::config(format!(
            "recording is rotation segment {}; replay needs the genesis segment \
             (state before a rotation is not recoverable)",
            rec.header.segment
        )));
    }
    let Some((cfg, lease)) = parse_config(&rec.header.config) else {
        return Err(AnorError::config(format!(
            "recorded config `{}` is not parseable by this build \
             (recorded by {} {})",
            rec.header.config, rec.header.build_version, rec.header.git_hash
        )));
    };
    let (mut budgeter, _addr) = ClusterBudgeter::builder(cfg).lease(lease).bind()?;
    budgeter.replay_begin();

    let mut outcome = ReplayOutcome {
        pumps_replayed: 0,
        decisions_checked: 0,
        first_divergence: None,
        invariant_violations: 0,
        recorded_wall_s: rec
            .events
            .last()
            .map_or(0.0, |e| e.ts_nanos as f64 / 1_000_000_000.0),
        snapshot: StatusSnapshot::default(),
    };
    // Events between two PumpStarts belong to the *first* of them (the
    // pump was running when they were recorded), so each pump executes
    // when its successor begins — by then all of its injections have
    // been applied, exactly as live ingest had before lease/decide.
    let mut pending: Option<(u64, f64)> = None;
    let mut expected: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut stopped = false;
    for ev in &rec.events {
        match &ev.event {
            RecEvent::PumpStart { pump, budget } => {
                if let Some((p, bud)) = pending.take() {
                    run_pump(&mut budgeter, p, bud, &mut expected, opts, &mut outcome)?;
                    if outcome.first_divergence.is_some() || opts.until.is_some_and(|u| p >= u) {
                        stopped = true;
                    }
                }
                if stopped {
                    break;
                }
                pending = Some((*pump, *budget));
            }
            RecEvent::ConnOpen { conn } => budgeter.replay_conn_open(*conn as usize),
            RecEvent::ConnClosed { conn } => budgeter.replay_conn_closed(*conn as usize),
            RecEvent::ConnQuarantined { conn } => {
                budgeter.replay_conn_quarantined(*conn as usize);
            }
            RecEvent::FrameIn { conn, body } => {
                let _poisoned =
                    budgeter.replay_inject(*conn as usize, bytes::Bytes::from(body.clone()))?;
                // The recording carries the resulting quarantine/close as
                // their own events; nothing more to do here.
            }
            RecEvent::DecisionTx { conn, frame } => expected.push((*conn, frame.clone())),
            RecEvent::CauseMinted { cause } => budgeter.replay_feed_cause(*cause),
            RecEvent::LeaseExpired { .. } | RecEvent::LeaseRestored { .. } => {
                // Informational: replayed tick_leases re-derives both.
            }
        }
    }
    if let Some((p, bud)) = pending.take() {
        if !stopped {
            run_pump(&mut budgeter, p, bud, &mut expected, opts, &mut outcome)?;
        }
    }
    outcome.invariant_violations = budgeter.invariant_violations();
    outcome.snapshot = budgeter.status_snapshot();
    Ok(outcome)
}

/// Execute one replayed pump and (in verify mode) compare its captured
/// decision frames against the recorded ones, in emission order.
fn run_pump(
    budgeter: &mut ClusterBudgeter,
    pump_no: u64,
    budget: f64,
    expected: &mut Vec<(u32, Vec<u8>)>,
    opts: &ReplayOptions,
    outcome: &mut ReplayOutcome,
) -> Result<()> {
    budgeter.pump(Watts(budget))?;
    outcome.pumps_replayed += 1;
    let actual = budgeter.replay_take_out();
    if !opts.verify {
        outcome.decisions_checked += actual.len() as u64;
        expected.clear();
        return Ok(());
    }
    if budgeter.pump_count() != pump_no && outcome.first_divergence.is_none() {
        outcome.first_divergence = Some(Divergence {
            pump: pump_no,
            index: 0,
            expected: format!("pump counter {pump_no}"),
            actual: format!(
                "pump counter {} (recording did not start at pump 1?)",
                budgeter.pump_count()
            ),
        });
    }
    let n = expected.len().max(actual.len());
    for i in 0..n {
        if outcome.first_divergence.is_some() {
            break;
        }
        match (expected.get(i), actual.get(i)) {
            (Some((ec, ef)), Some((ac, af))) => {
                if *ec as usize != *ac || ef.as_slice() != af.as_ref() {
                    outcome.first_divergence = Some(Divergence {
                        pump: pump_no,
                        index: i,
                        expected: describe_frame(*ec, ef),
                        actual: describe_frame(*ac as u32, af),
                    });
                } else {
                    outcome.decisions_checked += 1;
                }
            }
            (Some((ec, ef)), None) => {
                outcome.first_divergence = Some(Divergence {
                    pump: pump_no,
                    index: i,
                    expected: describe_frame(*ec, ef),
                    actual: "<no frame emitted>".to_string(),
                });
            }
            (None, Some((ac, af))) => {
                outcome.first_divergence = Some(Divergence {
                    pump: pump_no,
                    index: i,
                    expected: "<no frame recorded>".to_string(),
                    actual: describe_frame(*ac as u32, af),
                });
            }
            (None, None) => break,
        }
    }
    expected.clear();
    Ok(())
}

/// Compare two recordings event-by-event (timestamps ignored) and report
/// the first divergence. Two same-seed runs of a deterministic harness
/// must diff clean; a chaos run diffed against a clean run pinpoints the
/// first pump the faults perturbed.
pub fn diff_recordings(a: &Recording, b: &Recording) -> RecordingDiff {
    let mut diff = RecordingDiff {
        events_a: a.events.len(),
        events_b: b.events.len(),
        ..RecordingDiff::default()
    };
    if a.header.seed != b.header.seed {
        diff.notes
            .push(format!("seed: {} vs {}", a.header.seed, b.header.seed));
    }
    if a.header.config != b.header.config {
        diff.notes.push(format!(
            "config: `{}` vs `{}`",
            a.header.config, b.header.config
        ));
    }
    if a.header.build_version != b.header.build_version || a.header.git_hash != b.header.git_hash {
        diff.notes.push(format!(
            "build: {} ({}) vs {} ({})",
            a.header.build_version, a.header.git_hash, b.header.build_version, b.header.git_hash
        ));
    }
    let mut pump = 0u64;
    let n = a.events.len().max(b.events.len());
    for i in 0..n {
        match (a.events.get(i), b.events.get(i)) {
            (Some(ea), Some(eb)) => {
                if let RecEvent::PumpStart { pump: p, .. } = ea.event {
                    pump = p;
                }
                if ea.event != eb.event {
                    diff.first_divergence = Some(Divergence {
                        pump,
                        index: i,
                        expected: describe_event(&ea.event),
                        actual: describe_event(&eb.event),
                    });
                    break;
                }
            }
            (Some(ea), None) => {
                diff.first_divergence = Some(Divergence {
                    pump,
                    index: i,
                    expected: describe_event(&ea.event),
                    actual: "<end of recording>".to_string(),
                });
                break;
            }
            (None, Some(eb)) => {
                diff.first_divergence = Some(Divergence {
                    pump,
                    index: i,
                    expected: "<end of recording>".to_string(),
                    actual: describe_event(&eb.event),
                });
                break;
            }
            (None, None) => break,
        }
    }
    diff
}

/// Human-readable one-liner for an outbound frame body: decoded message
/// when the codec accepts it, byte count either way.
fn describe_frame(conn: u32, body: &[u8]) -> String {
    match ClusterToJob::decode(bytes::Bytes::copy_from_slice(body)) {
        Ok(msg) => format!("conn {conn}, {} byte(s): {msg:?}", body.len()),
        Err(_) => format!(
            "conn {conn}, {} byte(s): <undecodable> {}",
            body.len(),
            hex_prefix(body)
        ),
    }
}

/// Human-readable one-liner for a recorded event.
fn describe_event(ev: &RecEvent) -> String {
    match ev {
        RecEvent::PumpStart { pump, budget } => format!("PumpStart pump={pump} budget={budget}"),
        RecEvent::FrameIn { conn, body } => format!(
            "FrameIn conn={conn} {} byte(s) {}",
            body.len(),
            hex_prefix(body)
        ),
        RecEvent::ConnOpen { conn } => format!("ConnOpen conn={conn}"),
        RecEvent::ConnClosed { conn } => format!("ConnClosed conn={conn}"),
        RecEvent::ConnQuarantined { conn } => format!("ConnQuarantined conn={conn}"),
        RecEvent::DecisionTx { conn, frame } => {
            format!("DecisionTx {}", describe_frame(*conn, frame))
        }
        RecEvent::LeaseExpired { job, watts } => format!("LeaseExpired job={job} watts={watts}"),
        RecEvent::LeaseRestored { job, watts } => {
            format!("LeaseRestored job={job} watts={watts}")
        }
        RecEvent::CauseMinted { cause } => format!("CauseMinted cause={cause}"),
    }
}

fn hex_prefix(body: &[u8]) -> String {
    let mut s = String::with_capacity(2 * body.len().min(12) + 1);
    for b in body.iter().take(12) {
        let _ = std::fmt::Write::write_fmt(&mut s, format_args!("{b:02x}"));
    }
    if body.len() > 12 {
        s.push('…');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{FramedStream, StreamOptions};
    use anor_telemetry::{read_recording, FlightRecorder, RecordedEvent, RecordingHeader};
    use anor_types::msg::JobToCluster;
    use anor_types::JobId;
    use std::net::TcpStream;

    #[test]
    fn config_string_round_trips() {
        let mut cfg = BudgeterConfig::new(BudgetPolicy::EvenPower, true);
        cfg.unknown_default = UnknownDefault::MostSensitive;
        cfg.recap_threshold = Watts(2.5);
        let lease = LeaseConfig::after_misses(17);
        let s = describe_config(&cfg, &lease);
        let (cfg2, lease2) = parse_config(&s).unwrap();
        assert_eq!(cfg2.policy, BudgetPolicy::EvenPower);
        assert!(cfg2.feedback);
        assert_eq!(cfg2.unknown_default, UnknownDefault::MostSensitive);
        assert_eq!(cfg2.recap_threshold, Watts(2.5));
        assert_eq!(lease2, lease);
        // Unknown keys are tolerated, malformed known keys are not.
        assert!(parse_config(&format!("{s} future_knob=7")).is_some());
        assert!(parse_config("policy=quantum").is_none());
        assert!(parse_config("feedback=sometimes").is_none());
    }

    fn genesis_header(role: &str, segment: u32) -> RecordingHeader {
        let cfg = BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false);
        let config = describe_config(&cfg, &LeaseConfig::default());
        RecordingHeader {
            version: 1,
            seed: 7,
            config_digest: anor_telemetry::config_digest(&config),
            segment,
            build_version: "test".to_string(),
            git_hash: "unknown".to_string(),
            config,
            role: role.to_string(),
        }
    }

    #[test]
    fn replay_refuses_endpoint_and_rotated_recordings() {
        let empty = |header| Recording {
            header,
            events: Vec::new(),
            unknown_skipped: 0,
        };
        let opts = ReplayOptions::default();
        assert!(replay(&empty(genesis_header("endpoint", 0)), &opts).is_err());
        assert!(replay(&empty(genesis_header("budgeter", 3)), &opts).is_err());
        assert!(replay(&empty(genesis_header("budgeter", 0)), &opts).is_ok());
    }

    #[test]
    fn recorded_live_session_replays_byte_identically() {
        let dir = std::env::temp_dir().join(format!("anor-replay-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.rec");

        let cfg = BudgeterConfig::new(BudgetPolicy::EvenSlowdown, false);
        let lease = LeaseConfig::after_misses(3);
        let recorder = FlightRecorder::create(&path, recorder_meta(&cfg, &lease, 42)).unwrap();
        let (mut b, addr) = ClusterBudgeter::builder(cfg)
            .lease(lease)
            .recorder(recorder.clone())
            .bind()
            .unwrap();
        let mut client =
            FramedStream::new(TcpStream::connect(addr).unwrap(), StreamOptions::default()).unwrap();
        client
            .send(
                JobToCluster::Hello {
                    job: JobId(1),
                    type_name: "bt.D.81".into(),
                    nodes: 2,
                }
                .encode(),
            )
            .unwrap();
        for _ in 0..200 {
            b.pump(Watts(400.0)).unwrap();
            if b.job_caps().iter().any(|(_, c)| c.is_some()) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(b.job_caps().iter().any(|(_, c)| c.is_some()));
        // Drop the client mid-run so the recording carries a disconnect
        // and a full lease expiry as well.
        drop(client);
        for _ in 0..20 {
            b.pump(Watts(400.0)).unwrap();
        }
        recorder.flush().unwrap();
        let live_pumps = b.pump_count();
        drop(b);

        let rec = read_recording(&path).unwrap();
        let out = replay(
            &rec,
            &ReplayOptions {
                verify: true,
                until: None,
            },
        )
        .unwrap();
        assert_eq!(out.first_divergence, None);
        assert_eq!(out.pumps_replayed, live_pumps);
        assert!(out.decisions_checked >= 1, "{out:?}");
        assert_eq!(out.invariant_violations, 0);
        assert_eq!(out.snapshot.pumps, live_pumps);

        // --until stops early and snapshots that pump.
        let early = replay(
            &rec,
            &ReplayOptions {
                verify: true,
                until: Some(3),
            },
        )
        .unwrap();
        assert_eq!(early.snapshot.pumps, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn diff_reports_first_divergence_and_clean_match() {
        let ev = |event| RecordedEvent { ts_nanos: 0, event };
        let a = Recording {
            header: genesis_header("budgeter", 0),
            events: vec![
                ev(RecEvent::PumpStart {
                    pump: 1,
                    budget: 100.0,
                }),
                ev(RecEvent::ConnOpen { conn: 0 }),
                ev(RecEvent::CauseMinted { cause: 4 }),
            ],
            unknown_skipped: 0,
        };
        // Identical streams (differing timestamps) diff clean.
        let mut same = a.clone();
        for e in &mut same.events {
            e.ts_nanos += 1_000;
        }
        assert_eq!(diff_recordings(&a, &same).first_divergence, None);
        // A perturbed event is pinned to its index and pump.
        let mut b = a.clone();
        b.events[1] = ev(RecEvent::ConnOpen { conn: 9 });
        let d = diff_recordings(&a, &b);
        let div = d.first_divergence.unwrap();
        assert_eq!(div.index, 1);
        assert_eq!(div.pump, 1);
        assert!(div.expected.contains("conn=0"), "{div:?}");
        assert!(div.actual.contains("conn=9"), "{div:?}");
        // A truncated stream diverges at the missing tail.
        let mut short = a.clone();
        short.events.pop();
        let d = diff_recordings(&a, &short);
        assert_eq!(d.first_divergence.unwrap().index, 2);
        assert_eq!(d.events_a, 3);
        assert_eq!(d.events_b, 2);
    }
}
