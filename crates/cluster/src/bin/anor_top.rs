//! `anor-top` — a refreshing terminal dashboard over a live `anord`.
//!
//! Polls the daemon's introspection endpoint (`anord --status-addr`) and
//! renders the budgeter's pool, lease, session and auditor state in
//! place, `top`-style:
//!
//! ```text
//! anor-top --addr 127.0.0.1:7070
//! anor-top --addr 127.0.0.1:7070 --interval-ms 250 --iterations 40
//! anor-top --addr 127.0.0.1:7070 --fetch /health
//! ```
//!
//! `--fetch PATH` is the scripting mode: one GET, body to stdout, exit
//! status 1 on a non-200 response or an empty body. CI uses it as a
//! `curl` substitute for smoke-checking `/health` and `/metrics`.
//!
//! The dashboard shows the daemon's build info, a pump-phase latency
//! pane (where each control pass spends its time) and the per-job table.
//! If the endpoint drops mid-poll, the last good snapshot stays on
//! screen under a "disconnected, retrying" banner until the daemon
//! answers again.

use anor_cluster::status::{parse_json, Json};
use anor_cluster::Args;
use anor_telemetry::ops::http_get;
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("anor-top: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env()?;
    let addr = args.required("addr")?.to_string();
    let timeout = Duration::from_millis(args.get_or("timeout-ms", 2000)?);

    if let Some(path) = args.get("fetch") {
        let (code, body) = http_get(&addr, path, timeout)?;
        print!("{body}");
        if code != 200 || body.is_empty() {
            return Err(format!("GET {path}: status {code}, {} byte body", body.len()).into());
        }
        return Ok(());
    }

    let interval = Duration::from_millis(args.get_or("interval-ms", 1000)?);
    let iterations: u64 = args.get_or("iterations", 0)?;
    let mut done = 0u64;
    // The last successfully rendered frame: when the endpoint drops
    // mid-poll the dashboard keeps showing it under a "disconnected"
    // banner instead of flashing blank and losing the operator's state.
    let mut last_good: Option<String> = None;
    // Clear once, then repaint from the home position each poll so the
    // dashboard refreshes in place.
    print!("\x1b[2J");
    loop {
        let outcome = match http_get(&addr, "/status", timeout) {
            Ok((200, body)) => match parse_json(&body) {
                Ok(v) => Ok(render(&v)),
                Err(e) => Err(format!("malformed /status JSON: {e}")),
            },
            Ok((code, _)) => Err(format!("GET /status returned {code}")),
            Err(e) => Err(format!("{addr} unreachable: {e}")),
        };
        let frame = match outcome {
            Ok(frame) => {
                last_good = Some(frame.clone());
                frame
            }
            Err(reason) => match &last_good {
                Some(stale) => format!(
                    "anor-top: disconnected, retrying — {reason}\n(showing last good snapshot)\n{stale}"
                ),
                None => format!("anor-top: disconnected, retrying — {reason}\n"),
            },
        };
        // Home the cursor, repaint, clear anything left from the
        // previous (possibly taller) frame.
        print!("\x1b[H{frame}\x1b[0J");
        use std::io::Write as _;
        std::io::stdout().flush()?;
        done += 1;
        if iterations > 0 && done >= iterations {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn u(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn f(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn render(v: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let violations = u(v, "invariant_violations");
    let verdict = if violations == 0 { "ok" } else { "VIOLATIONS" };
    let build = v.get("build_version").and_then(Json::as_str).unwrap_or("?");
    let git = v.get("git_hash").and_then(Json::as_str).unwrap_or("?");
    let _ = writeln!(
        out,
        "anord {build} ({git})  budget {:7.1} W   allocated {:7.1} W   reclaimed {:7.1} W   audit {verdict} ({violations})",
        f(v, "budget"),
        f(v, "allocated_watts"),
        f(v, "reclaimed_watts"),
    );
    let _ = writeln!(
        out,
        "pumps {:>8}   active {:>3}   conns {:>3}   accepted {:>4}   completed {:>4}",
        u(v, "pumps"),
        u(v, "active_jobs"),
        u(v, "conns_open"),
        u(v, "accepted"),
        u(v, "completed"),
    );
    let _ = writeln!(
        out,
        "pump p50 {:>9.6}s  p90 {:>9.6}s  p99 {:>9.6}s   ring {:>5}   traced {:>7}   postmortems {}",
        f(v, "pump_p50"),
        f(v, "pump_p90"),
        f(v, "pump_p99"),
        u(v, "ring_depth"),
        u(v, "trace_recorded"),
        u(v, "postmortems"),
    );
    // Pump-phase profile: where each control pass spends its time.
    let phases = v.get("phases").and_then(Json::as_array).unwrap_or(&[]);
    if !phases.is_empty() {
        let _ = writeln!(
            out,
            "{:>16} {:>12} {:>12} {:>12}",
            "PHASE", "p50 s", "p90 s", "p99 s"
        );
        for p in phases {
            let _ = writeln!(
                out,
                "{:>16} {:>12.6} {:>12.6} {:>12.6}",
                p.get("phase").and_then(Json::as_str).unwrap_or("?"),
                f(p, "p50"),
                f(p, "p90"),
                f(p, "p99"),
            );
        }
    }
    let jobs = v.get("jobs").and_then(Json::as_array).unwrap_or(&[]);
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>7} {:>9} {:>6} {:>8} {:>7} {:>10} {:>5}",
        "JOB", "STATE", "MISSED", "CAP W", "NODES", "SAMPLES", "MODELS", "RECLAIMED", "DONE"
    );
    for j in jobs {
        let cap = match j.get("cap").and_then(Json::as_f64) {
            Some(c) => format!("{c:.1}"),
            None => "-".to_string(),
        };
        let reclaimed = match j.get("reclaimed").and_then(Json::as_f64) {
            Some(w) => format!("{w:.1}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>7} {:>9} {:>6} {:>8} {:>7} {:>10} {:>5}",
            u(j, "job"),
            j.get("state").and_then(Json::as_str).unwrap_or("?"),
            u(j, "missed_pumps"),
            cap,
            u(j, "nodes"),
            u(j, "samples"),
            u(j, "models"),
            reclaimed,
            if j.get("done").and_then(Json::as_bool).unwrap_or(false) {
                "yes"
            } else {
                "no"
            },
        );
    }
    if jobs.is_empty() {
        let _ = writeln!(out, "  (no jobs registered)");
    }
    out
}
