//! `anor-replay` — offline replay, verification and diffing of budgeter
//! flight recordings.
//!
//! ```text
//! anor-replay --rec run/anord.rec                 # replay, print summary
//! anor-replay --rec run/anord.rec --verify        # byte-exact decision check
//! anor-replay --rec a.rec --diff b.rec            # first-divergence report
//! anor-replay --rec run/anord.rec --until 40      # stop at pump 40, dump JSON
//! ```
//!
//! `--rec` accepts a recording file or a directory containing exactly one
//! `.rec` file (the `--record <dir>` layout of `anord` and the figure
//! runners). Replay reconstructs the budgeter from the recording header's
//! config string and re-runs every control pass through the real decode,
//! lease and budget code paths under a virtual clock; the continuous
//! invariant auditor runs on every replayed pump exactly as it does live.
//!
//! Exit status: 0 on success; 1 when `--verify` finds a divergence or any
//! invariant violation, or when `--diff` finds the recordings diverging.

use anor_cluster::{diff_recordings, replay, Args, ReplayOptions};
use anor_telemetry::read_recording;
use std::path::PathBuf;

fn main() {
    match run() {
        Ok(clean) => std::process::exit(if clean { 0 } else { 1 }),
        Err(e) => {
            eprintln!("anor-replay: {e}");
            std::process::exit(2);
        }
    }
}

/// Locate the recording: a `.rec` file directly, or the single `.rec`
/// inside a `--record` output directory.
fn resolve_recording(path: &str) -> Result<PathBuf, String> {
    let p = PathBuf::from(path);
    if !p.is_dir() {
        return Ok(p);
    }
    let entries = std::fs::read_dir(&p).map_err(|e| format!("{}: {e}", p.display()))?;
    let mut recs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|q| q.extension().is_some_and(|x| x == "rec"))
        .collect();
    recs.sort();
    match recs.len() {
        0 => Err(format!("no .rec file in {}", p.display())),
        1 => Ok(recs.swap_remove(0)),
        n => Err(format!(
            "{n} .rec files in {}; pass one explicitly (first: {})",
            p.display(),
            recs.first()
                .map_or_else(String::new, |q| q.display().to_string()),
        )),
    }
}

fn run() -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::from_env()?;
    let rec_path = resolve_recording(args.required("rec")?)?;
    let rec = read_recording(&rec_path)?;
    println!(
        "anor-replay: {} — role {}, seed {}, segment {}, {} event(s), built by {} ({})",
        rec_path.display(),
        rec.header.role,
        rec.header.seed,
        rec.header.segment,
        rec.events.len(),
        rec.header.build_version,
        rec.header.git_hash,
    );
    if rec.unknown_skipped > 0 {
        println!(
            "anor-replay: skipped {} record(s) with unknown tags (newer writer?)",
            rec.unknown_skipped
        );
    }

    if let Some(other) = args.get("diff") {
        let other_path = resolve_recording(other)?;
        let second = read_recording(&other_path)?;
        let d = diff_recordings(&rec, &second);
        for note in &d.notes {
            println!("anor-replay: header differs — {note}");
        }
        return match d.first_divergence {
            None => {
                println!(
                    "anor-replay: no divergence across {} event(s)",
                    d.events_a.min(d.events_b)
                );
                Ok(true)
            }
            Some(div) => {
                println!(
                    "anor-replay: FIRST DIVERGENCE at event {} (pump {}):",
                    div.index, div.pump
                );
                println!("  {}:\n    {}", rec_path.display(), div.expected);
                println!("  {}:\n    {}", other_path.display(), div.actual);
                Ok(false)
            }
        };
    }

    let opts = ReplayOptions {
        verify: args.flag("verify"),
        until: match args.get("until") {
            Some(v) => Some(
                v.parse::<u64>()
                    .map_err(|_| format!("--until: bad pump `{v}`"))?,
            ),
            None => None,
        },
    };
    let out = replay(&rec, &opts)?;
    println!(
        "anor-replay: replayed {} pump(s), {} decision(s) {}, {} invariant violation(s), \
         recorded wall time {:.3}s",
        out.pumps_replayed,
        out.decisions_checked,
        if opts.verify { "verified" } else { "captured" },
        out.invariant_violations,
        out.recorded_wall_s,
    );
    if opts.until.is_some() {
        // The --until contract: dump the reconstructed state as JSON.
        println!("{}", out.snapshot.to_json());
    }
    if let Some(div) = &out.first_divergence {
        println!(
            "anor-replay: VERIFY FAILED at pump {} decision {}:",
            div.pump, div.index
        );
        println!("  recorded: {}", div.expected);
        println!("  replayed: {}", div.actual);
        return Ok(false);
    }
    if opts.verify && out.invariant_violations > 0 {
        println!(
            "anor-replay: VERIFY FAILED — {} invariant violation(s) during replay",
            out.invariant_violations
        );
        return Ok(false);
    }
    if opts.verify {
        println!("anor-replay: verify OK — decisions byte-identical, zero invariant violations");
    }
    Ok(true)
}
