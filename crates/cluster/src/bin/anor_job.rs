//! `anor-job` — a standalone job-tier process.
//!
//! Runs one job end-to-end: simulated compute nodes under a GEOPM
//! runtime, the per-job power modeler, and the endpoint process that
//! connects to `anord` over TCP (Fig. 2's compute-node column). Virtual
//! time is paced at `--speedup`× real time so hour-long benchmarks replay
//! in seconds while the daemon interaction happens over real sockets.
//!
//! ```text
//! anor-job --connect 127.0.0.1:5533 --job-id 1 --type bt.D.81 \
//!          --announce is.D.32 --seed 3 --speedup 200
//! ```
//!
//! On completion, prints the job's GEOPM-style report to stdout. With
//! `--telemetry <dir>`, events stream to `<dir>/events.jsonl` and a
//! Prometheus exposition plus summary table are written on exit. With
//! `--trace <dir>`, cap receipts, policy/MSR writes and sample sends are
//! recorded to `<dir>/trace.jsonl` for `anor-trace`. With
//! `--faults drop@17,corrupt@42` (and optional `--fault-seed N`), a
//! seeded chaos schedule is injected into the endpoint's send path; the
//! endpoint reconnects with backoff and resumes its session. With
//! `--record <dir>`, the endpoint's wire traffic (inbound caps, outbound
//! samples/models, session transitions) is flight-recorded to
//! `<dir>/job-<id>.rec` for inspection with `anor-replay`.

use anor_cluster::{Args, JobEndpoint};
use anor_geopm::JobRuntime;
use anor_model::{ModelerConfig, PowerModeler};
use anor_platform::Node;
use anor_telemetry::{FlightRecorder, RecordingMeta, Telemetry, Tracer};
use anor_types::{standard_catalog, JobId, NodeId, Seconds};
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("anor-job: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env()?;
    let connect: std::net::SocketAddr = args.required("connect")?.parse()?;
    let job = JobId(args.get_or("job-id", 0u64)?);
    let type_name = args.required("type")?.to_string();
    let announced = args.get("announce").unwrap_or(&type_name).to_string();
    let seed: u64 = args.get_or("seed", 1)?;
    let speedup: f64 = args.get_or("speedup", 200.0)?;
    let tick_ms: u64 = args.get_or("tick-ms", 5)?;
    let dither = !args.flag("no-dither");

    let catalog = standard_catalog();
    let spec = catalog
        .find(&type_name)
        .ok_or_else(|| format!("unknown job type `{type_name}`"))?
        .clone();
    let nodes_wanted: u32 = args.get_or("nodes", spec.nodes)?;
    let believed = catalog.find(&announced).unwrap_or(&spec).clone();

    let telemetry = match args.get("telemetry") {
        Some(dir) => Telemetry::to_dir(dir)?,
        None => Telemetry::new(),
    };
    let nodes: Vec<Node> = (0..nodes_wanted).map(|i| Node::paper(NodeId(i))).collect();
    let (mut runtime, modeler_side) = JobRuntime::launch(job, spec.clone(), nodes, seed)?;
    runtime.attach_telemetry(&telemetry);
    let mut mcfg = ModelerConfig::paper();
    if !dither {
        mcfg.dither_fraction = 0.0;
    }
    let mut modeler = PowerModeler::with_precharacterized(mcfg, believed.epoch_curve());
    modeler.attach_telemetry(&telemetry);
    let tracer = match args.get("trace") {
        Some(dir) => Some(Tracer::to_dir(dir)?),
        None => None,
    };
    let mut builder = JobEndpoint::builder(
        connect,
        job,
        &announced,
        nodes_wanted,
        modeler_side,
        modeler,
    )
    .telemetry(telemetry.clone());
    if let Some(plan) = args.fault_plan()? {
        builder = builder.faults(plan);
    }
    if let Some(t) = &tracer {
        builder = builder.tracer(t);
    }
    // --record <dir>: flight-record the endpoint's wire traffic into
    // <dir>/job-<id>.rec (role "endpoint" — inspectable, not replayable).
    let mut recorder = None;
    if let Some(dir) = args.get("record") {
        let meta = RecordingMeta {
            seed,
            config: format!(
                "job={} type={type_name} announced={announced} nodes={nodes_wanted}",
                job.0
            ),
            role: "endpoint".to_string(),
        };
        let path = std::path::Path::new(dir).join(format!("job-{}.rec", job.0));
        let rec = FlightRecorder::create(path, meta)?;
        builder = builder.recorder(rec.clone());
        recorder = Some(rec);
    }
    let mut endpoint = builder.connect()?;
    if let Some(t) = &tracer {
        runtime.attach_tracer(t);
    }

    let dt = Seconds(0.5);
    let mut now = Seconds::ZERO;
    let real_tick = Duration::from_millis(tick_ms);
    let virtual_per_tick = speedup * real_tick.as_secs_f64();
    loop {
        // Advance virtual time in dt steps to match the wall tick.
        let mut advanced = 0.0;
        let mut done = runtime.is_done();
        while advanced < virtual_per_tick && !done {
            done = runtime.step(dt)?;
            now += dt;
            advanced += dt.value();
            endpoint.pump(now)?;
        }
        if done || endpoint.shutdown_requested() {
            break;
        }
        std::thread::sleep(real_tick);
    }
    endpoint.finish(runtime.elapsed())?;
    print!("{}", runtime.report().render());
    if telemetry.dir().is_some() {
        let summary = telemetry.write_artifacts()?;
        println!("{summary}");
    }
    if let Some(t) = &tracer {
        t.flush()?;
        if let Some(dir) = t.dir() {
            println!(
                "anor-job: trace written to {}",
                dir.join("trace.jsonl").display()
            );
        }
    }
    if let Some(rec) = &recorder {
        rec.flush()?;
        println!(
            "anor-job: recording written to {} ({} event(s), {} dropped)",
            rec.path().display(),
            rec.written(),
            rec.dropped()
        );
    }
    Ok(())
}
