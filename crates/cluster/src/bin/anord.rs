//! `anord` — the standalone ANOR cluster power budgeter daemon.
//!
//! The head-node process of Fig. 2: listens for job-tier endpoint
//! connections over TCP, reads power targets (a constant budget or a
//! time/watts ladder file, Section 4.1), and continuously redistributes
//! the busy-node power budget across connected jobs.
//!
//! ```text
//! anord --listen 127.0.0.1:0 --policy even-slowdown --feedback \
//!       --budget 840 --expect-jobs 2
//! anord --listen 127.0.0.1:5533 --targets targets.txt --duration-secs 3600
//! ```
//!
//! With `--telemetry <dir>`, events stream to `<dir>/events.jsonl` and a
//! Prometheus exposition plus summary table are written on exit. With
//! `--trace <dir>`, each rebalance decision and every cap/sample hop is
//! recorded to `<dir>/trace.jsonl` for `anor-trace`. With
//! `--faults drop@17,corrupt@42` (and optional `--fault-seed N`), a
//! seeded chaos schedule is injected into each accepted connection's
//! send path. With `--status-addr host:port`, a dependency-free HTTP
//! introspection endpoint serves `/metrics` (Prometheus text), `/health`
//! and `/status` (live JSON snapshot: sessions, leases, pool watts, pump
//! latency, auditor verdict) — poll it with `anor-top`. With
//! `--record <dir>` (and optional `--seed N` stamped into the header),
//! every inbound frame, connection/lease transition and emitted cap
//! decision is flight-recorded to `<dir>/anord.rec` for `anor-replay`.
//! With `--transport reactor` (plus optional `--shards N` and
//! `--queue-depth D`), the connection plane is the sharded non-blocking
//! reactor for thousands-of-endpoints fan-in; decisions are byte-
//! identical to the default blocking plane.
//!
//! Prints `anord listening on <addr>` once ready (machine-readable for
//! launchers, ditto `anord status on <addr>`), then a completion line
//! per job.

use anor_cluster::budgeter::{BudgeterConfig, ClusterBudgeter, LeaseConfig};
use anor_cluster::{Args, BudgetPolicy, StatusBoard, TransportKind};
use anor_telemetry::ops::{OpsServer, StatusProvider};
use anor_telemetry::{FlightRecorder, Telemetry, Tracer};
use anor_types::{Seconds, Watts};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn parse_policy(name: &str) -> Result<BudgetPolicy, String> {
    match name {
        "uniform" => Ok(BudgetPolicy::Uniform),
        "even-power" => Ok(BudgetPolicy::EvenPower),
        "even-slowdown" => Ok(BudgetPolicy::EvenSlowdown),
        other => Err(format!(
            "unknown policy `{other}` (use uniform | even-power | even-slowdown)"
        )),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("anord: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env()?;
    let listen = args.get("listen").unwrap_or("127.0.0.1:0");
    let policy = parse_policy(args.get("policy").unwrap_or("even-slowdown"))?;
    let feedback = args.flag("feedback");
    let tick_ms: u64 = args.get_or("tick-ms", 10)?;
    let expect_jobs: usize = args.get_or("expect-jobs", 0)?;
    let duration_secs: f64 = args.get_or("duration-secs", 0.0)?;
    // Power objective: a constant budget or a targets file ladder.
    let budget: f64 = args.get_or("budget", 0.0)?;
    let targets: Vec<(Seconds, Watts)> = match args.get("targets") {
        Some(path) => {
            let file = std::fs::File::open(path)?;
            anor_aqa::schedule::parse_power_targets(std::io::BufReader::new(file))?
        }
        None => Vec::new(),
    };
    if budget <= 0.0 && targets.is_empty() {
        return Err("need --budget WATTS or --targets FILE".into());
    }

    let telemetry = match args.get("telemetry") {
        Some(dir) => Telemetry::to_dir(dir)?,
        None => Telemetry::new(),
    };
    let tracer = match args.get("trace") {
        Some(dir) => Some(Tracer::to_dir(dir)?),
        None => None,
    };
    // Connection plane: --transport reactor --shards N --queue-depth D
    // runs the sharded reactor for high endpoint fan-in; the default
    // blocking plane polls sockets inline on the pump thread.
    let transport: TransportKind = args.get("transport").unwrap_or("blocking").parse()?;
    let shards: usize = args.get_or("shards", 2)?;
    let queue_depth: usize = args.get_or("queue-depth", 64)?;
    let cfg = BudgeterConfig::new(policy, feedback);
    let mut builder = ClusterBudgeter::builder(cfg.clone())
        .addr(listen)
        .telemetry(telemetry.clone())
        .transport(transport)
        .shards(shards)
        .conn_queue_depth(queue_depth);
    if let Some(t) = &tracer {
        builder = builder.tracer(t);
    }
    if let Some(plan) = args.fault_plan()? {
        builder = builder.faults(plan);
    }
    // --record <dir>: flight-record every inbound frame and emitted
    // decision into <dir>/anord.rec for `anor-replay`.
    let mut recorder = None;
    if let Some(dir) = args.get("record") {
        let seed: u64 = args.get_or("seed", 0)?;
        let meta = anor_cluster::recorder_meta(&cfg, &LeaseConfig::default(), seed);
        let rec = FlightRecorder::create(std::path::Path::new(dir).join("anord.rec"), meta)?;
        builder = builder.recorder(rec.clone());
        recorder = Some(rec);
    }
    // The live ops plane: --status-addr starts the introspection endpoint
    // (`/metrics`, `/health`, `/status`) and has the budgeter publish a
    // status snapshot each control pass.
    let mut ops = None;
    if let Some(status_addr) = args.get("status-addr") {
        let board = StatusBoard::new();
        builder = builder.status(board.clone());
        let provider: StatusProvider = Arc::new(move || board.render_json());
        ops = Some(OpsServer::bind(status_addr, telemetry.clone(), provider)?);
    }
    let (mut daemon, addr) = builder.bind()?;
    println!("anord listening on {addr}");
    if let Some(server) = &ops {
        println!("anord status on {}", server.local_addr());
    }
    std::io::stdout().flush()?;

    let start = Instant::now();
    let mut reported = 0usize;
    loop {
        let elapsed = start.elapsed().as_secs_f64();
        if duration_secs > 0.0 && elapsed >= duration_secs {
            break;
        }
        let target = if targets.is_empty() {
            Watts(budget)
        } else {
            // Piecewise-constant ladder relative to daemon start.
            targets
                .iter()
                .rev()
                .find(|(t, _)| t.value() <= elapsed)
                .map(|&(_, w)| w)
                .unwrap_or(targets[0].1)
        };
        daemon.pump(target)?;
        while reported < daemon.completed().len() {
            let (job, elapsed_s) = daemon.completed()[reported];
            println!("anord: {job} done after {elapsed_s:.1}");
            std::io::stdout().flush()?;
            reported += 1;
        }
        if expect_jobs > 0 && daemon.completed().len() >= expect_jobs {
            println!("anord: all {expect_jobs} expected jobs completed");
            break;
        }
        std::thread::sleep(Duration::from_millis(tick_ms));
    }
    if telemetry.dir().is_some() {
        let summary = telemetry.write_artifacts()?;
        println!("{summary}");
    }
    if let Some(t) = &tracer {
        t.flush()?;
        if let Some(dir) = t.dir() {
            println!(
                "anord: trace written to {}",
                dir.join("trace.jsonl").display()
            );
        }
    }
    if let Some(rec) = &recorder {
        rec.flush()?;
        println!(
            "anord: recording written to {} ({} event(s), {} dropped)",
            rec.path().display(),
            rec.written(),
            rec.dropped()
        );
    }
    Ok(())
}
