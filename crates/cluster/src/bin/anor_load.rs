//! `anor-load` — the synthetic-endpoint load harness for `anord`'s
//! connection plane.
//!
//! Spins up a real budgeter daemon (default: the sharded reactor) and
//! storms it with N scripted endpoints that register, stream samples,
//! absorb caps, and — per `--storms` — drop every socket at once and
//! resume. Reports sustained endpoint (re)connects per second, pump
//! latency percentiles, backpressure drops, and the continuous
//! invariant auditor's watts-conservation verdict.
//!
//! ```text
//! anor-load --endpoints 1000 --storms 2
//! anor-load --endpoints 256 --storms 3 --faults drop@17,corrupt@42
//! anor-load --endpoints 64 --transport blocking
//! ```
//!
//! Exits non-zero when any stage stalls, an endpoint fails to hold its
//! session, or the auditor flags a violation — so CI can gate on it.

use anor_cluster::budgeter::BudgetPolicy;
use anor_cluster::transport::{TransportKind, TransportOptions};
use anor_cluster::{run_load, Args, LoadConfig};
use anor_types::Watts;

fn parse_policy(name: &str) -> Result<BudgetPolicy, String> {
    match name {
        "uniform" => Ok(BudgetPolicy::Uniform),
        "even-power" => Ok(BudgetPolicy::EvenPower),
        "even-slowdown" => Ok(BudgetPolicy::EvenSlowdown),
        other => Err(format!(
            "unknown policy `{other}` (use uniform | even-power | even-slowdown)"
        )),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("anor-load: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env()?;
    let kind: TransportKind = args.get("transport").unwrap_or("reactor").parse()?;
    let cfg = LoadConfig {
        endpoints: args.get_or("endpoints", 64)?,
        storms: args.get_or("storms", 1)?,
        faults: args.fault_plan()?,
        budget: Watts(args.get_or("budget", 0.0)?),
        policy: parse_policy(args.get("policy").unwrap_or("uniform"))?,
        transport: TransportOptions {
            kind,
            shards: args.get_or("shards", 2)?,
            conn_queue_depth: args.get_or("queue-depth", 64)?,
        },
        drivers: args.get_or("drivers", 2)?,
        ..LoadConfig::default()
    };
    let report = run_load(&cfg)?;
    println!("{report}");
    if !report.ok() {
        return Err(
            "load run failed (stalled stage, lost endpoint, or invariant violation)".into(),
        );
    }
    Ok(())
}
