#![warn(missing_docs)]
// Hot-path crates must not panic while a power cap is in force: clippy
// enforces what `anor-lint` checks structurally. Test code is exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! # anor-cluster
//!
//! The end-to-end ANOR implementation for demand response (paper
//! Section 4, Fig. 2): "A single cluster-tier process communicates over
//! TCP with one job-tier power-modeling process per job, sending down
//! power budgets and receiving power models. The power-modeling process
//! sends power budgets to one GEOPM agent instance per job, over shared
//! memory, and receives performance metrics back from the agent."
//!
//! * [`codec`] — non-blocking framed TCP streams over the
//!   `anor-types::msg` wire protocol;
//! * [`budgeter`] — the head-node cluster power budgeter daemon: accepts
//!   job connections, tracks believed job views, redistributes the busy
//!   power budget on every control pass, and (when feedback is enabled)
//!   folds received `Model` messages back into its views;
//! * [`endpoint`] — the per-job job-tier process bridging the GEOPM
//!   endpoint to the budgeter over TCP, running the power modeler;
//! * [`session`] — the fault-tolerance layer: deterministic reconnect
//!   backoff ([`RetryPolicy`]), session state ([`SessionState`]), and
//!   the seeded chaos-injection schedule ([`FaultPlan`]);
//! * [`status`] — the live ops surface: the budgeter publishes a
//!   [`StatusSnapshot`] each control pass into a [`StatusBoard`] that the
//!   introspection endpoint serves as `GET /status` JSON;
//! * [`replay`] — offline reconstruction of a budgeter from a flight
//!   recording, with byte-exact decision verification
//!   (`anor-replay --verify`) and first-divergence diffing;
//! * [`emulator`] — a 16-node emulated cluster harness that wires
//!   simulated nodes, GEOPM runtimes, endpoint processes and the budgeter
//!   daemon together under a virtual clock (the real-hardware
//!   substitution documented in DESIGN.md);
//! * [`transport`] — the connection plane behind the budgeter: a
//!   [`Transport`] seam with the original blocking sweep
//!   ([`BlockingTransport`]) and a sharded non-blocking reactor
//!   ([`ReactorTransport`]) whose recorded decision streams are
//!   byte-identical at any shard count;
//! * [`load`] — the `anor-load` synthetic-endpoint harness: N endpoints
//!   × reconnect storms × fault specs against a live budgeter.

pub mod budgeter;
pub mod cli;
pub mod codec;
pub mod emulator;
pub mod endpoint;
pub mod load;
pub mod replay;
pub mod session;
pub mod status;
pub mod transport;

pub use budgeter::{BudgetPolicy, BudgeterBuilder, BudgeterConfig, ClusterBudgeter, LeaseConfig};
pub use cli::Args;
pub use codec::{FramedStream, StreamOptions, TransportMetrics};
pub use emulator::{EmulatedCluster, EmulatorConfig, JobResult, JobSetup, RunReport};
pub use endpoint::{EndpointBuilder, JobEndpoint};
pub use load::{run_load, LoadConfig, LoadReport};
pub use replay::{
    describe_config, diff_recordings, parse_config, recorder_meta, replay, Divergence,
    RecordingDiff, ReplayOptions, ReplayOutcome,
};
pub use session::{FaultKind, FaultPlan, FaultSpec, RetryPolicy, SessionState};
pub use status::{parse_json, JobStatus, Json, PhaseStat, StatusBoard, StatusSnapshot};
pub use transport::{
    BlockingTransport, ConnId, ConnSlab, ReactorTransport, Transport, TransportKind,
    TransportOptions,
};
