//! The connection plane: a [`Transport`] seam between the budgeter's
//! session logic and its sockets.
//!
//! Everything above this seam — [`crate::session::SessionState`],
//! [`crate::session::RetryPolicy`], [`crate::session::FaultPlan`], the
//! lease machinery, the invariant auditor, the flight recorder — is
//! transport-agnostic: it addresses peers by stable [`ConnId`]s and never
//! touches a socket. Below the seam live two implementations:
//!
//! * [`BlockingTransport`] — the original plane: every socket is polled
//!   inline on the pump thread, one sweep per control pass. Simple,
//!   single-threaded, and the reference for byte-identical recordings.
//! * [`ReactorTransport`] — a sharded reactor for high fan-in: N shards
//!   each own a disjoint set of nonblocking sockets and move bytes on
//!   their own threads, exchanging work with the pump through bounded
//!   per-connection ingress/egress queues. The pump drains shard inboxes
//!   in ascending [`ConnId`] order — the same order the blocking plane
//!   sweeps its slots — so the recorded decision stream is byte-identical
//!   at any shard count.
//!
//! The workspace denies `unsafe_code`, so the reactor is a *poll loop*,
//! not epoll: each shard thread sweeps its nonblocking sockets and parks
//! on a condvar (bounded at one millisecond) when idle. That trades a
//! syscall of wakeup latency for zero unsafe surface; at the scale this
//! daemon targets (thousands of connections, control periods measured in
//! milliseconds) the sweep is cheaper than the bookkeeping an event
//! queue would add.
//!
//! ## Backpressure
//!
//! *Ingress* is soft-bounded: once a connection's inbox holds
//! `conn_queue_depth` undrained frames the shard stops reading its
//! socket, so the kernel's receive window closes and TCP pushes back on
//! the peer. No inbound frame is ever dropped — the bound is the queue
//! depth plus at most one socket-buffer sweep.
//!
//! *Egress* is hard-bounded: a connection whose unflushed outbound bytes
//! exceed `conn_queue_depth × 256` has its new frames dropped and counted
//! (`transport_backpressure_drops_total`) instead of queued. A slow or
//! stalled endpoint therefore costs a counter, never unbounded memory —
//! and the decision that produced the frame is still recorded, because
//! delivery is the transport's problem, not the policy's.

use crate::codec::{FramedStream, StreamOptions, TransportMetrics};
use crate::session::FaultPlan;
use crate::status::PhaseStat;
use anor_telemetry::{Counter, Histogram, Telemetry};
use anor_types::{AnorError, Result};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Egress budget per queue-depth slot, in bytes: a connection may hold
/// `conn_queue_depth × 256` unflushed outbound bytes before new frames
/// are dropped. Control frames are tens of bytes, so the default depth
/// tolerates a long cap backlog before backpressure bites.
pub const EGRESS_BYTES_PER_SLOT: usize = 256;

/// A stable connection identity: the accept-order index of the
/// connection, never reused for the lifetime of the daemon. Leases,
/// quarantine bookkeeping, recorder tags (`RecEvent::{ConnOpen,FrameIn,
/// DecisionTx,...}` all carry this value) and `/status` agree on it, and
/// replay reconstructs liveness per id from the recorded transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(u32);

impl ConnId {
    /// Wrap a raw accept-order index (used by replay, which reads ids
    /// back out of recorded events).
    pub fn new(raw: u32) -> Self {
        ConnId(raw)
    }

    /// The raw accept-order index (what recorder events store).
    pub fn value(self) -> u32 {
        self.0
    }

    /// The id as a slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Which connection plane a budgeter runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Inline per-pump socket sweeps on the pump thread (the original
    /// plane, and the default).
    #[default]
    Blocking,
    /// The sharded non-blocking reactor.
    Reactor,
}

impl TransportKind {
    /// Display name (also the CLI spelling).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Blocking => "blocking",
            TransportKind::Reactor => "reactor",
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = AnorError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "blocking" => Ok(TransportKind::Blocking),
            "reactor" => Ok(TransportKind::Reactor),
            other => Err(AnorError::config(format!(
                "unknown transport `{other}` (use blocking | reactor)"
            ))),
        }
    }
}

/// Connection-plane construction options, carried by
/// [`crate::budgeter::BudgeterBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportOptions {
    /// Which plane to run.
    pub kind: TransportKind,
    /// Reactor shard count (ignored by the blocking plane; clamped to at
    /// least 1).
    pub shards: usize,
    /// Per-connection bounded-queue depth, in frames (ingress soft
    /// bound) and `× 256` bytes (egress hard bound).
    pub conn_queue_depth: usize,
}

impl Default for TransportOptions {
    fn default() -> Self {
        TransportOptions {
            kind: TransportKind::Blocking,
            shards: 2,
            conn_queue_depth: 64,
        }
    }
}

/// Stable-id connection slab: slots are allocated in accept order and
/// never reused, so a [`ConnId`] stays unambiguous for the lifetime of
/// the daemon (one pointer-sized `None` per dead connection is the cost,
/// which recorder and lease bookkeeping would pay anyway).
#[derive(Debug, Default)]
pub struct ConnSlab<T> {
    slots: Vec<Option<T>>,
}

impl<T> ConnSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        ConnSlab { slots: Vec::new() }
    }

    /// Allocate the next id and store `value` in it.
    pub fn insert(&mut self, value: T) -> ConnId {
        let id = ConnId(self.slots.len() as u32);
        self.slots.push(Some(value));
        id
    }

    /// Shared access to a live slot.
    pub fn get(&self, id: ConnId) -> Option<&T> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Exclusive access to a live slot.
    pub fn get_mut(&mut self, id: ConnId) -> Option<&mut T> {
        self.slots.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// Free a slot, returning its value. The id is never reissued.
    pub fn remove(&mut self, id: ConnId) -> Option<T> {
        self.slots.get_mut(id.index()).and_then(Option::take)
    }

    /// Is the slot live?
    pub fn contains(&self, id: ConnId) -> bool {
        self.get(id).is_some()
    }

    /// Live slots.
    pub fn open(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Ids of live slots, in ascending (accept) order.
    pub fn open_ids(&self) -> Vec<ConnId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| ConnId(i as u32))
            .collect()
    }

    /// Ids ever allocated (live or freed).
    pub fn allocated(&self) -> usize {
        self.slots.len()
    }
}

/// The connection plane the budgeter drives. One sweep of the pump is:
/// [`Transport::accept`] for new ids, [`Transport::poll_readable`] for
/// ids with pending input (ascending — the deterministic drain order),
/// [`Transport::read_frames`] per id, [`Transport::write_frame`] for
/// decisions, and [`Transport::release`] once the session bookkeeping
/// has torn a connection down.
pub trait Transport: std::fmt::Debug + Send {
    /// Accept every connection the listener has queued; returns the new
    /// ids in accept order.
    fn accept(&mut self) -> Result<Vec<ConnId>>;

    /// Connections with input to drain (frames, a close, or an error),
    /// in ascending id order. The blocking plane reports every open
    /// connection, since only reading them can find out.
    fn poll_readable(&mut self) -> Vec<ConnId>;

    /// Drain every complete frame received on `id`, plus whether the
    /// peer closed. `Err(AnorError::Protocol)` means the peer broke
    /// framing and the caller should quarantine the connection.
    fn read_frames(&mut self, id: ConnId) -> Result<(Vec<Bytes>, bool)>;

    /// Queue one encoded frame for `id`. Unknown ids are ignored; an
    /// egress queue past its bound drops the frame and counts it.
    fn write_frame(&mut self, id: ConnId, frame: Bytes) -> Result<()>;

    /// Cut `id` now (quarantine): the peer sees EOF immediately.
    fn shutdown(&mut self, id: ConnId);

    /// Free `id`'s slot after session teardown. The id is never reused.
    fn release(&mut self, id: ConnId);

    /// Does `id`'s slot still exist (not yet released)?
    fn is_open(&self, id: ConnId) -> bool;

    /// Is `id` open *and* not closed by the peer? (Leases use this:
    /// a closed-but-unreleased connection no longer counts as contact.)
    fn is_live(&self, id: ConnId) -> bool;

    /// Currently open connections.
    fn open_conns(&self) -> usize;

    /// Local listener address.
    fn local_addr(&self) -> Result<SocketAddr>;

    /// Park until input is plausibly available or `timeout` elapses;
    /// `true` means "something arrived". The reactor parks on a condvar
    /// its shards signal; the blocking plane can only sleep (bounded at
    /// one millisecond) because finding out requires reading.
    fn wait_readable(&self, timeout: Duration) -> bool;

    /// Per-shard ingest timings for the `/status` PHASE pane (empty for
    /// the blocking plane).
    fn shard_phases(&self) -> Vec<PhaseStat>;

    /// Egress frames dropped to backpressure so far.
    fn backpressure_drops(&self) -> u64;

    /// Which plane this is.
    fn kind(&self) -> TransportKind;

    /// Tear the plane down but keep the bound socket (daemon restarts
    /// keep their port). Reactor shard threads are stopped and joined.
    fn into_listener(self: Box<Self>) -> TcpListener;
}

/// Build the configured connection plane over `listener`.
pub fn build_transport(
    opts: &TransportOptions,
    listener: TcpListener,
    telemetry: &Telemetry,
    metrics: TransportMetrics,
    faults: Option<FaultPlan>,
) -> Result<Box<dyn Transport>> {
    Ok(match opts.kind {
        TransportKind::Blocking => Box::new(BlockingTransport::new(listener, metrics, faults)?),
        TransportKind::Reactor => Box::new(ReactorTransport::new(
            listener,
            telemetry,
            metrics,
            faults,
            opts.shards,
            opts.conn_queue_depth,
        )?),
    })
}

// ---------------------------------------------------------------------
// Blocking plane
// ---------------------------------------------------------------------

/// The original connection plane: every socket polled inline on the
/// pump thread, one sweep per control pass.
#[derive(Debug)]
pub struct BlockingTransport {
    listener: TcpListener,
    conns: ConnSlab<FramedStream>,
    metrics: TransportMetrics,
    faults: Option<FaultPlan>,
    accepted: u64,
}

impl BlockingTransport {
    /// Wrap a bound listener (switched to non-blocking mode).
    pub fn new(
        listener: TcpListener,
        metrics: TransportMetrics,
        faults: Option<FaultPlan>,
    ) -> Result<Self> {
        listener.set_nonblocking(true)?;
        Ok(BlockingTransport {
            listener,
            conns: ConnSlab::new(),
            metrics,
            faults,
            accepted: 0,
        })
    }
}

impl Transport for BlockingTransport {
    fn accept(&mut self) -> Result<Vec<ConnId>> {
        let mut out = Vec::new();
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accepted += 1;
                    let mut opts = StreamOptions::default().metrics(self.metrics.clone());
                    if let Some(plan) = &self.faults {
                        opts = opts.faults(plan.fork(self.accepted));
                    }
                    out.push(self.conns.insert(FramedStream::new(stream, opts)?));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(out),
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn poll_readable(&mut self) -> Vec<ConnId> {
        self.conns.open_ids()
    }

    fn read_frames(&mut self, id: ConnId) -> Result<(Vec<Bytes>, bool)> {
        let Some(stream) = self.conns.get_mut(id) else {
            return Ok((Vec::new(), false));
        };
        stream.flush_some()?;
        let frames = stream.recv_frames()?;
        Ok((frames, stream.is_closed()))
    }

    fn write_frame(&mut self, id: ConnId, frame: Bytes) -> Result<()> {
        if let Some(stream) = self.conns.get_mut(id) {
            stream.send(frame)?;
        }
        Ok(())
    }

    fn shutdown(&mut self, id: ConnId) {
        if let Some(stream) = self.conns.get_mut(id) {
            stream.shutdown_now();
        }
    }

    fn release(&mut self, id: ConnId) {
        self.conns.remove(id);
    }

    fn is_open(&self, id: ConnId) -> bool {
        self.conns.contains(id)
    }

    fn is_live(&self, id: ConnId) -> bool {
        self.conns.get(id).is_some_and(|s| !s.is_closed())
    }

    fn open_conns(&self) -> usize {
        self.conns.open()
    }

    fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    fn wait_readable(&self, timeout: Duration) -> bool {
        // Without an event source the best this plane can do is yield
        // the CPU briefly; the next sweep discovers whatever arrived.
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
        false
    }

    fn shard_phases(&self) -> Vec<PhaseStat> {
        Vec::new()
    }

    fn backpressure_drops(&self) -> u64 {
        0
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Blocking
    }

    fn into_listener(self: Box<Self>) -> TcpListener {
        self.listener
    }
}

// ---------------------------------------------------------------------
// Reactor plane
// ---------------------------------------------------------------------

/// Pump-side view of one reactor connection: liveness and egress
/// accounting, shared with the owning shard through atomics so neither
/// side takes a lock to answer "is it alive / is it full".
#[derive(Debug, Default)]
struct ConnShared {
    closed: AtomicBool,
    egress_bytes: AtomicUsize,
}

/// Pump → shard commands. Ordered per shard (FIFO), so writes land in
/// emission order and a shutdown cuts after everything queued before it.
#[derive(Debug)]
enum ShardCmd {
    Open(u32, Box<FramedStream>, Arc<ConnShared>),
    Write(u32, Bytes),
    Shutdown(u32),
    Release(u32),
}

/// Shard → pump per-connection inbox: the bounded ingress ring.
#[derive(Debug, Default)]
struct ConnInbox {
    frames: VecDeque<Bytes>,
    closed: bool,
    error: Option<AnorError>,
}

impl ConnInbox {
    fn has_input(&self) -> bool {
        !self.frames.is_empty() || self.closed || self.error.is_some()
    }
}

/// One reactor shard's shared state (commands in, inboxes out).
#[derive(Debug)]
struct ShardState {
    cmds: Mutex<VecDeque<ShardCmd>>,
    /// Signalled when commands arrive or inbox room frees up; the shard
    /// thread parks here (bounded at 1 ms) when idle.
    work_cv: Condvar,
    inbox: Mutex<BTreeMap<u32, ConnInbox>>,
    stop: AtomicBool,
    /// `pump_phase_seconds{phase=ingest/shardN}` — one sweep of this
    /// shard's sockets.
    ingest: Histogram,
}

/// Edge-counted readiness signal: shards bump the epoch whenever they
/// deliver input; the pump waits for the epoch to move.
#[derive(Debug, Default)]
struct ReadySignal {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl ReadySignal {
    fn current(&self) -> u64 {
        *self.epoch.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn bump(&self) {
        {
            let mut g = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
            *g = g.wrapping_add(1);
        }
        self.cv.notify_all();
    }

    /// Wait until the epoch moves past `seen` or `timeout` elapses.
    fn wait_past(&self, seen: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        while *g == seen {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            g = self
                .cv
                .wait_timeout(g, deadline.duration_since(now))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        true
    }
}

/// Owns the shard threads; dropping it stops and joins them (kept as a
/// separate struct so [`ReactorTransport::into_listener`] can move the
/// listener out while this one's `Drop` does the teardown).
#[derive(Debug)]
struct ShardPool {
    shards: Vec<Arc<ShardState>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for shard in &self.shards {
            shard.stop.store(true, Ordering::SeqCst);
            shard.work_cv.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Shard-thread-side state for one connection.
#[derive(Debug)]
struct ShardConn {
    stream: FramedStream,
    shared: Arc<ConnShared>,
    /// Frames accepted by `write_frame` and not yet handed to the
    /// stream's own buffer.
    egress: VecDeque<Bytes>,
    /// A hard (non-protocol) I/O error already delivered to the pump;
    /// stop touching the socket.
    failed: bool,
}

/// The sharded non-blocking reactor. Sockets are distributed over shards
/// by `id % shards`; each shard thread sweeps its sockets (reads into
/// per-connection inboxes, flushes queued egress) and parks when idle.
/// The pump accepts, addresses connections by [`ConnId`], and drains
/// inboxes in ascending id order.
#[derive(Debug)]
pub struct ReactorTransport {
    listener: TcpListener,
    slab: ConnSlab<Arc<ConnShared>>,
    pool: ShardPool,
    ready: Arc<ReadySignal>,
    depth: usize,
    metrics: TransportMetrics,
    faults: Option<FaultPlan>,
    accepted: u64,
    drops: Counter,
}

impl ReactorTransport {
    /// Wrap a bound listener with `shards` reactor shards and the given
    /// per-connection queue depth.
    pub fn new(
        listener: TcpListener,
        telemetry: &Telemetry,
        metrics: TransportMetrics,
        faults: Option<FaultPlan>,
        shards: usize,
        conn_queue_depth: usize,
    ) -> Result<Self> {
        listener.set_nonblocking(true)?;
        let depth = conn_queue_depth.max(1);
        let ready = Arc::new(ReadySignal::default());
        let mut pool = ShardPool {
            shards: Vec::new(),
            threads: Vec::new(),
        };
        for i in 0..shards.max(1) {
            let shard = Arc::new(ShardState {
                cmds: Mutex::new(VecDeque::new()),
                work_cv: Condvar::new(),
                inbox: Mutex::new(BTreeMap::new()),
                stop: AtomicBool::new(false),
                ingest: telemetry.histogram(
                    "pump_phase_seconds",
                    &[("phase", &format!("ingest/shard{i}"))],
                ),
            });
            let thread_shard = Arc::clone(&shard);
            let thread_ready = Arc::clone(&ready);
            pool.threads.push(
                std::thread::Builder::new()
                    .name(format!("anord-shard{i}"))
                    .spawn(move || run_shard(&thread_shard, &thread_ready, depth))?,
            );
            pool.shards.push(shard);
        }
        Ok(ReactorTransport {
            listener,
            slab: ConnSlab::new(),
            pool,
            ready,
            depth,
            metrics,
            faults,
            accepted: 0,
            drops: telemetry.counter(
                "transport_backpressure_drops_total",
                &[("role", "budgeter")],
            ),
        })
    }

    fn shard_for(&self, id: ConnId) -> Option<&Arc<ShardState>> {
        let n = self.pool.shards.len().max(1);
        self.pool.shards.get(id.index() % n)
    }

    fn send_cmd(&self, id: ConnId, cmd: ShardCmd) {
        if let Some(shard) = self.shard_for(id) {
            {
                let mut g = shard.cmds.lock().unwrap_or_else(PoisonError::into_inner);
                g.push_back(cmd);
            }
            shard.work_cv.notify_one();
        }
    }
}

impl Transport for ReactorTransport {
    fn accept(&mut self) -> Result<Vec<ConnId>> {
        let mut out = Vec::new();
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accepted += 1;
                    let mut opts = StreamOptions::default().metrics(self.metrics.clone());
                    if let Some(plan) = &self.faults {
                        opts = opts.faults(plan.fork(self.accepted));
                    }
                    let framed = FramedStream::new(stream, opts)?;
                    let shared = Arc::new(ConnShared::default());
                    let id = self.slab.insert(Arc::clone(&shared));
                    self.send_cmd(id, ShardCmd::Open(id.value(), Box::new(framed), shared));
                    out.push(id);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(out),
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn poll_readable(&mut self) -> Vec<ConnId> {
        let mut ids: Vec<ConnId> = Vec::new();
        for shard in &self.pool.shards {
            let g = shard.inbox.lock().unwrap_or_else(PoisonError::into_inner);
            for (&raw, inbox) in g.iter() {
                let id = ConnId(raw);
                if inbox.has_input() && self.slab.contains(id) {
                    ids.push(id);
                }
            }
        }
        // Deterministic drain order: ascending accept index across all
        // shards, exactly the order the blocking plane sweeps slots in.
        ids.sort_unstable();
        ids
    }

    fn read_frames(&mut self, id: ConnId) -> Result<(Vec<Bytes>, bool)> {
        let Some(shard) = self.shard_for(id) else {
            return Ok((Vec::new(), false));
        };
        let (result, drained) = {
            let mut g = shard.inbox.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(inbox) = g.get_mut(&id.value()) else {
                return Ok((Vec::new(), false));
            };
            if let Some(err) = inbox.error.take() {
                return Err(err);
            }
            let frames: Vec<Bytes> = inbox.frames.drain(..).collect();
            let closed = inbox.closed;
            let drained = !frames.is_empty();
            ((frames, closed), drained)
        };
        if drained {
            // Inbox room freed: wake the shard so a connection paused on
            // the ingress bound resumes reading.
            shard.work_cv.notify_one();
        }
        Ok(result)
    }

    fn write_frame(&mut self, id: ConnId, frame: Bytes) -> Result<()> {
        let Some(shared) = self.slab.get(id) else {
            return Ok(());
        };
        let cap = self.depth.saturating_mul(EGRESS_BYTES_PER_SLOT);
        if shared
            .egress_bytes
            .load(Ordering::SeqCst)
            .saturating_add(frame.len())
            > cap
        {
            // The slow-endpoint contract: drop and count, never queue
            // without bound. The caller's decision remains recorded.
            self.drops.inc();
            return Ok(());
        }
        shared.egress_bytes.fetch_add(frame.len(), Ordering::SeqCst);
        self.send_cmd(id, ShardCmd::Write(id.value(), frame));
        Ok(())
    }

    fn shutdown(&mut self, id: ConnId) {
        if let Some(shared) = self.slab.get(id) {
            // Mark dead immediately so liveness checks in the same pump
            // agree with the blocking plane's synchronous shutdown.
            shared.closed.store(true, Ordering::SeqCst);
        }
        self.send_cmd(id, ShardCmd::Shutdown(id.value()));
    }

    fn release(&mut self, id: ConnId) {
        if self.slab.remove(id).is_some() {
            self.send_cmd(id, ShardCmd::Release(id.value()));
        }
    }

    fn is_open(&self, id: ConnId) -> bool {
        self.slab.contains(id)
    }

    fn is_live(&self, id: ConnId) -> bool {
        self.slab
            .get(id)
            .is_some_and(|shared| !shared.closed.load(Ordering::SeqCst))
    }

    fn open_conns(&self) -> usize {
        self.slab.open()
    }

    fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    fn wait_readable(&self, timeout: Duration) -> bool {
        let seen = self.ready.current();
        // Fast path: input already waiting from an earlier bump.
        for shard in &self.pool.shards {
            let g = shard.inbox.lock().unwrap_or_else(PoisonError::into_inner);
            if g.values().any(ConnInbox::has_input) {
                return true;
            }
        }
        self.ready.wait_past(seen, timeout)
    }

    fn shard_phases(&self) -> Vec<PhaseStat> {
        self.pool
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| PhaseStat {
                phase: format!("ingest/shard{i}"),
                p50: shard.ingest.quantile(0.5),
                p90: shard.ingest.quantile(0.9),
                p99: shard.ingest.quantile(0.99),
            })
            .collect()
    }

    fn backpressure_drops(&self) -> u64 {
        self.drops.get()
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Reactor
    }

    fn into_listener(self: Box<Self>) -> TcpListener {
        let ReactorTransport { listener, pool, .. } = *self;
        drop(pool); // stops and joins the shard threads
        listener
    }
}

/// One shard thread's loop: apply pump commands, sweep every owned
/// socket (flush egress, read ingress into the bounded inbox), publish
/// liveness/egress accounting, and park when idle.
///
/// Lock discipline: the `cmds` and `inbox` guards are taken in short
/// scopes that never span socket I/O — a stalled peer can stall its own
/// socket, never a lock the pump needs.
fn run_shard(shard: &ShardState, ready: &ReadySignal, depth: usize) {
    let mut conns: BTreeMap<u32, ShardConn> = BTreeMap::new();
    loop {
        if shard.stop.load(Ordering::SeqCst) {
            return;
        }
        let cmds: Vec<ShardCmd> = {
            let mut g = shard.cmds.lock().unwrap_or_else(PoisonError::into_inner);
            g.drain(..).collect()
        };
        for cmd in cmds {
            match cmd {
                ShardCmd::Open(id, stream, shared) => {
                    conns.insert(
                        id,
                        ShardConn {
                            stream: *stream,
                            shared,
                            egress: VecDeque::new(),
                            failed: false,
                        },
                    );
                }
                ShardCmd::Write(id, frame) => {
                    if let Some(conn) = conns.get_mut(&id) {
                        conn.egress.push_back(frame);
                    }
                }
                ShardCmd::Shutdown(id) => {
                    if let Some(conn) = conns.get_mut(&id) {
                        conn.stream.shutdown_now();
                        conn.shared.closed.store(true, Ordering::SeqCst);
                    }
                }
                ShardCmd::Release(id) => {
                    conns.remove(&id);
                    let mut g = shard.inbox.lock().unwrap_or_else(PoisonError::into_inner);
                    g.remove(&id);
                }
            }
        }
        let started = Instant::now();
        let mut delivered = false;
        for (&id, conn) in conns.iter_mut() {
            if conn.failed {
                continue;
            }
            delivered |= sweep_conn(shard, id, conn, depth);
        }
        shard.ingest.observe(started.elapsed().as_secs_f64());
        if delivered {
            ready.bump();
        }
        // Park until the pump sends work or the idle tick (1 ms) lapses;
        // the tick bounds how long a peer's own traffic can wait when no
        // command arrives to wake us.
        let g = shard.cmds.lock().unwrap_or_else(PoisonError::into_inner);
        if g.is_empty() && !shard.stop.load(Ordering::SeqCst) {
            drop(
                shard
                    .work_cv
                    .wait_timeout(g, Duration::from_millis(1))
                    .unwrap_or_else(PoisonError::into_inner),
            );
        }
    }
}

/// Sweep one connection: flush queued egress, read available ingress
/// (respecting the soft bound), publish accounting. Returns whether any
/// input (frames, a close, an error) was delivered to the pump.
fn sweep_conn(shard: &ShardState, id: u32, conn: &mut ShardConn, depth: usize) -> bool {
    let mut delivered = false;
    // Egress: hand queued frames to the stream (fault injection happens
    // inside `send`, preserving per-connection frame order) and flush.
    let mut io_error: Option<AnorError> = None;
    if !conn.stream.is_closed() {
        while let Some(frame) = conn.egress.pop_front() {
            if let Err(e) = conn.stream.send(frame) {
                io_error = Some(e);
                break;
            }
        }
        if io_error.is_none() {
            if let Err(e) = conn.stream.flush_some() {
                io_error = Some(e);
            }
        }
    } else {
        // A dead socket frees its queue; the bytes were counted at
        // enqueue time and are uncounted below.
        conn.egress.clear();
    }
    conn.shared.egress_bytes.store(
        conn.stream
            .pending_out()
            .saturating_add(conn.egress.iter().map(|f| f.len()).sum()),
        Ordering::SeqCst,
    );
    // Ingress, soft-bounded: a backlog at or past the queue depth parks
    // the socket until the pump drains the inbox (TCP backpressure does
    // the rest); one sweep may overshoot by whatever the kernel had
    // buffered, so the true bound is depth + one socket-buffer read.
    if io_error.is_none() && !conn.stream.is_closed() {
        let backlog = {
            let g = shard.inbox.lock().unwrap_or_else(PoisonError::into_inner);
            g.get(&id).map_or(0, |inbox| inbox.frames.len())
        };
        if backlog < depth {
            match conn.stream.recv_frames() {
                Ok(frames) => {
                    if !frames.is_empty() {
                        let mut g = shard.inbox.lock().unwrap_or_else(PoisonError::into_inner);
                        g.entry(id).or_default().frames.extend(frames);
                        delivered = true;
                    }
                }
                Err(e) => io_error = Some(e),
            }
        }
    }
    if let Some(e) = io_error {
        conn.failed = true;
        conn.shared.closed.store(true, Ordering::SeqCst);
        let mut g = shard.inbox.lock().unwrap_or_else(PoisonError::into_inner);
        g.entry(id).or_default().error = Some(e);
        return true;
    }
    if conn.stream.is_closed() && !conn.shared.closed.swap(true, Ordering::SeqCst) {
        let mut g = shard.inbox.lock().unwrap_or_else(PoisonError::into_inner);
        g.entry(id).or_default().closed = true;
        delivered = true;
    }
    delivered
}
