//! Fault-tolerant session layer for the cluster↔job link.
//!
//! The transport ([`FramedStream`](crate::FramedStream)) is a dumb pipe:
//! it reports a closed peer and stops. This module supplies the policy
//! that turns that pipe into a *session* that survives partitions, slow
//! peers and daemon restarts:
//!
//! - [`RetryPolicy`] — deterministic seeded exponential backoff with
//!   jitter and a bounded attempt budget, computed purely from the
//!   virtual clock (no wall-clock anywhere, so the same seed reproduces
//!   the same reconnect schedule byte-for-byte).
//! - [`SessionState`] — the tri-state every session surface reports:
//!   `Connected`, `Reconnecting { attempt }`, or `Gone` once the attempt
//!   budget is exhausted. Both the [`JobEndpoint`](crate::JobEndpoint)
//!   and the budgeter's believed view speak this enum, fixing the
//!   silent-stranding bug where a dead endpoint still reported its cap
//!   as live.
//! - [`FaultPlan`] — a seeded chaos-injection schedule applied inside
//!   the transport's send path (drop-connection-at-frame-N, delay,
//!   duplicate, truncate, byte-corrupt). Plans are parsed from compact
//!   `--faults` specs like `drop@17,corrupt@42` and share their
//!   consumption state across clones, so the frame counter keeps
//!   counting across reconnects and every scheduled fault fires exactly
//!   once.

use anor_types::{AnorError, Result, Seconds};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

/// splitmix64 finalizer: the repo's standard cheap deterministic mixer
/// (same construction as the tracer's id hashing). Avalanches a counter
/// or seed into uniform bits without any wall-clock or RNG state.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------------

/// Where a cluster↔job session currently stands. Surfaced by both the
/// job-side [`JobEndpoint`](crate::JobEndpoint) and the budgeter's
/// believed view so neither side silently strands a dead peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// The underlying stream is open and frames flow.
    Connected,
    /// The stream dropped; backoff is running and `attempt` reconnects
    /// have been tried so far (1-based once the first attempt fires).
    Reconnecting {
        /// Reconnect attempts made so far.
        attempt: u32,
    },
    /// The attempt budget is exhausted (or retry was disabled); the
    /// session will never carry frames again.
    Gone,
}

impl SessionState {
    /// True while the stream is open.
    pub fn is_connected(&self) -> bool {
        matches!(self, SessionState::Connected)
    }

    /// True once the session can never recover.
    pub fn is_gone(&self) -> bool {
        matches!(self, SessionState::Gone)
    }

    /// Short stable label for telemetry/trace detail strings.
    pub fn label(&self) -> &'static str {
        match self {
            SessionState::Connected => "connected",
            SessionState::Reconnecting { .. } => "reconnecting",
            SessionState::Gone => "gone",
        }
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Deterministic reconnect policy: exponential backoff with seeded
/// jitter and a bounded attempt budget, evaluated entirely on the
/// experiment's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// How many reconnect attempts before the session is declared
    /// [`SessionState::Gone`]. Zero disables reconnection entirely.
    pub max_attempts: u32,
    /// Backoff before the first attempt.
    pub base_delay: Seconds,
    /// Ceiling on any single backoff interval.
    pub max_delay: Seconds,
    /// Exponential growth factor between attempts.
    pub multiplier: f64,
    /// Jitter amplitude as a fraction of the interval: each delay is
    /// scaled by a seeded factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter stream; mix in a per-job salt so co-scheduled
    /// endpoints do not thunder back in lockstep.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Seconds(0.5),
            max_delay: Seconds(16.0),
            multiplier: 2.0,
            jitter: 0.2,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy that never reconnects: the first disconnect is final.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
    }

    /// Replace the jitter seed (builder-style).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when at least one reconnect attempt is allowed.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 0
    }

    /// The backoff interval before attempt `attempt` (1-based). Pure:
    /// the same `(policy, attempt)` always yields the same delay.
    pub fn delay(&self, attempt: u32) -> Seconds {
        let exp = attempt.saturating_sub(1).min(63);
        let raw = self.base_delay.value() * self.multiplier.powi(exp as i32);
        let capped = raw.min(self.max_delay.value()).max(0.0);
        // Seeded jitter factor in [1 - jitter, 1 + jitter].
        let unit = mix(self.seed ^ u64::from(attempt)) as f64 / u64::MAX as f64;
        let factor = 1.0 + self.jitter.clamp(0.0, 1.0) * (2.0 * unit - 1.0);
        Seconds(capped * factor)
    }
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

/// One kind of injected transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Discard the frame and cut the connection, as if the peer vanished
    /// mid-stream.
    Drop,
    /// Hold the frame back until this many further frames have been
    /// queued, re-ordering it behind them.
    Delay(u32),
    /// Queue the frame twice.
    Duplicate,
    /// Queue only a prefix of the frame's bytes, then cut the
    /// connection mid-frame.
    Truncate,
    /// Flip one seeded byte of the frame (length prefix included — the
    /// receiver must survive either a desync or an oversize reject).
    Corrupt,
}

impl FaultKind {
    /// Stable spec/telemetry label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay(_) => "delay",
            FaultKind::Duplicate => "dup",
            FaultKind::Truncate => "trunc",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// One scheduled fault: fire `kind` when the session's cumulative
/// outgoing frame counter reaches `at` (1-based: `at == 1` is the first
/// frame ever sent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Cumulative frame number the fault fires at.
    pub at: u64,
    /// What to do to that frame.
    pub kind: FaultKind,
}

#[derive(Debug, Default)]
struct FaultState {
    pending: Vec<FaultSpec>,
    seed: u64,
    frames: u64,
    injected: u64,
}

/// A seeded, deterministic chaos schedule applied to a transport's send
/// path. Clones share consumption state: handing the same plan to every
/// reincarnation of a reconnecting stream keeps one cumulative frame
/// counter across the whole session, so `drop@17` fires exactly once at
/// the 17th frame the session ever sends.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Arc<Mutex<FaultState>>,
}

impl FaultPlan {
    /// Build a plan from explicit specs.
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        let plan = FaultPlan::default();
        plan.faults.lock().pending = specs;
        plan
    }

    /// Parse a compact spec string: comma-separated `kind@frame` items,
    /// where `kind` is one of `drop`, `dup`, `trunc`, `corrupt`, or
    /// `delay` (optionally `delay@frame:holdback`, default holdback 1).
    ///
    /// ```text
    /// drop@17,corrupt@42,delay@5:3,dup@9,trunc@12
    /// ```
    pub fn parse(spec: &str) -> Result<Self> {
        let mut specs = Vec::new();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (kind, rest) = item
                .split_once('@')
                .ok_or_else(|| AnorError::config(format!("fault spec `{item}`: missing `@`")))?;
            let (frame_s, arg) = match rest.split_once(':') {
                Some((f, a)) => (f, Some(a)),
                None => (rest, None),
            };
            let at: u64 = frame_s.parse().map_err(|_| {
                AnorError::config(format!("fault spec `{item}`: bad frame number `{frame_s}`"))
            })?;
            if at == 0 {
                return Err(AnorError::config(format!(
                    "fault spec `{item}`: frame numbers are 1-based"
                )));
            }
            let kind = match kind {
                "drop" => FaultKind::Drop,
                "dup" => FaultKind::Duplicate,
                "trunc" => FaultKind::Truncate,
                "corrupt" => FaultKind::Corrupt,
                "delay" => {
                    let holdback = match arg {
                        None => 1,
                        Some(a) => a.parse().map_err(|_| {
                            AnorError::config(format!(
                                "fault spec `{item}`: bad delay holdback `{a}`"
                            ))
                        })?,
                    };
                    FaultKind::Delay(holdback)
                }
                other => {
                    return Err(AnorError::config(format!(
                        "fault spec `{item}`: unknown fault kind `{other}` \
                         (want drop|delay|dup|trunc|corrupt)"
                    )))
                }
            };
            if arg.is_some() && !matches!(kind, FaultKind::Delay(_)) {
                return Err(AnorError::config(format!(
                    "fault spec `{item}`: only delay takes a `:holdback` argument"
                )));
            }
            specs.push(FaultSpec { at, kind });
        }
        Ok(FaultPlan::new(specs))
    }

    /// Replace the corruption seed (builder-style).
    pub fn seeded(self, seed: u64) -> Self {
        self.faults.lock().seed = seed;
        self
    }

    /// An independent deep copy with the same schedule, a fresh frame
    /// counter, and the seed salted by `salt` — one per job, so
    /// co-scheduled endpoints corrupt different bytes but follow the
    /// same schedule.
    pub fn fork(&self, salt: u64) -> Self {
        let src = self.faults.lock();
        let copy = FaultPlan::default();
        {
            let mut st = copy.faults.lock();
            st.pending = src.pending.clone();
            st.seed = src.seed ^ mix(salt);
        }
        copy
    }

    /// True when no faults are scheduled (and none ever fired).
    pub fn is_empty(&self) -> bool {
        let st = self.faults.lock();
        st.pending.is_empty() && st.injected == 0
    }

    /// How many faults have fired so far, across every clone.
    pub fn injected(&self) -> u64 {
        self.faults.lock().injected
    }

    /// Cumulative frames the plan has seen, across every clone.
    pub fn frames_seen(&self) -> u64 {
        self.faults.lock().frames
    }

    /// Advance the cumulative frame counter by one outgoing frame and
    /// return the fault to apply to it, if one is scheduled. Also yields
    /// the per-frame corruption seed so byte flips stay deterministic.
    pub(crate) fn on_frame(&self) -> Option<(FaultKind, u64)> {
        let mut st = self.faults.lock();
        st.frames += 1;
        let frame = st.frames;
        let idx = st.pending.iter().position(|s| s.at == frame)?;
        let spec = st.pending.swap_remove(idx);
        st.injected += 1;
        Some((spec.kind, mix(st.seed ^ frame)))
    }
}

/// Deterministically flip one byte of `frame` using `seed` (already
/// frame-salted by [`FaultPlan::on_frame`]). Empty frames pass through.
pub(crate) fn corrupt_byte(frame: &Bytes, seed: u64) -> Bytes {
    if frame.is_empty() {
        return frame.clone();
    }
    let mut buf = frame.to_vec();
    let idx = (seed % buf.len() as u64) as usize;
    // Guarantee the flip changes the byte: xor with a nonzero mask.
    let mask = ((seed >> 8) as u8) | 1;
    if let Some(b) = buf.get_mut(idx) {
        *b ^= mask;
    }
    Bytes::from(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default().seeded(42);
        let q = RetryPolicy::default().seeded(42);
        for attempt in 1..=p.max_attempts {
            let a = p.delay(attempt);
            let b = q.delay(attempt);
            assert_eq!(
                a.value().to_bits(),
                b.value().to_bits(),
                "attempt {attempt}"
            );
            assert!(a.value() >= 0.0);
            assert!(a.value() <= p.max_delay.value() * (1.0 + p.jitter) + 1e-9);
        }
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert!(p.delay(2).value() > p.delay(1).value());
        assert!((p.delay(10).value() - p.max_delay.value()).abs() < 1e-9);
        // Huge attempt numbers must not overflow the exponent.
        assert!((p.delay(u32::MAX).value() - p.max_delay.value()).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_decorrelate_jitter() {
        let a = RetryPolicy::default().seeded(1).delay(3);
        let b = RetryPolicy::default().seeded(2).delay(3);
        assert_ne!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn plan_parses_the_readme_spec() {
        let plan = FaultPlan::parse("drop@17,corrupt@42").unwrap();
        assert!(!plan.is_empty());
        for f in 1..=16 {
            assert!(plan.on_frame().is_none(), "frame {f}");
        }
        assert!(matches!(plan.on_frame(), Some((FaultKind::Drop, _))));
        for _ in 18..42 {
            assert!(plan.on_frame().is_none());
        }
        assert!(matches!(plan.on_frame(), Some((FaultKind::Corrupt, _))));
        assert_eq!(plan.injected(), 2);
        assert_eq!(plan.frames_seen(), 42);
    }

    #[test]
    fn plan_parses_every_kind_and_rejects_junk() {
        let plan = FaultPlan::parse("drop@1,delay@2:3,dup@3,trunc@4,corrupt@5").unwrap();
        assert!(matches!(plan.on_frame(), Some((FaultKind::Drop, _))));
        assert!(matches!(plan.on_frame(), Some((FaultKind::Delay(3), _))));
        assert!(matches!(plan.on_frame(), Some((FaultKind::Duplicate, _))));
        assert!(matches!(plan.on_frame(), Some((FaultKind::Truncate, _))));
        assert!(matches!(plan.on_frame(), Some((FaultKind::Corrupt, _))));
        for bad in ["drop", "drop@x", "drop@0", "zap@3", "dup@3:9", "delay@2:x"] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        // Empty / whitespace specs are an empty plan, not an error.
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn clones_share_the_frame_counter_but_forks_do_not() {
        let plan = FaultPlan::parse("drop@3").unwrap();
        let clone = plan.clone();
        assert!(plan.on_frame().is_none());
        assert!(clone.on_frame().is_none());
        // Third frame overall — seen through the clone.
        assert!(matches!(clone.on_frame(), Some((FaultKind::Drop, _))));
        assert_eq!(plan.injected(), 1);

        let fork = plan.fork(7);
        assert_eq!(fork.frames_seen(), 0);
        assert!(fork.on_frame().is_none());
    }

    #[test]
    fn corruption_is_deterministic_and_changes_the_frame() {
        let frame = Bytes::copy_from_slice(b"\x00\x00\x00\x04\x03abc");
        let a = corrupt_byte(&frame, 99);
        let b = corrupt_byte(&frame, 99);
        assert_eq!(a, b);
        assert_ne!(a, frame);
        assert_eq!(a.len(), frame.len());
        assert_eq!(corrupt_byte(&Bytes::new(), 99), Bytes::new());
    }

    #[test]
    fn session_state_labels() {
        assert!(SessionState::Connected.is_connected());
        assert!(SessionState::Gone.is_gone());
        assert!(!SessionState::Reconnecting { attempt: 2 }.is_connected());
        assert_eq!(
            SessionState::Reconnecting { attempt: 2 }.label(),
            "reconnecting"
        );
    }
}
