//! `anor-exec` — deterministic parallel fan-out for trial grids.
//!
//! Every multi-trial experiment in this workspace (Fig. 11's level×trial
//! grid, the Fig. 6–8/10 emulated-cluster repetitions, the hourly-bid
//! candidate search) derives its per-trial seeds independently of
//! execution order, so the trials are embarrassingly parallel — but the
//! *aggregation* of their results is order-sensitive (floating-point
//! means, confidence intervals, first-feasible searches). [`ExecPool`]
//! exploits the first property without disturbing the second: tasks run
//! on a scoped-thread worker pool and results are always returned **in
//! submission order**, so figure output is byte-identical to a serial
//! run. `ExecPool::new(1)` degenerates to an exact in-place serial loop
//! (no threads are spawned at all).
//!
//! Worker count resolution, everywhere in the workspace: an explicit
//! `--jobs N` flag beats the `ANOR_JOBS` environment variable beats the
//! machine's available parallelism.
//!
//! # Determinism contract
//!
//! For a task function `f` that depends only on its index (not on shared
//! mutable state, wall-clock time, or scheduling order),
//! `pool.run(n, f)` returns exactly `(0..n).map(f).collect()` for every
//! worker count. The pool guarantees:
//!
//! * every index in `0..n` is executed exactly once;
//! * `run` returns results indexed by submission order, not completion
//!   order;
//! * panics in a task propagate to the caller (no result is silently
//!   dropped).
//!
//! # Telemetry
//!
//! [`ExecPool::with_telemetry`] records a per-task wall-time histogram
//! (`exec_task_seconds`), the configured worker count
//! (`exec_workers`), a task counter (`exec_tasks_total`) and, after each
//! `run`, the achieved worker utilization (`exec_worker_utilization`,
//! total busy time over `workers × batch wall time`).

use anor_telemetry::{Counter, Gauge, Histogram, Telemetry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Resolve a worker count: `requested` if non-zero, else the `ANOR_JOBS`
/// environment variable, else the machine's available parallelism.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("ANOR_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Cached metric handles (see the module docs for the metric names).
#[derive(Debug, Clone)]
struct ExecInstruments {
    task_seconds: Histogram,
    workers: Gauge,
    tasks_total: Counter,
    utilization: Gauge,
}

/// A deterministic worker pool. Cheap to construct per batch; holds no
/// threads between [`ExecPool::run`] calls (workers are scoped to each
/// batch).
#[derive(Debug, Clone)]
pub struct ExecPool {
    jobs: usize,
    instruments: Option<ExecInstruments>,
}

impl Default for ExecPool {
    /// `ANOR_JOBS` / available parallelism (see [`resolve_jobs`]).
    fn default() -> Self {
        ExecPool::from_env()
    }
}

impl ExecPool {
    /// A pool with an explicit worker count (`0` = resolve from the
    /// environment like [`ExecPool::from_env`]).
    pub fn new(jobs: usize) -> Self {
        ExecPool {
            jobs: resolve_jobs(jobs),
            instruments: None,
        }
    }

    /// A pool sized by `ANOR_JOBS` or the machine's parallelism.
    pub fn from_env() -> Self {
        ExecPool::new(0)
    }

    /// The exact-serial pool: tasks run inline, in order, on the calling
    /// thread.
    pub fn serial() -> Self {
        ExecPool {
            jobs: 1,
            instruments: None,
        }
    }

    /// Record per-task timings and worker utilization into `telemetry`.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        let i = ExecInstruments {
            task_seconds: telemetry.histogram("exec_task_seconds", &[]),
            workers: telemetry.gauge("exec_workers", &[]),
            tasks_total: telemetry.counter("exec_tasks_total", &[]),
            utilization: telemetry.gauge("exec_worker_utilization", &[]),
        };
        i.workers.set(self.jobs as f64);
        self.instruments = Some(i);
        self
    }

    /// The resolved worker count (≥ 1).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `f(0), f(1), …, f(n-1)` across the pool and return the results
    /// in index order. With one worker (or one task) this is a plain
    /// serial loop on the calling thread.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let batch_start = Instant::now();
        let busy_nanos = AtomicU64::new(0);
        let out = if self.jobs <= 1 || n <= 1 {
            (0..n).map(|i| self.timed(i, &f, &busy_nanos)).collect()
        } else {
            self.run_threaded(n, &f, &busy_nanos)
        };
        if let Some(ins) = &self.instruments {
            let wall = batch_start.elapsed().as_secs_f64();
            let busy = busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
            let workers = self.jobs.min(n.max(1)) as f64;
            if wall > 0.0 {
                ins.utilization.set(busy / (workers * wall));
            }
        }
        out
    }

    /// Map over a slice, preserving order (convenience over [`Self::run`]).
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run(items.len(), |i| f(&items[i]))
    }

    fn run_threaded<T, F>(&self, n: usize, f: &F, busy_nanos: &AtomicU64) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(n);
        let next = AtomicUsize::new(0);
        // One slot per task: workers claim indices from the shared
        // counter and deposit results by index, so collection order is
        // submission order regardless of completion order. Each slot has
        // its own lock; a slot lock is only ever held for the deposit
        // store (never across another acquisition or a blocking call).
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = self.timed(i, f, busy_nanos);
                    *slots[i].lock() = Some(result);
                });
            }
        });
        // The scope above joins every worker (propagating any panic), so
        // each slot is filled exactly once.
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(|| unreachable!("joined worker left an empty slot"))
            })
            .collect()
    }

    fn timed<T, F>(&self, i: usize, f: &F, busy_nanos: &AtomicU64) -> T
    where
        F: Fn(usize) -> T,
    {
        match &self.instruments {
            None => f(i),
            Some(ins) => {
                let start = Instant::now();
                let out = f(i);
                let elapsed = start.elapsed();
                ins.task_seconds.observe(elapsed.as_secs_f64());
                ins.tasks_total.inc();
                busy_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_submission_order_for_any_worker_count() {
        let serial: Vec<u64> = (0..37).map(|i| (i as u64).wrapping_mul(0x9e37)).collect();
        for jobs in [1, 2, 4, 8, 16] {
            let pool = ExecPool::new(jobs);
            let got = pool.run(37, |i| (i as u64).wrapping_mul(0x9e37));
            assert_eq!(got, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let pool = ExecPool::new(7);
        pool.run(100, |i| hits[i].fetch_add(1, Ordering::SeqCst));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<i32> = (0..20).collect();
        let pool = ExecPool::new(3);
        let got = pool.map(&items, |x| x * 2);
        assert_eq!(got, (0..20).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_and_zero_jobs_are_fine() {
        let pool = ExecPool::new(0); // resolved from env/machine
        assert!(pool.jobs() >= 1);
        let got: Vec<u32> = pool.run(0, |_| 1);
        assert!(got.is_empty());
        assert_eq!(ExecPool::serial().jobs(), 1);
    }

    #[test]
    fn explicit_jobs_beats_env() {
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn telemetry_records_tasks_and_workers() {
        let t = Telemetry::new();
        let pool = ExecPool::new(4).with_telemetry(&t);
        let _ = pool.run(10, |i| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            i
        });
        assert_eq!(t.counter("exec_tasks_total", &[]).get(), 10);
        assert_eq!(t.histogram("exec_task_seconds", &[]).count(), 10);
        assert_eq!(t.gauge("exec_workers", &[]).get(), 4.0);
        let util = t.gauge("exec_worker_utilization", &[]).get();
        assert!(util > 0.0 && util <= 1.0 + 1e-9, "utilization {util}");
    }

    #[test]
    fn task_panic_propagates() {
        let pool = ExecPool::new(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        assert!(r.is_err(), "panic in a task must reach the caller");
    }
}
